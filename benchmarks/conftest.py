"""Shared configuration for the benchmark suite.

Every table and figure of the paper's evaluation has one benchmark file
here.  Benchmarks run the corresponding experiment at a reduced scale
(so ``pytest benchmarks/ --benchmark-only`` completes in minutes),
attach the regenerated rows/series as ``extra_info``, and assert the
paper's qualitative *shape* — who wins, by roughly what factor, where
the crossovers fall.  Full-scale regeneration is available through
``python -m repro.bench <experiment> --scale paper``.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(scope="session")
def bench_rng():
    return np.random.default_rng(20150601)  # SIGMOD'15, for luck
