"""Ablation A3 — adaptive learner hyper-parameters (Section 4.1).

The paper settles on mini-batch size N=10 ("a value around 10 works
well"); the ablation sweeps N and the loss choice to show the error is
robust in that neighbourhood.
"""

import pytest

from repro.bench.experiments import run_adaptive_parameter_ablation


@pytest.fixture(scope="module")
def ablation():
    return run_adaptive_parameter_ablation(
        batch_sizes=(1, 5, 10, 20),
        losses=("squared", "absolute", "squared_q"),
        repetitions=2,
        rows=15_000,
    )


def test_ablation_adaptive_parameters(benchmark, ablation):
    def regenerate():
        return run_adaptive_parameter_ablation(
            batch_sizes=(10,), losses=("squared",), repetitions=1, rows=8_000
        )

    benchmark.pedantic(regenerate, rounds=1, iterations=1)
    benchmark.extra_info["batch_size_errors"] = {
        str(k): round(v, 4) for k, v in ablation.batch_size_errors.items()
    }
    benchmark.extra_info["loss_errors"] = {
        k: round(v, 4) for k, v in ablation.loss_errors.items()
    }


def test_paper_default_batch_size_competitive(ablation):
    """N=10 performs within 2x of the best swept value."""
    best = min(ablation.batch_size_errors.values())
    assert ablation.batch_size_errors[10] <= 2.0 * best


def test_all_losses_learn(ablation):
    """Every differentiable loss yields a working estimator."""
    for loss, error in ablation.loss_errors.items():
        assert error < 0.2, loss
