"""Ablation A2 — Karma sample maintenance on/off (Section 4.2).

Isolates the contribution of the Karma machinery (and of the Appendix E
empty-region shortcut) on the dynamic workload: without maintenance the
sample goes stale after deletions and the error grows.
"""

import pytest

from repro.bench.experiments import run_karma_ablation


@pytest.fixture(scope="module")
def ablation():
    return run_karma_ablation(
        dimensions=5, runs=2, cycles=5, queries_per_cycle=40
    )


def test_ablation_karma(benchmark, ablation):
    def regenerate():
        return run_karma_ablation(
            dimensions=3, runs=1, cycles=3, queries_per_cycle=15
        )

    benchmark.pedantic(regenerate, rounds=1, iterations=1)
    benchmark.extra_info["with_karma"] = round(ablation.with_karma, 4)
    benchmark.extra_info["without_karma"] = round(ablation.without_karma, 4)
    benchmark.extra_info["no_shortcut"] = round(
        ablation.with_karma_no_shortcut, 4
    )


def test_karma_reduces_error_under_updates(ablation):
    assert ablation.with_karma <= ablation.without_karma


def test_shortcut_does_not_hurt(ablation):
    """The empty-region shortcut accelerates convergence; at worst it is
    neutral."""
    assert ablation.with_karma <= ablation.with_karma_no_shortcut * 1.25
