"""Ablation A1 — logarithmic vs linear bandwidth updates (Section 5.5).

The paper reports that updating log(h) instead of h improved estimates
in 68% of experiments.  The ablation reruns Adaptive with both settings
on identical trials and records the win fraction.
"""

import pytest

from repro.bench.experiments import run_log_update_ablation


@pytest.fixture(scope="module")
def ablation():
    return run_log_update_ablation(
        datasets=("power", "synthetic"),
        workloads=("DT", "DV"),
        dimensions=3,
        repetitions=2,
        rows=15_000,
    )


def test_ablation_log_updates(benchmark, ablation):
    def regenerate():
        return run_log_update_ablation(
            datasets=("synthetic",),
            workloads=("DT",),
            repetitions=1,
            rows=8_000,
        )

    benchmark.pedantic(regenerate, rounds=1, iterations=1)
    benchmark.extra_info["log_win_fraction"] = ablation.log_win_fraction
    benchmark.extra_info["paper_value"] = 0.68


def test_log_updates_competitive(ablation):
    """Log updates win at least a reasonable share of paired trials
    (the paper saw 68%; tiny scale is noisier, so we assert >= 30%)."""
    assert ablation.log_win_fraction >= 0.3


def test_paired_trials(ablation):
    assert len(ablation.log_errors) == len(ablation.linear_errors) == 8
