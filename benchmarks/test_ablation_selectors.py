"""Ablation A4 — bandwidth-selector shootout.

Every bandwidth selection route on identical trials: Scott (Heuristic),
the two sophisticated statistical classes of Section 3.2 (SCV and the
plug-in), the paper's feedback-driven Batch and Adaptive, plus the AVI
and naive-sampling extension baselines for context.
"""

import pytest

from repro.bench.experiments import run_selector_shootout


@pytest.fixture(scope="module")
def shootout():
    return run_selector_shootout(
        datasets=("power", "synthetic"),
        workloads=("DT", "DV"),
        repetitions=2,
        rows=25_000,
    )


def test_ablation_selector_shootout(benchmark, shootout):
    def regenerate():
        return run_selector_shootout(
            datasets=("synthetic",),
            workloads=("DT",),
            repetitions=1,
            rows=10_000,
        )

    benchmark.pedantic(regenerate, rounds=1, iterations=1)
    benchmark.extra_info["errors"] = {
        k: round(v, 4) for k, v in shootout.errors.items()
    }
    benchmark.extra_info["ranking"] = shootout.ranking()


def test_batch_leads_the_field(shootout):
    """The feedback-driven bandwidth should top (or tie) the ranking."""
    ranking = shootout.ranking()
    assert ranking.index("Batch") <= 2


def test_statistical_selectors_beat_scott(shootout):
    assert shootout.errors["SCV"] <= shootout.errors["Heuristic"] * 1.1
    assert shootout.errors["Plugin"] <= shootout.errors["Heuristic"] * 1.1


def test_kde_beats_avi(shootout):
    """Tuned KDE beats the attribute-value-independence baseline — the
    Section 2.2 motivation."""
    assert shootout.errors["Batch"] < shootout.errors["AVI"]


def test_sampling_is_a_strong_contender_at_this_scale(shootout):
    """An honest reproduction note: at 1024 sample points in 3-D with 1%
    selectivity targets, the naive sampling estimator's binomial noise
    (~0.003) makes it very competitive — the KDE advantage of [14]
    concerns smaller samples, sparser regions and higher dimensions.
    We assert only that tuned KDE stays within an order of magnitude."""
    assert shootout.errors["Batch"] < shootout.errors["Sampling"] * 10
