"""Benchmark of the pluggable execution backends.

Acceptance bar: every backend (numpy, sharded at several shard counts,
cached) matches the seed's per-query loop to 1e-12 on a 65536-point
sample, the cached backend beats the numpy backend on a bound-reusing
workload (any machine — the cache trades erf evaluations for lookups),
and the sharded backend beats the single-thread numpy backend on a
large-sample workload *when the host has cores to shard over* (the
multi-core assertion is skipped on single-core hosts, where the process
pool can only add IPC overhead on top of the same single stream of erf
work).
"""

import os
import time

import numpy as np
import pytest

from repro.bench.experiments import run_backend_scaling
from repro.bench.experiments.runtime import templated_workload
from repro import create_estimator
from repro.core import scott_bandwidth
from repro.core.backends import CachedBackend, ShardedBackend
from repro.geometry import Box, QueryBatch

pytestmark = pytest.mark.bench

SAMPLE_SIZE = 65536
DIMENSIONS = 4
QUERIES = 64


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(20150601)
    data = rng.normal(size=(200_000, DIMENSIONS))
    sample = data[rng.choice(len(data), size=SAMPLE_SIZE, replace=False)]
    bandwidth = scott_bandwidth(sample)
    batch = templated_workload(data, QUERIES, rng, template_pool=8)
    return sample, bandwidth, batch


def _best_seconds(fn, repeats=3):
    fn()  # warm up (pool spin-up, BLAS thread init, cache fill)
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_all_backends_match_seed_loop_to_1e12(setup):
    """numpy / sharded / cached all within 1e-12 of the per-query loop.

    The reference is the seed's code path: one ``selectivity`` call per
    query (no batching, no backend dispatch beyond the default).
    """
    sample, bandwidth, batch = setup
    reference = create_estimator(sample, bandwidth=bandwidth)
    queries = [
        Box(lo, hi) for lo, hi in zip(batch.low, batch.high)
    ]
    looped = np.array([reference.selectivity(q) for q in queries])

    backends = {
        "numpy": None,
        "sharded[2]": ShardedBackend(shards=2),
        "sharded[7]": ShardedBackend(shards=7),
        "cached": CachedBackend(),
    }
    for name, backend in backends.items():
        kde = create_estimator(sample, bandwidth=bandwidth, backend=backend)
        estimates = kde.selectivity_batch(batch)
        np.testing.assert_allclose(
            estimates, looped, rtol=0, atol=1e-12,
            err_msg=f"backend {name} deviates from the seed per-query loop",
        )
        kde.backend.close()


@pytest.mark.skipif(
    _cpu_count() < 2,
    reason="sharded wall-clock speedup needs >= 2 cores to shard over",
)
def test_sharded_beats_numpy_on_large_sample(setup):
    """Multi-core sharding beats the single-thread numpy backend."""
    sample, bandwidth, batch = setup
    shards = min(_cpu_count(), 4)

    numpy_kde = create_estimator(sample, bandwidth=bandwidth)
    numpy_seconds = _best_seconds(
        lambda: numpy_kde.selectivity_batch(batch)
    )

    sharded_kde = create_estimator(
        sample, bandwidth=bandwidth, backend=ShardedBackend(shards=shards)
    )
    sharded_seconds = _best_seconds(
        lambda: sharded_kde.selectivity_batch(batch)
    )
    sharded_kde.backend.close()

    speedup = numpy_seconds / sharded_seconds
    assert speedup > 1.0, (
        f"sharded[{shards}] only {speedup:.2f}x vs numpy "
        f"({sharded_seconds * 1e3:.1f}ms vs {numpy_seconds * 1e3:.1f}ms)"
    )


def test_cached_beats_numpy_on_templated_workload(setup):
    """The CDF-term cache wins on bound reuse, even single-core.

    The templated workload reuses per-dimension bounds heavily, so warm
    passes replace almost all ``2 q s d`` erf evaluations with cache
    lookups — a win independent of core count.
    """
    sample, bandwidth, batch = setup

    numpy_kde = create_estimator(sample, bandwidth=bandwidth)
    numpy_seconds = _best_seconds(
        lambda: numpy_kde.selectivity_batch(batch)
    )

    cached_kde = create_estimator(
        sample, bandwidth=bandwidth, backend=CachedBackend()
    )
    cached_seconds = _best_seconds(
        lambda: cached_kde.selectivity_batch(batch)
    )
    hit_rate = cached_kde.backend.stats.cache_hit_rate

    speedup = numpy_seconds / cached_seconds
    assert hit_rate > 0.5, f"templated workload only hit {hit_rate:.2f}"
    assert speedup > 1.5, (
        f"cached only {speedup:.2f}x vs numpy at hit rate {hit_rate:.2f} "
        f"({cached_seconds * 1e3:.1f}ms vs {numpy_seconds * 1e3:.1f}ms)"
    )


def test_grid_sublinear_speedup_at_million_rows():
    """The ISSUE 7 acceptance bar: >= 10x per-query at 10^6 rows.

    The grid backend answers from per-dimension CDF tables (no sample
    rows touched), so its margin over the linear scan is orders of
    magnitude; 10x is the floor the PR promises, with the accuracy
    documented by the Q-error axis of the same sweep.
    """
    result = run_backend_scaling(
        sample_sizes=(4096,),
        batch_size=64,
        shard_counts=(1,),
        repeats=1,
        sublinear_sizes=(1_000_000,),
        reference_queries=8,
    )
    speedup = float(result.sublinear_speedup("grid")[0])
    assert speedup >= 10.0, (
        f"grid only {speedup:.1f}x vs numpy at 10^6 rows "
        f"({result.sublinear_seconds_per_query['grid'][0] * 1e6:.1f}us vs "
        f"{result.sublinear_seconds_per_query['numpy'][0] * 1e6:.1f}us "
        "per query)"
    )
    # The speedup is real sublinearity, not measurement noise: the grid
    # backend evaluates kernel terms for zero sample rows per query.
    assert result.sublinear_rows_per_query["grid"][0] == 0.0
    # Hashing must also beat the scan while touching a strict minority
    # of the sample on the selective workload.
    assert float(result.sublinear_speedup("hashing")[0]) > 1.0
    assert result.sublinear_rows_per_query["hashing"][0] < 1_000_000 / 2


def test_backend_scaling_experiment_smoke(benchmark):
    """The full experiment runs end to end and stays within budget."""
    result = benchmark.pedantic(
        run_backend_scaling,
        kwargs=dict(
            sample_sizes=(4096, 16384),
            batch_size=64,
            shard_counts=(1, 2),
            repeats=1,
        ),
        rounds=1,
        iterations=1,
    )
    assert result.max_abs_deviation <= 1e-12
    assert all(rate > 0.5 for rate in result.cache_hit_rates)
    assert result.device_profile["kernel_seconds"] > 0
    # Warm cache passes must beat the numpy baseline at every size.
    assert np.all(result.speedup("cached-warm") > 1.0)
    # The sublinear backends join the sweep with an accuracy axis.
    for series in ("grid", "hashing"):
        assert len(result.wall_seconds[series]) == 2
        assert len(result.qerror[series]) == 2
        assert all(q >= 1.0 for q in result.qerror[series])
    assert result.rows_per_query["grid"] == [0.0, 0.0]
    payload = result.as_dict()
    assert payload["sublinear"]["sizes"] == []
    assert "grid" in payload["qerror"]
