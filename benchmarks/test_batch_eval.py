"""Benchmark of the batched query-evaluation engine.

Acceptance bar, on the 1000-query / 1024-point / 4-dimensional
workload: ``selectivity_batch`` matches the looped per-query path to
1e-12, and the batched choreography is at least 5x faster than the
query-at-a-time protocol on the repo's runtime measure — the modelled
device clock that all runtime experiments report (DESIGN.md): the
batched path pays the per-query launch latencies and transfers once per
batch instead of once per query.

The host-side numpy evaluation is also benchmarked (informationally —
no timing assertion, wall clock on shared machines is too noisy).  Its
speedup is bounded by erf throughput: both paths evaluate the same
``2 q s d`` Gaussian CDFs, so batching can only shave the per-query
Python and dispatch overhead.
"""

import numpy as np
import pytest

from repro.geometry import Box, QueryBatch
from repro.core import KernelDensityEstimator, scott_bandwidth
from repro.bench.experiments import run_batch_scaling
from repro.device import DeviceContext, DeviceKDE


QUERIES = 1000
SAMPLE_SIZE = 1024
DIMENSIONS = 4


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(20150601)
    data = rng.normal(size=(100_000, DIMENSIONS))
    sample = data[rng.choice(len(data), size=SAMPLE_SIZE, replace=False)]
    estimator = KernelDensityEstimator(sample, scott_bandwidth(sample))
    centers = data[rng.integers(len(data), size=QUERIES)]
    widths = rng.uniform(0.2, 2.0, size=(QUERIES, DIMENSIONS))
    queries = [
        Box(c - w / 2, c + w / 2) for c, w in zip(centers, widths)
    ]
    return estimator, queries


def test_batched_matches_loop_to_1e12(setup):
    estimator, queries = setup
    batched = estimator.selectivity_batch(QueryBatch.from_boxes(queries))
    looped = np.array([estimator.selectivity(q) for q in queries])
    np.testing.assert_allclose(batched, looped, rtol=0, atol=1e-12)


def test_batched_at_least_5x_faster_on_device_clock(setup):
    """The headline batching win: >= 5x on the modelled device clock.

    The per-query protocol (Figure 3) pays two transfers and four
    launches per query on the adaptive estimator; ``estimate_batch`` /
    ``feedback_batch`` serve the whole 1000-query workload with one
    transfer/launch of each kind (plus the per-query estimate
    reductions), so launch latency and transfer overhead amortise across
    the batch.
    """
    estimator, queries = setup
    sample = estimator.sample
    truths = [0.001] * len(queries)

    looped_context = DeviceContext.for_device("gpu")
    looped_kde = DeviceKDE(sample, looped_context, adaptive=True)
    looped_context.reset_clock()
    looped_estimates = []
    for query, truth in zip(queries, truths):
        looped_estimates.append(looped_kde.estimate(query))
        looped_kde.feedback(query, truth)
    looped_seconds = looped_context.elapsed_seconds

    batched_context = DeviceContext.for_device("gpu")
    batched_kde = DeviceKDE(sample, batched_context, adaptive=True)
    batched_context.reset_clock()
    batched_estimates = batched_kde.estimate_batch(queries)
    batched_kde.feedback_batch(queries, truths)
    batched_seconds = batched_context.elapsed_seconds

    # Same math either way: identical estimates for the shared model
    # state (the first query, before any feedback diverges the models).
    assert batched_estimates[0] == looped_estimates[0]

    speedup = looped_seconds / batched_seconds
    assert speedup >= 5.0, (
        f"batched device path only {speedup:.2f}x faster "
        f"({batched_seconds * 1e3:.1f}ms vs {looped_seconds * 1e3:.1f}ms "
        f"modelled)"
    )


def test_numpy_wallclock_batched(setup, benchmark):
    """Host-side wall clock of the batched numpy path (informational).

    Both numpy paths are bound by the same ``2 q s d`` erf evaluations,
    so batching only shaves the per-query Python overhead (~1.1-1.5x
    depending on machine noise); compare against
    :func:`test_numpy_wallclock_looped` in the benchmark table.  The
    hard speedup assertion lives on the deterministic modelled clock.
    """
    estimator, queries = setup
    batch = QueryBatch.from_boxes(queries)
    estimates = benchmark(estimator.selectivity_batch, batch)
    assert estimates.shape == (QUERIES,)


def test_numpy_wallclock_looped(setup, benchmark):
    estimator, queries = setup
    estimates = benchmark(
        lambda: [estimator.selectivity(q) for q in queries]
    )
    assert len(estimates) == QUERIES


def test_batched_gradient_speedup(setup, benchmark):
    estimator, queries = setup
    batch = QueryBatch.from_boxes(queries)
    gradients = benchmark(estimator.selectivity_gradient_batch, batch)
    assert gradients.shape == (QUERIES, DIMENSIONS)


def test_modelled_device_clock_amortisation(benchmark):
    result = benchmark(
        run_batch_scaling,
        batch_sizes=(1, 16, 256),
        model_size=SAMPLE_SIZE,
        dimensions=DIMENSIONS,
        adaptive=True,
    )
    for device in ("gpu", "cpu"):
        speedup = result.speedup(device)
        # Per-query modelled cost falls monotonically with the batch size
        # (launch latency and transfers amortised across the batch).
        assert np.all(np.diff(speedup) > 0)
        assert speedup[-1] > 2.0
