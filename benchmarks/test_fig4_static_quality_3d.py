"""Figure 4 — estimation quality on static 3-D datasets.

Paper shape: *Batch* beats *Heuristic* in >90% of experiments, beats
*SCV* in ~63%, and both optimised variants beat *STHoles* in most runs.
The benchmark regenerates two representative cells of the figure at
reduced scale and checks the aggregate ordering.
"""

import numpy as np
import pytest

from repro.bench.experiments import run_static_quality


@pytest.fixture(scope="module")
def figure4():
    return run_static_quality(
        dimensions=3,
        datasets=("power", "synthetic"),
        workloads=("DT", "UV"),
        repetitions=2,
        rows=20_000,
        train_queries=40,
        test_queries=80,
        batch_starts=3,
    )


def test_fig4_static_quality_3d(benchmark, figure4):
    def regenerate():
        return run_static_quality(
            dimensions=3,
            datasets=("synthetic",),
            workloads=("DT",),
            repetitions=1,
            rows=10_000,
            train_queries=30,
            test_queries=50,
            batch_starts=2,
        )

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    benchmark.extra_info["cells"] = {
        f"{d}/{w}": {k: round(float(np.mean(v)), 4) for k, v in cell.items()}
        for (d, w), cell in result.errors.items()
    }


def test_fig4_shape_batch_beats_heuristic(figure4):
    wins = sum(
        1
        for experiment in figure4.experiments
        if experiment["Batch"] < experiment["Heuristic"]
    )
    assert wins / len(figure4.experiments) >= 0.6


def test_fig4_shape_optimised_kde_beats_stholes(figure4):
    batch_mean = np.mean([e["Batch"] for e in figure4.experiments])
    stholes_mean = np.mean([e["STHoles"] for e in figure4.experiments])
    assert batch_mean < stholes_mean


def test_fig4_shape_adaptive_between_heuristic_and_batch(figure4):
    heuristic = np.mean([e["Heuristic"] for e in figure4.experiments])
    adaptive = np.mean([e["Adaptive"] for e in figure4.experiments])
    assert adaptive < heuristic * 1.05
