"""Figure 5 — estimation quality on static 8-D datasets.

Same protocol as Figure 4 on the 8-dimensional projections.  The paper's
shape carries over: feedback-optimised bandwidths beat the Scott
heuristic, and KDE variants remain competitive with STHoles in higher
dimensions (where histogram bucketisation suffers most).
"""

import numpy as np
import pytest

from repro.bench.experiments import run_static_quality


@pytest.fixture(scope="module")
def figure5():
    return run_static_quality(
        dimensions=8,
        datasets=("forest", "synthetic"),
        workloads=("DT", "UV"),
        repetitions=2,
        rows=20_000,
        train_queries=40,
        test_queries=80,
        batch_starts=3,
    )


def test_fig5_static_quality_8d(benchmark, figure5):
    def regenerate():
        return run_static_quality(
            dimensions=8,
            datasets=("synthetic",),
            workloads=("DT",),
            repetitions=1,
            rows=10_000,
            train_queries=30,
            test_queries=50,
            batch_starts=2,
        )

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    benchmark.extra_info["cells"] = {
        f"{d}/{w}": {k: round(float(np.mean(v)), 4) for k, v in cell.items()}
        for (d, w), cell in result.errors.items()
    }


def test_fig5_shape_batch_beats_heuristic(figure5):
    wins = sum(
        1
        for experiment in figure5.experiments
        if experiment["Batch"] < experiment["Heuristic"]
    )
    assert wins / len(figure5.experiments) >= 0.6


def test_fig5_shape_kde_competitive_with_stholes(figure5):
    batch_mean = np.mean([e["Batch"] for e in figure5.experiments])
    stholes_mean = np.mean([e["STHoles"] for e in figure5.experiments])
    assert batch_mean <= stholes_mean * 1.1
