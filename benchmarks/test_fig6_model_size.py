"""Figure 6 — estimation quality with growing model size.

Paper shape: the error decreases roughly as a power law with the sample
size (1,024 -> 32,768 cuts it to about a third), and the optimised
estimators are roughly twice as accurate as *Heuristic* throughout.
"""

import numpy as np
import pytest

from repro.bench.experiments import run_model_size_quality


@pytest.fixture(scope="module")
def figure6():
    return run_model_size_quality(
        sizes=(1024, 4096, 16384),
        repetitions=3,
        rows=40_000,
        train_queries=50,
        test_queries=60,
        batch_starts=3,
    )


def test_fig6_model_size(benchmark, figure6):
    def regenerate():
        return run_model_size_quality(
            sizes=(512, 2048),
            repetitions=1,
            rows=15_000,
            train_queries=30,
            test_queries=40,
            batch_starts=2,
        )

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    benchmark.extra_info["curves"] = {
        name: [round(float(np.mean(result.errors[name][s])), 4) for s in result.sizes]
        for name in result.errors
    }
    benchmark.extra_info["full_curves"] = {
        name: [float(v) for v in figure6.mean_curve(name)]
        for name in figure6.errors
    }


def test_fig6_shape_error_decreases_with_size(figure6):
    for name in ("Heuristic", "Batch"):
        curve = figure6.mean_curve(name)
        assert curve[-1] < curve[0]


def test_fig6_shape_16x_sample_cuts_error_substantially(figure6):
    curve = figure6.mean_curve("Heuristic")
    # Paper: 32x the sample cuts the error to ~1/3; at 16x we require at
    # least a 35% reduction.
    assert curve[-1] < 0.65 * curve[0]


def test_fig6_shape_optimised_more_accurate_than_heuristic(figure6):
    heuristic = figure6.mean_curve("Heuristic")
    batch = figure6.mean_curve("Batch")
    assert batch.mean() < heuristic.mean()
