"""Figure 7 — estimator runtime with growing model size.

Paper shape (on the modelled device clock; see DESIGN.md substitution 1):

* flat runtime until ~16-32K sample points (launch/transfer latency),
  then linear scaling;
* GPU about 4x faster than the CPU on large models, estimating a 128K
  model in under ~1 ms;
* *Adaptive* costs a constant offset over *Heuristic* (its extra kernels
  are hidden behind query execution);
* STHoles is faster for small models but 7-10x slower than GPU KDE (and
  ~3x slower than CPU KDE) on large models.
"""

import pytest

from repro.bench.experiments import run_runtime_scaling


@pytest.fixture(scope="module")
def figure7():
    return run_runtime_scaling(
        sizes=(1024, 4096, 16384, 65536, 131072),
        queries=25,
        data_rows=140_000,
    )


def test_fig7_runtime(benchmark, figure7):
    def regenerate():
        return run_runtime_scaling(
            sizes=(1024, 16384), queries=5, data_rows=20_000
        )

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    benchmark.extra_info["series_ms"] = {
        name: [round(v * 1e3, 3) for v in values]
        for name, values in figure7.seconds.items()
    }


def test_fig7_shape_flat_then_linear(figure7):
    gpu = figure7.series("Heuristic GPU")
    # 16x growth from 1K to 16K costs < 3x; 8x growth from 16K to 128K
    # costs > 3x.
    assert gpu[2] < 3 * gpu[0]
    assert gpu[4] > 3 * gpu[2]


def test_fig7_shape_gpu_beats_cpu_large(figure7):
    ratio = figure7.series("Heuristic CPU")[-1] / figure7.series("Heuristic GPU")[-1]
    assert 2.5 <= ratio <= 6.0


def test_fig7_shape_gpu_under_1_2ms_at_128k(figure7):
    assert figure7.series("Heuristic GPU")[-1] < 1.2e-3


def test_fig7_shape_adaptive_constant_offset(figure7):
    gap = figure7.series("Adaptive GPU") - figure7.series("Heuristic GPU")
    assert (gap > 0).all()
    assert gap.max() < 2 * gap.min() + 1e-9


def test_fig7_shape_stholes_crossover(figure7):
    stholes = figure7.series("STHoles")
    gpu = figure7.series("Heuristic GPU")
    cpu = figure7.series("Heuristic CPU")
    # Faster than KDE on the smallest models...
    assert stholes[0] < gpu[0]
    # ... but 7-10x slower than GPU KDE and ~2-4x slower than CPU KDE on
    # the largest.
    assert 5.0 <= stholes[-1] / gpu[-1] <= 12.0
    assert 1.5 <= stholes[-1] / cpu[-1] <= 4.0
