"""Figure 8 — estimation quality on changing data.

Paper shape: under the evolving-cluster workload *Heuristic* cannot keep
up with the database changes, *STHoles* adjusts but cannot compete, and
*Adaptive* (online bandwidth learning + Karma sample maintenance +
reservoir sampling) tracks the changes and delivers the lowest error.
"""

import numpy as np
import pytest

from repro.bench.experiments import run_dynamic_quality


@pytest.fixture(scope="module")
def figure8():
    return run_dynamic_quality(
        dimensions=5,
        runs=3,
        cycles=6,
        queries_per_cycle=50,
    )


def test_fig8_dynamic(benchmark, figure8):
    def regenerate():
        return run_dynamic_quality(
            dimensions=5,
            runs=1,
            cycles=3,
            queries_per_cycle=20,
        )

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    benchmark.extra_info["final_errors"] = {
        name: round(figure8.final_error(name), 4) for name in figure8.traces
    }


def test_fig8_shape_adaptive_beats_heuristic(figure8):
    assert figure8.final_error("Adaptive") < figure8.final_error("Heuristic")


def test_fig8_shape_adaptive_beats_stholes(figure8):
    assert figure8.final_error("Adaptive") < figure8.final_error("STHoles")


def test_fig8_shape_adaptive_improves_over_time(figure8):
    trace = figure8.mean_trace("Adaptive")
    early = trace[: len(trace) // 4].mean()
    late = trace[-len(trace) // 4 :].mean()
    assert late < early


def test_fig8_shape_heuristic_never_adapts(figure8):
    """Heuristic's error stays at (or drifts above) its initial level."""
    trace = figure8.mean_trace("Heuristic")
    early = trace[: len(trace) // 4].mean()
    late = trace[-len(trace) // 4 :].mean()
    assert late > 0.6 * early
