"""Benchmark of the proactive controller against reactive serving.

Acceptance bar: under the identical phased schedule (feedback bursts
publishing fresh — cold — readers, then think-time client bursts), the
proactive mode must beat the reactive mode on BOTH p99 latency and shed
rate, with the win attributable to recorded controller decisions (at
least one warm plus at least one publish or scale action across the
run).  The clock-injected autoscale ramp must also show the forecaster
growing the shard pool ahead of a rising offered rate.
"""

import pytest

from repro.bench.experiments import run_forecast

pytestmark = pytest.mark.bench


def _run():
    # The 32k-sample schedule: cold CachedBackend builds cost ~4x a
    # warmed batch here, so the reactive/proactive separation is wide
    # (p99 typically 3-5x) and the wall-clock A/B rarely inverts.
    return run_forecast(
        sample_size=32768,
        rows=50_000,
        phases=4,
        clients=32,
        rate=100.0,
        requests_per_client=15,
        max_queue_depth=6,
        offered_rates=(30, 90, 200, 330, 330),
    )


@pytest.fixture(scope="module")
def result():
    outcome = _run()
    if not (
        outcome.proactive.p99_ms < outcome.reactive.p99_ms
        and outcome.proactive.shed_rate < outcome.reactive.shed_rate
    ):
        # Wall-clock A/Bs on shared CI workers see scheduler noise; one
        # retry distinguishes an unlucky run from a real regression.
        outcome = _run()
    return outcome


def test_proactive_beats_reactive_p99(result):
    assert result.proactive.completed > 0 and result.reactive.completed > 0
    assert result.proactive.p99_ms < result.reactive.p99_ms, (
        f"proactive p99 {result.proactive.p99_ms:.2f}ms not below "
        f"reactive {result.reactive.p99_ms:.2f}ms"
    )


def test_proactive_sheds_less(result):
    # The schedule is tuned so cold-reader stalls overflow the admission
    # queue: reactive must shed, and proactive must shed strictly less.
    assert result.reactive.shed > 0, "schedule produced no reactive sheds"
    assert result.proactive.shed_rate < result.reactive.shed_rate, (
        f"proactive shed rate {result.proactive.shed_rate:.4f} not below "
        f"reactive {result.reactive.shed_rate:.4f}"
    )


def test_decisions_recorded(result):
    actions = result.proactive.actions
    assert actions.get("warm", 0) >= 1, f"no warm actions: {actions}"
    assert (
        actions.get("publish", 0) >= 1 or result.scale_events >= 1
    ), f"no publish/scale decisions: {actions}, {result.scale_events}"


def test_autoscale_follows_the_ramp(result):
    steps = result.autoscale
    assert steps, "autoscale ramp produced no steps"
    assert result.scale_events >= 1
    # The pool must grow along the ramp and the forecast must lead the
    # measured rate once the ramp is underway (linear trend
    # extrapolates forward).
    assert steps[-1].shards > steps[0].shards
    rising = [s for s in steps[1:-1] if s.offered_rate > steps[0].offered_rate]
    assert any(s.predicted_rate > s.measured_rate for s in rising)
