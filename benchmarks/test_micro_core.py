"""Micro-benchmarks of the core operations (real wall-clock, not modelled).

These complement the Figure 7 device-model numbers with genuine numpy
timings on this machine: estimate latency at growing sample sizes, the
gradient kernel, STHoles estimation, and the Karma update pass.
"""

import numpy as np
import pytest

from repro.geometry import Box
from repro.core import KernelDensityEstimator, KarmaTracker, scott_bandwidth
from repro.baselines import STHolesHistogram


@pytest.fixture(scope="module")
def data():
    return np.random.default_rng(0).normal(size=(200_000, 8))


@pytest.fixture(scope="module")
def query():
    return Box(np.full(8, -1.0), np.full(8, 1.0))


@pytest.mark.parametrize("sample_size", [1024, 8192, 65536])
def test_estimate_latency(benchmark, data, query, sample_size):
    sample = data[:sample_size]
    estimator = KernelDensityEstimator(sample, scott_bandwidth(sample))
    result = benchmark(estimator.selectivity, query)
    assert 0.0 <= result <= 1.0


@pytest.mark.parametrize("sample_size", [1024, 8192])
def test_gradient_latency(benchmark, data, query, sample_size):
    sample = data[:sample_size]
    estimator = KernelDensityEstimator(sample, scott_bandwidth(sample))
    gradient = benchmark(estimator.selectivity_gradient, query)
    assert gradient.shape == (8,)


def test_stholes_estimate_latency(benchmark, data, query):
    bounds = Box.bounding(data[:20_000])
    rng = np.random.default_rng(1)

    def count(box):
        return int(box.contains_points(data[:20_000]).sum())

    histogram = STHolesHistogram(
        bounds, 20_000, max_buckets=256, region_count=count
    )
    for _ in range(40):
        center = data[rng.integers(20_000)]
        box = Box(center - 0.5, center + 0.5).clip_to(bounds)
        histogram.estimate(box)
        histogram.feedback(box, count(box) / 20_000)
    result = benchmark(histogram.estimate, query.clip_to(bounds))
    assert 0.0 <= result <= 1.0


def test_karma_update_latency(benchmark, data, query):
    sample = data[:8192]
    estimator = KernelDensityEstimator(sample, scott_bandwidth(sample))
    contributions = estimator.contributions(query)
    tracker = KarmaTracker(8192)

    def update():
        return tracker.update(
            contributions,
            0.01,
            query=query,
            bandwidth=estimator.bandwidth,
        )

    benchmark(update)


def test_scott_bandwidth_latency(benchmark, data):
    result = benchmark(scott_bandwidth, data[:65536])
    assert result.shape == (8,)
