"""Benchmark of the optimizer-in-the-loop plan-quality experiment.

Acceptance bar: on the correlated star schema, the self-tuning KDE
served through the full stack (registry -> snapshot servers -> batched
front-end pricing) must choose a strictly better join order than the
attribute-value-independence baseline — a plan-quality ratio at least
2x lower — and land within 20% of the true optimum itself.  The
deliberately stale KDE must do *worse* than fresh AVI histograms (its
confidently-wrong joint beats AVI's merely-blind marginals), and the
subset-DP enumerator must reproduce the exhaustive sweep's plan exactly
while enumerating a chain query far beyond the factorial cap.
"""

import pytest

from repro.bench.experiments import run_plans

pytestmark = pytest.mark.bench


def _run(seed=0):
    return run_plans(
        fact_rows=20_000,
        dim_rows=2_000,
        sample_size=384,
        feedback_queries=60,
        dp_tables=10,
        seed=seed,
        progress=False,
    )


@pytest.fixture(scope="module")
def result():
    outcome = _run()
    if not outcome.ratio("kde") * 2.0 <= outcome.ratio("avi"):
        # KDE samples are random draws; one reseeded retry separates an
        # unlucky sample from a real regression.
        outcome = _run(seed=1)
    return outcome


def test_kde_beats_avi_on_plan_quality(result):
    kde, avi = result.ratio("kde"), result.ratio("avi")
    assert kde * 2.0 <= avi, (
        f"self-tuning KDE plan ratio {kde:.2f} not at least 2x better "
        f"than AVI's {avi:.2f} on the correlated star"
    )


def test_kde_plans_are_near_optimal(result):
    assert result.ratio("kde") <= 1.2, (
        f"KDE plan ratio {result.ratio('kde'):.2f} strays from the "
        "true optimum"
    )


def test_stale_model_is_worse_than_avi(result):
    # A model trained on flipped correlations is confidently wrong —
    # the failure mode the feedback loop exists to repair.
    assert result.ratio("stale-kde") > result.ratio("avi"), (
        f"stale KDE ratio {result.ratio('stale-kde'):.2f} should exceed "
        f"AVI's {result.ratio('avi'):.2f}"
    )


def test_kde_mode_prices_through_the_serving_stack(result):
    kde = next(m for m in result.modes if m.mode == "kde")
    # Predicates answered through the front end's admission batches;
    # join edges through the served snapshots' joint integrals.
    assert kde.rung_counts.get("frontend-batch", 0) >= 3
    assert kde.rung_counts.get("joint-integral", 0) >= 3
    avi = next(m for m in result.modes if m.mode == "avi")
    assert avi.rung_counts.get("static-estimator", 0) >= 3


def test_dp_enumerator_is_exact_and_scales(result):
    assert result.dp_matches_exhaustive
    assert result.dp_tables >= 10
    assert result.dp_seconds < 30.0
