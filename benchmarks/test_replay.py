"""Benchmark of the workload-replay head-to-head.

Acceptance bar: replaying one drifting query log through every
estimator family, the self-tuning KDE — which receives the log's
true-selectivity feedback as the replay unfolds — must beat every
*static* baseline (heuristic KDE, AVI, sampling, Naru) on median
Q-error over the post-drift tail window, and every compared family
must respect the paper's ``d * 4 kB`` memory budget.
"""

import pytest

from repro.bench.experiments import run_replay
from repro.bench.experiments.replay import ADAPTIVE_ESTIMATORS

pytestmark = pytest.mark.bench


def _run(seed=0):
    return run_replay(
        rows=10_000,
        queries=120,
        dimensions=3,
        drift_at=0.5,
        target=0.02,
        seed=seed,
        progress=False,
    )


def _statics(result):
    return [e for e in result.estimators if not e.adaptive]


@pytest.fixture(scope="module")
def result():
    outcome = _run()
    adaptive = outcome.result_for("Adaptive").tail_qerror["p50"]
    if not all(
        adaptive < entry.tail_qerror["p50"] for entry in _statics(outcome)
    ):
        # The sample and the log are random draws; one reseeded retry
        # separates an unlucky draw from a real regression.
        outcome = _run(seed=1)
    return outcome


def test_adaptive_beats_every_static_after_feedback(result):
    adaptive = result.result_for("Adaptive").tail_qerror["p50"]
    for entry in _statics(result):
        assert adaptive < entry.tail_qerror["p50"], (
            f"self-tuning KDE tail median Q-error {adaptive:.3f} does "
            f"not beat static {entry.name}'s "
            f"{entry.tail_qerror['p50']:.3f} on the drifting log"
        )


def test_every_family_is_within_the_memory_budget(result):
    for entry in result.estimators:
        assert entry.within_budget, (
            f"{entry.name} footprint {entry.memory_bytes} exceeds the "
            f"d*4kB budget of {result.budget_bytes} bytes"
        )


def test_headtohead_covers_at_least_six_kinds(result):
    assert len(result.estimators) >= 6
    names = {entry.name for entry in result.estimators}
    assert {"Adaptive", "STHoles", "AVI", "Sampling", "Naru", "MSCN"} <= names


def test_adaptive_families_are_flagged_as_such(result):
    for entry in result.estimators:
        assert entry.adaptive == (entry.name in ADAPTIVE_ESTIMATORS)
