"""Table 1 — pairwise win percentages across all static experiments.

Paper values: Batch beats Heuristic in 90.8% of experiments, beats SCV
in 63.0%, beats STHoles in 84.1%; Adaptive beats STHoles in 71.3%.  The
benchmark regenerates the matrix at reduced scale and checks the ordinal
relationships.
"""

import pytest

from repro.bench.experiments import run_static_quality
from repro.bench.metrics import win_matrix
from repro.bench.reporting import render_win_matrix


@pytest.fixture(scope="module")
def matrix():
    experiments = []
    for dimensions in (3, 8):
        result = run_static_quality(
            dimensions=dimensions,
            datasets=("power", "synthetic"),
            workloads=("DT", "UV"),
            repetitions=2,
            rows=20_000,
            train_queries=40,
            test_queries=80,
            batch_starts=3,
        )
        experiments.extend(result.experiments)
    return win_matrix(experiments)


def test_table1_win_matrix(benchmark, matrix):
    def regenerate():
        result = run_static_quality(
            dimensions=3,
            datasets=("synthetic",),
            workloads=("DT", "UV"),
            repetitions=1,
            rows=10_000,
            train_queries=30,
            test_queries=50,
            batch_starts=2,
        )
        return win_matrix(result.experiments)

    small = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    benchmark.extra_info["matrix"] = small.percentages
    benchmark.extra_info["full_matrix"] = matrix.percentages
    benchmark.extra_info["rendered"] = render_win_matrix(matrix)


def test_table1_shape_batch_dominates_heuristic(matrix):
    assert matrix.wins("Batch", "Heuristic") >= 60.0


def test_table1_shape_batch_vs_scv(matrix):
    # Paper: 63% — Batch wins a majority against SCV.
    assert matrix.wins("Batch", "SCV") >= matrix.wins("SCV", "Batch")


def test_table1_shape_optimised_kde_beats_stholes(matrix):
    assert matrix.wins("Batch", "STHoles") >= 50.0
    assert matrix.wins("Adaptive", "STHoles") >= 50.0
