"""Self-tuning under data changes: the Section 6.5 scenario, hands-on.

An evolving database: new clusters of data arrive, old ones are archived
(deleted), and queries chase the fresh data.  The static Scott-rule
estimator goes stale; the self-tuning estimator follows the changes via
reservoir sampling (inserts), Karma maintenance (deletes) and online
bandwidth learning.

Run:  python examples/changing_data.py
"""

import numpy as np

from repro.baselines import AdaptiveKDE, HeuristicKDE, kde_sample_size
from repro.db import Table
from repro.workloads import (
    DeleteClusterEvent,
    EvolvingClusterWorkload,
    InsertEvent,
    QueryEvent,
)


def main() -> None:
    rng = np.random.default_rng(3)
    workload = EvolvingClusterWorkload(
        dimensions=5,
        cycles=6,
        queries_per_cycle=60,
        seed=3,
    )
    table = Table(5, initial_rows=workload.initial_data())
    print(f"Initial load: {len(table):,} tuples in 3 clusters\n")

    sample = table.analyze(
        min(kde_sample_size(5), len(table)), rng
    )
    static = HeuristicKDE(sample)
    adaptive = AdaptiveKDE(
        sample, row_source=table, population_size=len(table), seed=3
    )

    cycle = 0
    static_errors, adaptive_errors = [], []
    print(f"{'cycle':<7}{'tuples':>8}{'static err':>12}{'adaptive err':>14}"
          f"{'replaced':>10}")
    for event in workload.events():
        if isinstance(event, InsertEvent):
            table.insert(event.row)
            adaptive.on_insert(event.row)
        elif isinstance(event, DeleteClusterEvent):
            deleted = table.delete_in(event.region)
            for _ in range(deleted):
                adaptive.on_delete()
            cycle += 1
            print(
                f"{cycle:<7}{len(table):>8,}"
                f"{np.mean(static_errors[-40:]):>12.4f}"
                f"{np.mean(adaptive_errors[-40:]):>14.4f}"
                f"{adaptive.model.points_replaced:>10}"
            )
        elif isinstance(event, QueryEvent):
            truth = table.selectivity(event.query)
            static_errors.append(abs(static.estimate(event.query) - truth))
            adaptive_errors.append(
                abs(adaptive.estimate(event.query) - truth)
            )
            adaptive.feedback(event.query, truth)

    improvement = np.mean(static_errors) / max(np.mean(adaptive_errors), 1e-12)
    print(f"\nOverall: static {np.mean(static_errors):.4f}, "
          f"adaptive {np.mean(adaptive_errors):.4f} "
          f"({improvement:.1f}x better)")
    print(f"Reservoir accepted {adaptive.model.reservoir.accepted} inserted "
          f"tuples into the sample; Karma replaced "
          f"{adaptive.model.points_replaced} stale points.")


if __name__ == "__main__":
    main()
