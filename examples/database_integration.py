"""Database integration: the full estimate/execute/feedback loop.

Reproduces the paper's Postgres integration story on the in-memory
substrate: a table is loaded, ANALYZE collects the sample, and every
query flows through estimate -> execute -> feedback (Figure 3).  The
self-tuning estimator and the STHoles baseline both learn from the same
stream; the script reports how their errors evolve.

Run:  python examples/database_integration.py
"""

import numpy as np

from repro.geometry import Box
from repro.baselines import (
    AdaptiveKDE,
    HeuristicKDE,
    STHolesHistogram,
    kde_sample_size,
    memory_budget_bytes,
    sthole_bucket_budget,
)
from repro.datasets import load_dataset
from repro.db import FeedbackLoop, Table
from repro.workloads import generate_workload


def main() -> None:
    rng = np.random.default_rng(7)

    # Load the Power stand-in dataset into the relational substrate.
    data = load_dataset("power", dimensions=3, rows=40_000, seed=0)
    table = Table(3, column_names=["active_power", "voltage", "sub_meter"],
                  initial_rows=data)
    print(f"Loaded table with {len(table):,} rows, {table.dimensions} columns")

    # ANALYZE: collect the sample within the d*4kB budget (1024 points).
    budget = memory_budget_bytes(table.dimensions)
    sample = table.analyze(kde_sample_size(table.dimensions, budget), rng)
    print(f"ANALYZE collected {len(sample)} rows "
          f"({budget // 1024} kB model budget)\n")

    # Three estimators share the same queries through feedback loops.
    loops = {
        "Heuristic": FeedbackLoop(table, HeuristicKDE(sample)),
        "Adaptive": FeedbackLoop(
            table,
            AdaptiveKDE(sample, row_source=table,
                        population_size=len(table), seed=0),
        ).attach(),
        "STHoles": FeedbackLoop(
            table,
            STHolesHistogram(
                table.bounds(margin=1e-9),
                row_count=len(table),
                max_buckets=sthole_bucket_budget(table.dimensions, budget),
                region_count=table.count,
            ),
        ),
    }

    # A DT workload: data-centred queries returning ~1% of the table.
    queries = generate_workload(data, "DT", 300, rng,
                                search_data=data[:20_000])
    for loop in loops.values():
        loop.run_workload(queries)

    print(f"{'window':<12}" + "".join(f"{name:>12}" for name in loops))
    window = 50
    for start in range(0, len(queries), window):
        row = f"{start}-{start + window:<7}"
        for loop in loops.values():
            trace = loop.error_trace()[start : start + window]
            row += f"{trace.mean():>12.4f}"
        print(row)

    print("\nFinal mean absolute error (last 100 queries):")
    for name, loop in loops.items():
        print(f"  {name:<10} {loop.mean_absolute_error(last=100):.4f}")
    adaptive = loops["Adaptive"].estimator
    print(f"\nAdaptive tuned its bandwidth over "
          f"{adaptive.model.feedback_count} feedback cycles; "
          f"{adaptive.model.points_replaced} sample points replaced.")


if __name__ == "__main__":
    main()
