"""GPU acceleration: the device layer and the Figure 7 story.

Runs the device-resident estimator on the simulated GTX-460 and Xeon
E5620 (see DESIGN.md substitution 1: math exact, clock modelled), prints
the per-query overhead across model sizes, and shows the transfer
metering that backs the paper's "the sample is kept on the graphics card
at all times" claim (footnote 2).

Run:  python examples/gpu_vs_cpu.py
"""

import numpy as np

from repro import create_estimator
from repro.geometry import Box
from repro.datasets import gunopulos_synthetic
from repro.device import DeviceContext


def main() -> None:
    rng = np.random.default_rng(0)
    data = gunopulos_synthetic(rows=150_000, dimensions=8, seed=0)
    query = Box(np.full(8, 0.2), np.full(8, 0.4))

    print(f"{'model size':>10} {'GPU [ms]':>10} {'CPU [ms]':>10} {'speedup':>8}")
    for size in (1024, 4096, 16384, 65536, 131072):
        sample = data[rng.choice(len(data), size=size, replace=False)]
        times = {}
        for device in ("gpu", "cpu"):
            kde = create_estimator(
                sample, kind="device", device=device, adaptive=True
            )
            context = kde.context
            context.reset_clock()
            for _ in range(10):
                kde.estimate(query)
                kde.feedback(query, 0.01)
            times[device] = context.elapsed_seconds / 10
        print(
            f"{size:>10} {times['gpu'] * 1e3:>10.3f} "
            f"{times['cpu'] * 1e3:>10.3f} "
            f"{times['cpu'] / times['gpu']:>7.1f}x"
        )

    # Transfer accounting: after construction, per-query traffic is just
    # bounds in / estimate out (plus the tiny feedback scalar).
    context = DeviceContext.for_device("gpu")
    sample = data[:16384]
    kde = create_estimator(
        sample, kind="device", context=context, adaptive=True
    )
    construction_bytes = context.transfers.total_bytes
    context.transfers.clear()
    for _ in range(100):
        kde.estimate(query)
        kde.feedback(query, 0.01)
    print(f"\nPCIe traffic:")
    print(f"  model construction : {construction_bytes / 1024:.0f} kB "
          "(the one big transfer, Section 5.2)")
    print(f"  100 queries        : {context.transfers.total_bytes / 1024:.1f} kB total"
          f" ({context.transfers.total_bytes / 100:.0f} bytes/query)")
    for label in ("query_bounds", "estimate", "loss_factor"):
        print(f"    {label:<15}: {context.transfers.bytes_for_label(label)} bytes")


if __name__ == "__main__":
    main()
