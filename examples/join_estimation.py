"""Join selectivity estimation and its impact on plan choice (Section 8).

Demonstrates the two join routes the paper sketches as future work —
PK-FK joins via sampling the join result, and theta (band) joins via the
closed-form joint integral over two KDE models — and closes the loop by
feeding the estimates into the miniature cost-based optimizer to show
how estimation quality decides join orders.

Run:  python examples/join_estimation.py
"""

import numpy as np

from repro.geometry import Box
from repro.core import KernelDensityEstimator, scott_bandwidth
from repro.core.join import (
    band_join_selectivity,
    equi_join_density,
    independence_band_join_selectivity,
)
from repro.baselines import HeuristicKDE
from repro.db import Table, band_join_count, pk_fk_join_sample
from repro.db.optimizer import (
    EstimatedCostModel,
    JoinQuery,
    TrueCostModel,
    optimize_join_order,
    plan_quality_ratio,
)


def band_join_demo(rng) -> None:
    print("=== Theta (band) join via the joint integral ===")
    # Two sensor tables whose timestamps drift apart: a band join
    # "r.time BETWEEN s.time - eps AND s.time + eps".
    r = Table(2, initial_rows=np.column_stack(
        [rng.gamma(3.0, 2.0, 30_000), rng.normal(size=30_000)]))
    s = Table(2, initial_rows=np.column_stack(
        [rng.gamma(3.5, 2.0, 20_000), rng.normal(size=20_000)]))
    kde_r = KernelDensityEstimator(r.analyze(1024, rng),
                                   scott_bandwidth(r.analyze(1024, rng)))
    kde_s = KernelDensityEstimator(s.analyze(1024, rng),
                                   scott_bandwidth(s.analyze(1024, rng)))
    print(f"{'eps':>6} {'true':>10} {'KDE':>10} {'histogram':>10}")
    for epsilon in (0.01, 0.05, 0.2, 1.0):
        truth = band_join_count(r, s, 0, 0, epsilon) / (len(r) * len(s))
        kde = band_join_selectivity(kde_r, kde_s, [0], [0], epsilon)
        hist = independence_band_join_selectivity(
            r.rows()[:, 0], s.rows()[:, 0], epsilon
        )
        print(f"{epsilon:>6} {truth:>10.5f} {kde:>10.5f} {hist:>10.5f}")
    density = equi_join_density(kde_r, kde_s, [0], [0])
    print(f"equality-limit density: {density:.5f} per key unit\n")


def pk_fk_demo(rng) -> None:
    print("=== PK-FK join: estimator over a join-result sample ===")
    keys = np.arange(2000.0)
    customers = Table(2, initial_rows=np.column_stack(
        [keys, rng.gamma(2.0, 25_000.0, 2000)]))      # key, income
    orders = Table(2, initial_rows=np.column_stack(
        [rng.integers(0, 2000, 50_000).astype(float),
         rng.gamma(2.0, 40.0, 50_000)]))              # customer key, amount
    sample = pk_fk_join_sample(orders, customers, 0, 0, 1024, rng)
    # Drop the duplicated key column: order amount, customer key, income.
    sample = sample[:, [1, 2, 3]]
    est = KernelDensityEstimator(sample, scott_bandwidth(sample))
    # "Orders above $100 by customers with income above 75k."
    query = Box([100.0, 0.0, 75_000.0], [1e6, 2000.0, 1e9])
    # Ground truth by predicate pushdown on both sides.
    rich = customers.rows()[customers.rows()[:, 1] > 75_000.0][:, 0]
    big = orders.rows()[orders.rows()[:, 1] > 100.0]
    truth = float(np.isin(big[:, 0], rich).sum()) / len(orders)
    print(f"post-join predicate: KDE {est.selectivity(query):.4f} "
          f"vs true {truth:.4f}\n")


def optimizer_demo(rng) -> None:
    print("=== Estimates drive join orders ===")
    fact = Table(3, initial_rows=np.column_stack(
        [rng.integers(0, 5000, 40_000).astype(float),
         rng.integers(0, 2000, 40_000).astype(float),
         rng.normal(size=40_000)]))
    dim_a = Table(2, initial_rows=np.column_stack(
        [np.arange(5000.0), rng.normal(size=5000)]))
    dim_b = Table(2, initial_rows=np.column_stack(
        [np.arange(2000.0), rng.normal(size=2000)]))
    query = JoinQuery(
        tables={"fact": fact, "dim_a": dim_a, "dim_b": dim_b},
        predicates={
            "dim_a": Box([0.0, -3.0], [25.0, 3.0]),     # very selective
            "dim_b": Box([0.0, -5.0], [1999.0, 5.0]),   # keeps everything
        },
        joins=[("fact", 0, "dim_a", 0), ("fact", 1, "dim_b", 0)],
    )
    joins = {
        ("fact", 0, "dim_a", 0): 1.0 / 5000.0,
        ("fact", 1, "dim_b", 0): 1.0 / 2000.0,
    }
    kde_model = EstimatedCostModel(
        {
            name: HeuristicKDE(table.analyze(min(1024, len(table)), rng))
            for name, table in query.tables.items()
        },
        joins,
    )
    kde_plan = optimize_join_order(query, kde_model)
    optimal = optimize_join_order(query, TrueCostModel())
    print(f"KDE-estimated plan : {kde_plan}")
    print(f"true-optimal plan  : {optimal}")
    print(f"plan-quality ratio : "
          f"{plan_quality_ratio(query, kde_plan):.2f} (1.0 = optimal)")


def main() -> None:
    rng = np.random.default_rng(5)
    band_join_demo(rng)
    pk_fk_demo(rng)
    optimizer_demo(rng)


if __name__ == "__main__":
    main()
