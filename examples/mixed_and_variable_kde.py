"""The Section 8 estimator extensions: discrete attributes and variable
bandwidths.

Part 1 — mixed continuous/discrete data: a Wang-van Ryzin kernel on an
integer-coded category column, side by side with the paper's observation
that even a pure Gaussian model degrades gracefully (its optimised
bandwidth collapses and it "counts matching tuples").

Part 2 — variable (sample-point) KDE: per-point Abramson bandwidth
factors let one model serve a dataset mixing a needle-sharp cluster with
a diffuse background, where any single fixed bandwidth must compromise.

Run:  python examples/mixed_and_variable_kde.py
"""

import numpy as np

from repro.geometry import Box
from repro.core import (
    KernelDensityEstimator,
    QueryFeedback,
    VariableKernelDensityEstimator,
    optimize_bandwidth,
    scott_bandwidth,
)
from repro.core.optimize import BandwidthOptimizer


def mixed_data_demo(rng) -> None:
    print("=== Mixed continuous/discrete estimation ===")
    # An orders table: amount (continuous) correlated with priority class
    # (discrete 0..4) — higher priorities carry larger amounts.
    priority = rng.integers(0, 5, size=40_000).astype(np.float64)
    amount = rng.gamma(2.0, 10.0 * (1.0 + priority), size=40_000)
    data = np.column_stack([amount, priority])
    sample = data[rng.choice(len(data), 1024, replace=False)]

    def truth(box):
        return float(box.contains_points(data).mean())

    workload = []
    for _ in range(100):
        cls = float(rng.integers(0, 5))
        lo = rng.uniform(0, 100)
        # "priority = cls" expressed as the integer range [cls-.5, cls+.5]
        # — equivalent on integer data, and it gives the continuous
        # kernel a non-degenerate interval to work with.
        box = Box([lo, cls - 0.5], [lo + 60.0, cls + 0.5])
        workload.append(QueryFeedback(box, truth(box)))
    test = workload[60:]
    train = workload[:60]

    configs = {
        "gaussian, Scott": (None, "gaussian"),
        "gaussian, optimised": ("opt", "gaussian"),
        "mixed kernels, optimised": ("opt", ["gaussian", "ordered_discrete"]),
    }
    for label, (mode, kernel) in configs.items():
        if mode is None:
            est = KernelDensityEstimator(sample, scott_bandwidth(sample), kernel)
        else:
            optimizer = BandwidthOptimizer(starts=4, seed=0)
            result = optimizer.optimize(sample, train, kernel=kernel)
            est = KernelDensityEstimator(sample, result.bandwidth, kernel)
        error = np.mean(
            [abs(est.selectivity(fb.query) - fb.selectivity) for fb in test]
        )
        bandwidth = np.round(est.bandwidth, 4)
        print(f"  {label:<26} error {error:.4f}   h = {bandwidth}")
    print("  (the optimiser shrinks the discrete dimension's bandwidth "
          "towards exact counting)\n")


def variable_kde_demo(rng) -> None:
    print("=== Variable (sample-point) bandwidths ===")
    spike = rng.normal(loc=0.0, scale=0.02, size=(15_000, 2))
    background = rng.normal(loc=0.0, scale=2.0, size=(15_000, 2))
    data = np.vstack([spike, background])
    sample = data[rng.choice(len(data), 1024, replace=False)]
    h = scott_bandwidth(sample)

    fixed = KernelDensityEstimator(sample, h)
    variable = VariableKernelDensityEstimator(sample, h)

    def mean_error(est, widths):
        errors = []
        for _ in range(100):
            center = data[rng.integers(len(data))]
            w = rng.uniform(*widths, size=2)
            box = Box(center - w, center + w)
            truth = float(box.contains_points(data).mean())
            errors.append(abs(est.selectivity(box) - truth))
        return float(np.mean(errors))

    for label, widths in (("narrow queries", (0.01, 0.1)),
                          ("wide queries", (0.5, 2.0))):
        fixed_err = mean_error(fixed, widths)
        variable_err = mean_error(variable, widths)
        print(f"  {label:<15} fixed {fixed_err:.4f}   "
              f"variable {variable_err:.4f}")
    factors = variable.local_factors
    print(f"  local factors span {factors.min():.2f} .. {factors.max():.2f} "
          "(small = dense spike, large = diffuse tail)")


def main() -> None:
    rng = np.random.default_rng(21)
    mixed_data_demo(rng)
    variable_kde_demo(rng)


if __name__ == "__main__":
    main()
