"""Quickstart: build, use, and optimise a KDE selectivity estimator.

Walks through the three steps of Section 3.4: collect a sample, estimate
range selectivities with Scott's-rule initialisation, then optimise the
bandwidth on observed query feedback and watch the error drop.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Box, create_estimator, optimize_bandwidth, scott_bandwidth
from repro.core import QueryFeedback


def main() -> None:
    rng = np.random.default_rng(42)

    # A correlated, bimodal "table" that a normal-reference bandwidth
    # handles badly — 50,000 rows over three attributes.
    cluster_a = rng.normal(loc=0.0, scale=0.15, size=(25_000, 3))
    cluster_b = rng.normal(loc=2.0, scale=0.15, size=(25_000, 3))
    table = np.vstack([cluster_a, cluster_b])

    def true_selectivity(box: Box) -> float:
        return float(box.contains_points(table).mean())

    # Step 1 — collect a random sample (what ANALYZE does).
    sample = table[rng.choice(len(table), size=1024, replace=False)]

    # Step 2 — a KDE model is just the sample plus a bandwidth
    # (Scott's rule by default).
    estimator = create_estimator(sample, kind="kde")
    query = Box([-0.3, -0.3, -0.3], [0.3, 0.3, 0.3])
    print(f"Scott's rule bandwidth : {np.round(estimator.bandwidth, 4)}")
    print(f"  estimate {estimator.estimate(query):.4f}"
          f" vs true {true_selectivity(query):.4f}")

    # Step 3 — optimise the bandwidth over query feedback (problem (5)).
    workload = []
    for _ in range(100):
        center = table[rng.integers(len(table))]
        widths = rng.uniform(0.1, 0.8, size=3)
        box = Box(center - widths / 2, center + widths / 2)
        workload.append(QueryFeedback(box, true_selectivity(box)))
    result = optimize_bandwidth(sample, workload, seed=0)
    print(f"\nOptimised bandwidth    : {np.round(result.bandwidth, 4)}")
    print(f"  training loss {result.initial_loss:.2e} -> {result.loss:.2e}"
          f" ({100 * result.improvement:.0f}% better)")

    # Compare on held-out queries.
    test_queries = []
    for _ in range(200):
        center = table[rng.integers(len(table))]
        widths = rng.uniform(0.1, 0.8, size=3)
        test_queries.append(Box(center - widths / 2, center + widths / 2))

    def mean_error(bandwidth):
        estimator.bandwidth = bandwidth
        return float(
            np.mean(
                [
                    abs(estimator.selectivity(q) - true_selectivity(q))
                    for q in test_queries
                ]
            )
        )

    scott_error = mean_error(scott_bandwidth(sample))
    optimized_error = mean_error(result.bandwidth)
    print(f"\nHeld-out mean absolute error:")
    print(f"  Scott's rule : {scott_error:.4f}")
    print(f"  optimised    : {optimized_error:.4f}"
          f"  ({scott_error / max(optimized_error, 1e-12):.1f}x better)")


if __name__ == "__main__":
    main()
