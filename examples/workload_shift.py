"""Workload adaptation: the bandwidth follows the queries.

Section 4.1's motivation in isolation: the *data* never changes, but the
query workload shifts from one region of the space to another.  Batch
optimisation is only optimal for the workload it was trained on; the
online learner re-tunes the bandwidth for whatever users ask now.

Run:  python examples/workload_shift.py
"""

import numpy as np

from repro.geometry import Box
from repro.baselines import AdaptiveKDE, BatchKDE
from repro.core import QueryFeedback
from repro.db import Table


def make_workload(data, region_center, rng, count, width_range):
    """Queries concentrated around one region of the data space."""
    queries = []
    near = data[
        np.linalg.norm(data - region_center, axis=1)
        < np.linalg.norm(data - region_center, axis=1).mean()
    ]
    for _ in range(count):
        center = near[rng.integers(len(near))]
        widths = rng.uniform(*width_range, size=data.shape[1])
        queries.append(Box(center - widths / 2, center + widths / 2))
    return queries


def main() -> None:
    rng = np.random.default_rng(11)

    # Two populations at very different scales: tight "hot" cluster and a
    # broad diffuse one.  The optimal bandwidth depends on which one the
    # workload queries.
    tight = rng.normal(loc=0.0, scale=0.05, size=(20_000, 2))
    broad = rng.normal(loc=4.0, scale=1.0, size=(20_000, 2))
    data = np.vstack([tight, broad])
    table = Table(2, initial_rows=data)
    sample = table.analyze(1024, rng)

    phase_a = make_workload(data, np.full(2, 4.0), rng, 150, (0.5, 2.0))
    phase_b = make_workload(data, np.zeros(2), rng, 150, (0.02, 0.1))

    feedback_a = [QueryFeedback(q, table.selectivity(q)) for q in phase_a]
    batch = BatchKDE(sample, feedback_a[:100], seed=0)
    adaptive = AdaptiveKDE(
        sample, row_source=table, population_size=len(table), seed=0
    )

    def run_phase(name, queries):
        batch_errors, adaptive_errors = [], []
        for query in queries:
            truth = table.selectivity(query)
            batch_errors.append(abs(batch.estimate(query) - truth))
            adaptive_errors.append(abs(adaptive.estimate(query) - truth))
            adaptive.feedback(query, truth)
        print(f"{name:<34} batch {np.mean(batch_errors):.4f}   "
              f"adaptive {np.mean(adaptive_errors):.4f}")

    print("Mean absolute error per phase:")
    run_phase("phase A (broad diffuse cluster)", phase_a)
    print(f"  adaptive bandwidth now: {np.round(adaptive.bandwidth, 3)}")
    run_phase("phase B (hot tight cluster)", phase_b[:75])
    run_phase("phase B after re-adaptation", phase_b[75:])
    print(f"  adaptive bandwidth now: {np.round(adaptive.bandwidth, 3)}")
    print("\nBatch stays tuned for phase A; the online learner re-tunes "
          "itself to phase B (Section 4.1).")


if __name__ == "__main__":
    main()
