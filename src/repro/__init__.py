"""repro — Self-tuning, GPU-accelerated KDE selectivity estimation.

A from-scratch Python reproduction of Heimel, Kiefer & Markl,
*Self-Tuning, GPU-Accelerated Kernel Density Models for Multidimensional
Selectivity Estimation*, SIGMOD 2015.

Subpackages
-----------
``repro.core``
    The paper's contribution: the KDE range-selectivity estimator,
    feedback-driven bandwidth optimisation (batch and online), and
    Karma/reservoir sample maintenance.
``repro.baselines``
    The compared estimators: STHoles, SCV-tuned KDE, plus AVI-histogram
    and naive-sampling extension baselines.
``repro.learned``
    Learned-estimator baselines (numpy-only): the Naru-style
    autoregressive model and the MSCN-style feedback-trained regressor,
    registered as ``kind="naru"`` / ``kind="mscn"``.
``repro.db``
    In-memory relational substrate standing in for the paper's Postgres
    integration (ANALYZE sampling, range queries, feedback events), plus
    the workload-replay harness (:func:`repro.db.replay_workload`)
    driving any estimator through a logged query trace from disk.
``repro.device``
    Simulated OpenCL-like device layer (buffers, transfers, launches,
    analytic cost model) standing in for the paper's GPU.
``repro.datasets`` / ``repro.workloads``
    Evaluation datasets and the DT/DV/UT/UV workload generators.
``repro.serve``
    Snapshot-isolated serving: read-copy-update publication of immutable
    model states, a join-signature-keyed model registry
    (:class:`ModelKey`; legacy ``(table, columns)`` spellings coerce),
    crash-safe periodic checkpoints with warm start, and an asyncio
    micro-batching front end coalescing concurrent clients into batched
    evaluations — including plan-level batched pricing for the
    optimizer (:class:`RegistryCostModel`, :func:`optimize_join_order`).
``repro.bench``
    The experiment harness regenerating every table and figure of the
    paper's evaluation (Section 6).
``repro.obs``
    Observability: metrics registry, span tracing, estimation traces,
    and the unified exporter :func:`repro.obs.export_metrics`
    (JSON/Prometheus; see :func:`repro.obs.enable_metrics`).
``repro.forecast``
    Workload forecasting and proactive control: moving-average / EWMA /
    linear-trend forecasters over the observability stream, predicate-
    region drift detection, and the :class:`ProactiveController`
    driving shard autoscaling, eager reader warming, scheduled
    publication and drift-triggered bandwidth retuning.
``repro.faults``
    Fault injection and fault tolerance: deterministic chaos plans
    (worker crashes, hangs, shm corruption, torn checkpoints), retry
    policies with backoff+jitter, and the circuit breaker guarding
    sharded execution.

Most workflows start with :func:`create_estimator`::

    import repro
    estimator = repro.create_estimator(sample, kind="self_tuning",
                                       backend="cached")
"""

from .geometry import Box, QueryBatch, RangeQuery
from .core import (
    CachedBackend,
    CheckpointError,
    GridBackend,
    HashingBackend,
    KernelDensityEstimator,
    ModelState,
    NumpyBackend,
    SelfTuningKDE,
    ShardedBackend,
    optimize_bandwidth,
    scott_bandwidth,
)
from .db.optimizer import (
    RegistryCostModel,
    optimize_join_order,
    plan_quality_ratio,
)
from .db.replay import replay_workload
from .factory import ESTIMATOR_KINDS, create_estimator
from .learned import MSCNRegressor, NaruEstimator
from .faults import CircuitBreaker, FaultInjector, FaultPlan, RetryPolicy
from .forecast import DriftDetector, Forecaster, ProactiveController
from .serve import (
    CheckpointManager,
    EstimatorFrontend,
    FrontendConfig,
    ModelKey,
    ModelRegistry,
    Overloaded,
    SnapshotServer,
)
from .obs import (
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    export_metrics,
    get_registry,
    metrics_enabled,
)

__version__ = "1.0.0"

__all__ = [
    "Box",
    "CachedBackend",
    "CheckpointError",
    "CheckpointManager",
    "CircuitBreaker",
    "DriftDetector",
    "ESTIMATOR_KINDS",
    "EstimatorFrontend",
    "FaultInjector",
    "FaultPlan",
    "Forecaster",
    "FrontendConfig",
    "GridBackend",
    "HashingBackend",
    "KernelDensityEstimator",
    "MSCNRegressor",
    "NaruEstimator",
    "RetryPolicy",
    "MetricsRegistry",
    "ModelKey",
    "ModelRegistry",
    "ModelState",
    "NumpyBackend",
    "Overloaded",
    "ProactiveController",
    "QueryBatch",
    "RangeQuery",
    "RegistryCostModel",
    "SelfTuningKDE",
    "ShardedBackend",
    "SnapshotServer",
    "__version__",
    "create_estimator",
    "disable_metrics",
    "enable_metrics",
    "export_metrics",
    "get_registry",
    "metrics_enabled",
    "optimize_bandwidth",
    "optimize_join_order",
    "plan_quality_ratio",
    "replay_workload",
    "scott_bandwidth",
]
