"""Baseline estimators and the common estimator interface.

Contains every estimator of the evaluation besides the core self-tuning
model: the STHoles multidimensional histogram [7], the SCV-tuned KDE
(standing in for R's ``ks::Hscv.diag``), and the extension baselines
(attribute-value independence, naive sampling).
"""

from .avi import AVIEstimator, Histogram1D
from .base import (
    SelectivityEstimator,
    kde_sample_size,
    memory_budget_bytes,
)
from .kde_variants import AdaptiveKDE, BatchKDE, HeuristicKDE, PluginKDE, SCVKDE
from .plugin import plugin_bandwidth
from .sampling import SampleCountEstimator
from .scv import lscv_bandwidth, scv_bandwidth
from .stholes import STHolesHistogram, sthole_bucket_budget

__all__ = [
    "AVIEstimator",
    "AdaptiveKDE",
    "BatchKDE",
    "HeuristicKDE",
    "Histogram1D",
    "PluginKDE",
    "SCVKDE",
    "STHolesHistogram",
    "SampleCountEstimator",
    "SelectivityEstimator",
    "kde_sample_size",
    "lscv_bandwidth",
    "memory_budget_bytes",
    "plugin_bandwidth",
    "scv_bandwidth",
    "sthole_bucket_budget",
]
