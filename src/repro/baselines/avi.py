"""Attribute-value-independence baseline (Section 2.2).

The simplest multidimensional estimator a real system ships: keep one
one-dimensional histogram per attribute and multiply the per-attribute
interval selectivities, assuming the attributes are independent.  The
paper discusses this as the approach whose errors on correlated data
motivate the whole research area; we include it as an extension baseline
for the benchmark suite.

Both classic bucketisations are provided: equi-width (uniform bucket
boundaries) and equi-depth (quantile boundaries, the Postgres default).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..geometry import Box
from .base import FLOAT_BYTES, SelectivityEstimator

__all__ = ["Histogram1D", "AVIEstimator"]


class Histogram1D:
    """A one-dimensional bucket histogram over a column.

    Parameters
    ----------
    values:
        Column values the histogram summarises.
    buckets:
        Number of buckets.
    equi_depth:
        ``True`` for quantile boundaries (every bucket holds roughly the
        same tuple count), ``False`` for uniform-width boundaries.
    """

    def __init__(
        self, values: np.ndarray, buckets: int, equi_depth: bool = True
    ) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 1 or values.size == 0:
            raise ValueError("values must be a non-empty 1-D array")
        if buckets < 1:
            raise ValueError("buckets must be at least 1")
        if equi_depth:
            quantiles = np.linspace(0.0, 1.0, buckets + 1)
            edges = np.quantile(values, quantiles)
            # Quantile edges may repeat on heavily duplicated data; keep
            # them unique so searchsorted stays well-defined.
            edges = np.unique(edges)
            if edges.size < 2:
                edges = np.array([edges[0], edges[0] + 1.0])
        else:
            lo, hi = float(values.min()), float(values.max())
            if hi <= lo:
                hi = lo + 1.0
            edges = np.linspace(lo, hi, buckets + 1)
        self._edges = edges
        counts, _ = np.histogram(values, bins=edges)
        self._fractions = counts / values.size

    @property
    def bucket_count(self) -> int:
        return self._fractions.size

    @property
    def edges(self) -> np.ndarray:
        return self._edges.copy()

    def selectivity(self, low: float, high: float) -> float:
        """Fraction of values in ``[low, high]`` under in-bucket uniformity."""
        if high < low:
            return 0.0
        edges = self._edges
        total = 0.0
        for i in range(self._fractions.size):
            left, right = edges[i], edges[i + 1]
            overlap = min(high, right) - max(low, left)
            if overlap <= 0.0:
                if left == right and low <= left <= high:
                    total += self._fractions[i]
                continue
            width = right - left
            fraction = overlap / width if width > 0.0 else 1.0
            total += self._fractions[i] * min(fraction, 1.0)
        return float(min(max(total, 0.0), 1.0))

    def memory_bytes(self) -> int:
        return (self._edges.size + self._fractions.size) * FLOAT_BYTES


class AVIEstimator(SelectivityEstimator):
    """Product of per-attribute 1-D histogram selectivities.

    Parameters
    ----------
    data:
        ``(n, d)`` array the histograms are built over (a full table scan,
        as a system's ANALYZE would do per column).
    buckets_per_dimension:
        Bucket count of every per-attribute histogram.
    equi_depth:
        Bucketisation rule, see :class:`Histogram1D`.
    """

    name = "AVI"

    def __init__(
        self,
        data: np.ndarray,
        buckets_per_dimension: int = 64,
        equi_depth: bool = True,
    ) -> None:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError("data must be a non-empty (n, d) array")
        self._histograms: List[Histogram1D] = [
            Histogram1D(data[:, j], buckets_per_dimension, equi_depth)
            for j in range(data.shape[1])
        ]

    @property
    def dimensions(self) -> int:
        return len(self._histograms)

    def estimate(self, query: Box) -> float:
        if query.dimensions != self.dimensions:
            raise ValueError("query dimensionality mismatch")
        result = 1.0
        for j, histogram in enumerate(self._histograms):
            result *= histogram.selectivity(
                float(query.low[j]), float(query.high[j])
            )
            if result == 0.0:
                break
        return result

    def memory_bytes(self) -> int:
        return sum(h.memory_bytes() for h in self._histograms)
