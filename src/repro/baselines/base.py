"""Common interface for all compared selectivity estimators (Section 6.1.1).

The evaluation harness drives every estimator — the paper's KDE variants
and the baselines — through the same three-call protocol:

1. construction (with whatever training data the estimator needs),
2. :meth:`SelectivityEstimator.estimate` for a query region,
3. :meth:`SelectivityEstimator.feedback` with the true selectivity once
   the query has executed (self-tuning estimators learn from this; static
   ones ignore it).

Estimators also report their model footprint so experiments can enforce
the paper's fair-comparison memory budget of ``d * 4 kB`` (Section 6.2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from ..geometry import Box

__all__ = ["SelectivityEstimator", "memory_budget_bytes", "kde_sample_size"]

#: Bytes per stored attribute value; the paper's device buffers use
#: single-precision floats (Section 5.1).
FLOAT_BYTES = 4

#: The paper's per-estimator memory budget: d * 4 kB (Section 6.2).
BUDGET_PER_DIMENSION = 4 * 1024


def memory_budget_bytes(dimensions: int) -> int:
    """The Section 6.2 memory budget for a ``dimensions``-dimensional model."""
    if dimensions < 1:
        raise ValueError("dimensions must be at least 1")
    return dimensions * BUDGET_PER_DIMENSION


def kde_sample_size(dimensions: int, budget_bytes: int = 0) -> int:
    """Sample size a KDE model may hold within a memory budget.

    A KDE model is essentially its sample: ``s`` points of ``d``
    single-precision values, so ``s = budget / (d * 4)``.  With the
    default budget of ``d * 4 kB`` this is 1024 points regardless of
    dimensionality — the configuration of the static-quality experiments.
    """
    budget = budget_bytes or memory_budget_bytes(dimensions)
    return max(1, budget // (dimensions * FLOAT_BYTES))


class SelectivityEstimator(ABC):
    """Abstract base class of every estimator in the evaluation."""

    #: Display name used in experiment reports ("Heuristic", "STHoles", ...).
    name: str = "unnamed"

    @abstractmethod
    def estimate(self, query: Box) -> float:
        """Estimated selectivity of ``query`` in ``[0, 1]``."""

    def feedback(self, query: Box, true_selectivity: float) -> None:
        """True-selectivity feedback after query execution.

        Static estimators inherit this no-op; self-tuning estimators
        override it.
        """

    def estimate_many(self, queries: Sequence[Box]) -> np.ndarray:
        """Vector of estimates for a sequence of queries.

        The default is the straightforward per-query loop; estimators
        with a vectorised engine (the KDE variants) override it with a
        single batched evaluation.
        """
        return np.array([self.estimate(q) for q in queries], dtype=np.float64)

    def feedback_many(
        self, queries: Sequence[Box], true_selectivities: Sequence[float]
    ) -> None:
        """Feedback for a whole batch of executed queries, in order.

        The default forwards to :meth:`feedback` per query; self-tuning
        estimators with a batched gradient accumulator override it.

        Both arguments may be arbitrary (including one-shot) iterables;
        they are materialized before the length check, so a generator of
        truths produces the intended mismatch ``ValueError`` instead of
        a bare ``TypeError`` from ``len()``.
        """
        queries = list(queries)
        true_selectivities = list(true_selectivities)
        if len(queries) != len(true_selectivities):
            raise ValueError(
                "need exactly one true selectivity per query, got "
                f"{len(queries)} queries and {len(true_selectivities)} values"
            )
        for query, truth in zip(queries, true_selectivities):
            self.feedback(query, float(truth))

    def memory_bytes(self) -> int:
        """Approximate model footprint in bytes (for budget accounting)."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
