"""The KDE estimator variants of the evaluation (Section 6.1.1).

Four wrappers around :mod:`repro.core` implementing the compared
configurations, all conforming to the common
:class:`~repro.baselines.base.SelectivityEstimator` protocol:

* **Heuristic** — the naive KDE baseline: Scott's rule, no tuning.
* **SCV** — bandwidth from the smoothed-cross-validation selector.
* **Batch** — bandwidth optimised over an initial training workload by
  solving problem (5) (Section 3).
* **Adaptive** — Scott initialisation plus the full self-tuning stack:
  online RMSprop bandwidth learning, Karma maintenance and reservoir
  sampling (Section 4).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..geometry import Box
from ..core.bandwidth import scott_bandwidth
from ..core.config import SelfTuningConfig
from ..core.estimator import KernelDensityEstimator
from ..core.gradient import QueryFeedback
from ..core.model import RowSource, SelfTuningKDE
from ..core.optimize import BandwidthOptimizer
from .base import FLOAT_BYTES, SelectivityEstimator
from .plugin import plugin_bandwidth
from .scv import scv_bandwidth

__all__ = ["HeuristicKDE", "SCVKDE", "PluginKDE", "BatchKDE", "AdaptiveKDE"]


class _StaticKDE(SelectivityEstimator):
    """Shared plumbing of the non-adaptive KDE variants."""

    def __init__(self, sample: np.ndarray, bandwidth: np.ndarray) -> None:
        self._model = KernelDensityEstimator(sample, bandwidth)

    @property
    def bandwidth(self) -> np.ndarray:
        return self._model.bandwidth

    @property
    def sample_size(self) -> int:
        return self._model.sample_size

    def estimate(self, query: Box) -> float:
        return self._model.selectivity(query)

    def estimate_many(self, queries: Sequence[Box]) -> np.ndarray:
        """Batched override: one vectorised pass instead of ``q`` loops."""
        return self._model.selectivity_many(queries)

    def memory_bytes(self) -> int:
        return self._model.sample_size * self._model.dimensions * FLOAT_BYTES


class HeuristicKDE(_StaticKDE):
    """KDE with Scott's rule-of-thumb bandwidth (Eq. 3) — the baseline
    representing prior KDE-based selectivity estimators."""

    name = "Heuristic"

    def __init__(self, sample: np.ndarray) -> None:
        sample = np.asarray(sample, dtype=np.float64)
        super().__init__(sample, scott_bandwidth(sample))


class SCVKDE(_StaticKDE):
    """KDE with a smoothed-cross-validation bandwidth (the ``Hscv.diag``
    stand-in) — the state-of-the-art statistical selector baseline."""

    name = "SCV"

    def __init__(
        self,
        sample: np.ndarray,
        max_points: int = 512,
        seed: Optional[int] = 0,
    ) -> None:
        sample = np.asarray(sample, dtype=np.float64)
        super().__init__(
            sample, scv_bandwidth(sample, max_points=max_points, seed=seed)
        )


class PluginKDE(_StaticKDE):
    """KDE with a two-stage direct plug-in bandwidth (Wand & Jones [45])
    — the other sophisticated selector class named in Section 3.2."""

    name = "Plugin"

    def __init__(
        self,
        sample: np.ndarray,
        max_points: int = 1024,
        seed: Optional[int] = 0,
    ) -> None:
        sample = np.asarray(sample, dtype=np.float64)
        super().__init__(
            sample, plugin_bandwidth(sample, max_points=max_points, seed=seed)
        )


class BatchKDE(_StaticKDE):
    """KDE with the bandwidth optimised over a training workload
    (Section 3.4): global multistart plus L-BFGS-B on problem (5)."""

    name = "Batch"

    def __init__(
        self,
        sample: np.ndarray,
        training_workload: Sequence[QueryFeedback],
        loss: str = "squared",
        starts: int = 8,
        seed: Optional[int] = 0,
    ) -> None:
        sample = np.asarray(sample, dtype=np.float64)
        optimizer = BandwidthOptimizer(loss=loss, starts=starts, seed=seed)
        result = optimizer.optimize(sample, training_workload)
        super().__init__(sample, result.bandwidth)
        #: Full optimisation diagnostics (loss trajectory, evaluations).
        self.optimization = result


class AdaptiveKDE(SelectivityEstimator):
    """The fully self-tuning estimator (Section 4): online bandwidth
    learning plus Karma/reservoir sample maintenance."""

    name = "Adaptive"

    def __init__(
        self,
        sample: np.ndarray,
        config: Optional[SelfTuningConfig] = None,
        row_source: Optional[RowSource] = None,
        population_size: Optional[int] = None,
        seed: Optional[int] = 0,
    ) -> None:
        self._model = SelfTuningKDE(
            np.asarray(sample, dtype=np.float64),
            config=config,
            row_source=row_source,
            population_size=population_size,
            seed=seed,
        )

    @property
    def model(self) -> SelfTuningKDE:
        return self._model

    @property
    def bandwidth(self) -> np.ndarray:
        return self._model.bandwidth

    def estimate(self, query: Box) -> float:
        return self._model.estimate(query)

    def estimate_many(self, queries: Sequence[Box]) -> np.ndarray:
        """Batched estimates (no per-query buffers are retained)."""
        queries = list(queries)
        if not queries:
            return np.empty(0, dtype=np.float64)
        return self._model.estimate_batch(queries)

    def feedback(self, query: Box, true_selectivity: float) -> None:
        self._model.feedback(query, true_selectivity)

    def feedback_many(
        self, queries: Sequence[Box], true_selectivities: Sequence[float]
    ) -> None:
        """Batched override consuming the whole feedback batch at once."""
        queries = list(queries)
        true_selectivities = list(true_selectivities)
        if len(queries) != len(true_selectivities):
            raise ValueError(
                "need exactly one true selectivity per query, got "
                f"{len(queries)} queries and {len(true_selectivities)} values"
            )
        if not queries:
            return
        self._model.feedback_batch(queries, true_selectivities)

    def on_insert(self, row: np.ndarray) -> bool:
        """Forward an insert notification to the reservoir sampler."""
        return self._model.on_insert(row)

    def on_delete(self) -> None:
        """Forward a delete notification (population bookkeeping only)."""
        self._model.on_delete()

    def memory_bytes(self) -> int:
        return (
            self._model.sample_size * self._model.dimensions * FLOAT_BYTES
        )
