"""Direct plug-in bandwidth selection (Wand & Jones [45]).

Section 3.2 names two classes of sophisticated bandwidth selectors:
cross-validation (see :mod:`repro.baselines.scv`) and *plug-in* methods,
which iteratively refine a pilot estimate of the unknown density
functionals appearing in the AMISE-optimal bandwidth formula.  This
module implements the classic two-stage direct plug-in (DPI) for
diagonal bandwidths, applying the one-dimensional Wand & Jones
procedure per attribute:

1. estimate the 6th-order density functional ``psi_6`` from a normal
   reference,
2. derive a pilot bandwidth ``g_4`` and estimate ``psi_4`` with the
   kernel functional estimator,
3. plug ``psi_4`` into the AMISE formula
   ``h = [R(K) / (mu_2(K)^2 psi_4 n)]^{1/5}``.

Per-dimension selection ignores cross-attribute dependence — the same
simplification as the diagonal bandwidth matrix itself — and matches the
behaviour of ``ks::Hpi.diag``'s marginal steps.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..core.bandwidth import MIN_BANDWIDTH

__all__ = ["plugin_bandwidth", "plugin_bandwidth_1d"]

_SQRT_2PI = math.sqrt(2.0 * math.pi)
#: Pairwise-difference work bound; larger samples are subsampled.
_DEFAULT_MAX_POINTS = 1024


def _phi4(z: np.ndarray) -> np.ndarray:
    """4th derivative of the standard normal density."""
    z2 = z * z
    return (z2 * z2 - 6.0 * z2 + 3.0) * np.exp(-0.5 * z2) / _SQRT_2PI


def _psi_functional(values: np.ndarray, g: float, order4: bool = True) -> float:
    """Kernel estimator of the density functional ``psi_4`` at pilot ``g``.

    ``psi_r = integral f^{(r)}(x) f(x) dx`` estimated by
    ``n^-2 g^-(r+1) sum_ij phi^{(r)}((x_i - x_j) / g)``.
    """
    n = values.shape[0]
    diff = values[:, None] - values[None, :]
    return float(_phi4(diff / g).sum()) / (n * n * g ** 5)


def plugin_bandwidth_1d(values: np.ndarray) -> float:
    """Two-stage direct plug-in bandwidth for one attribute."""
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    n = values.shape[0]
    if n < 2:
        raise ValueError("plug-in selection needs at least two values")
    std = float(values.std())
    iqr = float(np.subtract(*np.percentile(values, [75, 25])))
    # Robust scale estimate, as in the classic implementations.
    scale = min(std, iqr / 1.349) if iqr > 0 else std
    if scale <= 0:
        return MIN_BANDWIDTH

    # Stage 1: psi_6 from the normal reference:
    # psi_6^NS = -15 / (16 sqrt(pi) sigma^7).
    psi6 = -15.0 / (16.0 * math.sqrt(math.pi) * scale ** 7)
    # Pilot for psi_4: g_4 = [-2 phi^{(4)}(0) / (psi_6 n)]^{1/7},
    # phi^{(4)}(0) = 3 / sqrt(2 pi).
    g4 = (-2.0 * (3.0 / _SQRT_2PI) / (psi6 * n)) ** (1.0 / 7.0)

    # Stage 2: kernel estimate of psi_4, then the AMISE formula with
    # R(phi) = 1 / (2 sqrt(pi)) and mu_2(phi) = 1.
    psi4 = _psi_functional(values, g4)
    if psi4 <= 0:
        # Degenerate estimate (can happen on tiny or pathological data);
        # fall back to the normal-reference psi_4.
        psi4 = 3.0 / (8.0 * math.sqrt(math.pi) * scale ** 5)
    h = (1.0 / (2.0 * math.sqrt(math.pi) * psi4 * n)) ** 0.2
    return max(h, MIN_BANDWIDTH)


def plugin_bandwidth(
    sample: np.ndarray,
    max_points: int = _DEFAULT_MAX_POINTS,
    seed: Optional[int] = 0,
) -> np.ndarray:
    """Per-dimension two-stage direct plug-in bandwidths.

    Parameters
    ----------
    sample:
        ``(n, d)`` data sample.
    max_points:
        Cap on the points used by the ``O(n^2)`` functional estimator.
    seed:
        Subsampling seed.
    """
    sample = np.asarray(sample, dtype=np.float64)
    if sample.ndim != 2 or sample.shape[0] < 2:
        raise ValueError("sample must be an (n >= 2, d) array")
    if sample.shape[0] > max_points:
        rng = np.random.default_rng(seed)
        indices = rng.choice(sample.shape[0], size=max_points, replace=False)
        sample = sample[indices]
    return np.array(
        [plugin_bandwidth_1d(sample[:, j]) for j in range(sample.shape[1])]
    )
