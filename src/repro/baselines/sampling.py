"""Naive sampling estimator (Section 2.3, [25, 28]).

The estimator KDE generalises: evaluate the query predicate directly on a
random sample and report the matching fraction.  Equivalent to a KDE
whose bandwidth tends to zero — every sample point is a Dirac spike — so
it anchors the bandwidth-matters story of the paper (KDE "has been shown
to consistently offer superior estimation quality" over it).
"""

from __future__ import annotations

import numpy as np

from ..geometry import Box
from .base import FLOAT_BYTES, SelectivityEstimator

__all__ = ["SampleCountEstimator"]


class SampleCountEstimator(SelectivityEstimator):
    """Selectivity = fraction of sample points inside the query box."""

    name = "Sampling"

    def __init__(self, sample: np.ndarray) -> None:
        sample = np.asarray(sample, dtype=np.float64)
        if sample.ndim != 2 or sample.shape[0] == 0:
            raise ValueError("sample must be a non-empty (s, d) array")
        self._sample = sample.copy()

    @property
    def sample_size(self) -> int:
        return self._sample.shape[0]

    @property
    def dimensions(self) -> int:
        return self._sample.shape[1]

    def estimate(self, query: Box) -> float:
        if query.dimensions != self.dimensions:
            raise ValueError("query dimensionality mismatch")
        return float(query.contains_points(self._sample).mean())

    def memory_bytes(self) -> int:
        return self._sample.size * FLOAT_BYTES
