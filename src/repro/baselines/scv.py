"""Cross-validation bandwidth selection for diagonal Gaussian KDE.

The paper's *KDE SCV* baseline picks its bandwidth with the smoothed
cross-validation (SCV) selector of Duong & Hazelton [11] (``Hscv.diag``
from the R package ``ks``).  R is not available offline, so this module
implements the same criterion family from scratch, specialised to
diagonal bandwidths and Gaussian product kernels, where every term has a
closed form built from pairwise coordinate differences.

Two criteria are provided:

* **SCV** — smoothed cross-validation with a normal-reference pilot
  bandwidth ``g``:

  .. math::
      SCV(h) = \\frac{(4\\pi)^{-d/2}}{n \\prod_k h_k}
             + \\frac{1}{n^2} \\sum_{i,j}
               \\left[ \\phi_{\\sqrt{2h^2+2g^2}}
                     - 2\\phi_{\\sqrt{h^2+2g^2}}
                     + \\phi_{\\sqrt{2g^2}} \\right] (x_i - x_j)

  with :math:`\\phi_s` the product of one-dimensional normal densities
  with per-dimension scale :math:`s_k`.

* **LSCV** (least-squares / unbiased CV) — the classic Bowman [5]
  criterion, an unbiased estimate of the integrated squared error up to a
  constant:

  .. math::
      LSCV(h) = \\frac{1}{n^2} \\sum_{i,j} \\phi_{\\sqrt{2} h}(x_i - x_j)
              - \\frac{2}{n(n-1)} \\sum_{i \\ne j} \\phi_h(x_i - x_j)

Both are minimised numerically over ``log h`` with L-BFGS-B.  The
criteria cost :math:`O(d n^2)` per evaluation, so the selector caps the
points it uses (``max_points``), matching the practical behaviour of CV
selectors on large samples.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np
from scipy import optimize as _sciopt

from ..core.bandwidth import MIN_BANDWIDTH, scott_bandwidth

__all__ = ["scv_bandwidth", "lscv_bandwidth"]


def _pairwise_squared_differences(points: np.ndarray) -> np.ndarray:
    """``(d, n, n)`` array of squared per-dimension pairwise differences."""
    n, d = points.shape
    out = np.empty((d, n, n), dtype=np.float64)
    for k in range(d):
        diff = points[:, k, None] - points[None, :, k]
        out[k] = diff * diff
    return out


def _gaussian_pair_sum(sq_diffs: np.ndarray, scales: np.ndarray) -> float:
    """``sum_{i,j} prod_k N(x_ik - x_jk; 0, scales_k^2)`` for all pairs."""
    d, n, _ = sq_diffs.shape
    log_norm = -0.5 * d * math.log(2.0 * math.pi) - float(
        np.log(scales).sum()
    )
    exponent = np.zeros((n, n), dtype=np.float64)
    for k in range(d):
        exponent -= sq_diffs[k] / (2.0 * scales[k] * scales[k])
    return float(np.exp(exponent + log_norm).sum())


def _subsample(
    sample: np.ndarray, max_points: int, seed: Optional[int]
) -> np.ndarray:
    sample = np.asarray(sample, dtype=np.float64)
    if sample.ndim != 2 or sample.shape[0] < 2:
        raise ValueError("sample must be an (n >= 2, d) array")
    if sample.shape[0] <= max_points:
        return sample
    rng = np.random.default_rng(seed)
    indices = rng.choice(sample.shape[0], size=max_points, replace=False)
    return sample[indices]


def _minimize_criterion(
    criterion, initial: np.ndarray, maxiter: int
) -> np.ndarray:
    log_initial = np.log(np.maximum(initial, MIN_BANDWIDTH))
    bounds = [(lo - 8.0, lo + 8.0) for lo in log_initial]
    result = _sciopt.minimize(
        lambda log_h: criterion(np.exp(log_h)),
        log_initial,
        method="L-BFGS-B",
        bounds=bounds,
        options={"maxiter": maxiter},
    )
    best = np.exp(result.x)
    if criterion(best) > criterion(initial):
        return initial
    return np.maximum(best, MIN_BANDWIDTH)


def scv_bandwidth(
    sample: np.ndarray,
    pilot: Optional[np.ndarray] = None,
    max_points: int = 512,
    maxiter: int = 60,
    seed: Optional[int] = 0,
) -> np.ndarray:
    """Diagonal SCV-optimal bandwidth for a Gaussian product-kernel KDE.

    Parameters
    ----------
    sample:
        ``(n, d)`` data sample.
    pilot:
        Pilot bandwidth ``g``; defaults to Scott's normal reference on the
        (sub)sample, the standard pilot choice.
    max_points:
        Cap on the points used to evaluate the ``O(n^2)`` criterion.
    maxiter / seed:
        Optimiser budget and subsampling seed.
    """
    points = _subsample(sample, max_points, seed)
    n, d = points.shape
    sq_diffs = _pairwise_squared_differences(points)
    g = (
        np.asarray(pilot, dtype=np.float64)
        if pilot is not None
        else scott_bandwidth(points)
    )
    if g.shape != (d,) or np.any(g <= 0):
        raise ValueError("pilot bandwidth must be a positive (d,) vector")
    constant_term = float(
        _gaussian_pair_sum(sq_diffs, np.sqrt(2.0) * g)
    )  # phi_{sqrt(2 g^2)} double sum, independent of h

    def criterion(h: np.ndarray) -> float:
        roughness = (4.0 * math.pi) ** (-d / 2.0) / (n * float(np.prod(h)))
        s_a = np.sqrt(2.0 * h * h + 2.0 * g * g)
        s_b = np.sqrt(h * h + 2.0 * g * g)
        pair_part = (
            _gaussian_pair_sum(sq_diffs, s_a)
            - 2.0 * _gaussian_pair_sum(sq_diffs, s_b)
            + constant_term
        )
        return roughness + pair_part / (n * n)

    return _minimize_criterion(criterion, scott_bandwidth(points), maxiter)


def lscv_bandwidth(
    sample: np.ndarray,
    max_points: int = 512,
    maxiter: int = 60,
    seed: Optional[int] = 0,
) -> np.ndarray:
    """Diagonal least-squares cross-validation bandwidth (Bowman [5])."""
    points = _subsample(sample, max_points, seed)
    n, d = points.shape
    sq_diffs = _pairwise_squared_differences(points)
    # The diagonal (i == j) of the phi_h sum contributes the fixed value
    # n * prod_k N(0; 0, h_k^2); subtract it to get the i != j sum.

    def criterion(h: np.ndarray) -> float:
        integral_sq = _gaussian_pair_sum(sq_diffs, np.sqrt(2.0) * h) / (n * n)
        diag = n * (2.0 * math.pi) ** (-d / 2.0) / float(np.prod(h))
        off_diag = _gaussian_pair_sum(sq_diffs, h) - diag
        return integral_sq - 2.0 * off_diag / (n * (n - 1))

    return _minimize_criterion(criterion, scott_bandwidth(points), maxiter)
