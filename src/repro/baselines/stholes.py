"""STHoles: a workload-aware multidimensional histogram (Bruno et al. [7]).

STHoles is the state-of-the-art self-tuning histogram the paper compares
against (Section 6.1.1).  It maintains a *tree* of hyper-rectangular
buckets: each bucket owns the region of its box minus the boxes of its
children (the "holes" drilled into it) and carries the tuple frequency of
that exclusive region.

The histogram never inspects the full dataset.  It refines itself purely
from query feedback:

* **Estimation** assumes uniformity inside each bucket's exclusive region
  and sums, over all buckets, the bucket frequency scaled by the fraction
  of the exclusive region covered by the query.
* **Refinement** — after a query executes, for every bucket ``b``
  intersecting the query ``q`` the candidate hole ``c = q ∩ box(b)`` is
  *shrunk* until it no longer partially intersects any child, the true
  tuple count of ``c`` is observed from the query result, and ``c`` is
  drilled as a new child of ``b`` (children fully inside ``c`` migrate
  into it).
* **Merging** — when the bucket budget is exceeded, the parent-child or
  sibling pair whose merge changes the histogram's estimates the least
  (smallest *penalty*) is merged until the budget holds again.

Observing true counts inside ``c ⊆ q`` is possible in the original system
because the full query result streams past the histogram.  Our substrate
exposes the same information through a ``region_count`` callback (the
in-memory table's count); when no callback is available the count is
approximated by distributing the observed query count over ``q`` by
volume, which degrades refinement quality but keeps the estimator usable
from pure (query, selectivity) feedback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..geometry import Box, union_bounds
from .base import FLOAT_BYTES, SelectivityEstimator

__all__ = ["STHolesHistogram", "sthole_bucket_budget"]

#: Relative volume below which a candidate hole is considered degenerate
#: and not drilled (guards the uniformity arithmetic against zero-volume
#: regions).
_MIN_RELATIVE_VOLUME = 1e-12


def sthole_bucket_budget(dimensions: int, budget_bytes: int) -> int:
    """Number of buckets an STHoles model may hold in ``budget_bytes``.

    Each bucket stores its box (``2 d`` floats), a frequency (8 bytes) and
    a child pointer (8 bytes) — the same accounting the paper uses to give
    every estimator an identical memory budget.
    """
    bucket_bytes = 2 * dimensions * FLOAT_BYTES + 8 + 8
    return max(2, budget_bytes // bucket_bytes)


@dataclass
class _Bucket:
    """One histogram bucket: a box, its exclusive-region frequency, holes."""

    box: Box
    frequency: float
    children: List["_Bucket"] = field(default_factory=list)

    def v_box(self) -> float:
        return self.box.volume()

    def exclusive_volume(self) -> float:
        """Volume of the box minus the (disjoint) child boxes."""
        volume = self.v_box() - sum(c.v_box() for c in self.children)
        return max(volume, 0.0)

    def subtree_frequency(self) -> float:
        """Total tuples the histogram believes live inside this box."""
        return self.frequency + sum(c.subtree_frequency() for c in self.children)

    def subtree_size(self) -> int:
        return 1 + sum(c.subtree_size() for c in self.children)

    def walk(self):
        """Yield ``(bucket, parent)`` pairs over the whole subtree."""
        stack: List[Tuple["_Bucket", Optional["_Bucket"]]] = [(self, None)]
        while stack:
            bucket, parent = stack.pop()
            yield bucket, parent
            for child in bucket.children:
                stack.append((child, bucket))


class STHolesHistogram(SelectivityEstimator):
    """Self-tuning multidimensional histogram with holes.

    Parameters
    ----------
    bounds:
        Box covering the full attribute space (the root bucket).
    row_count:
        Current relation cardinality, used to convert between counts and
        selectivities.  Update it via :attr:`row_count` when the table
        changes.
    max_buckets:
        Bucket budget; merges keep the structure at or below it.
    region_count:
        Optional callback returning the true tuple count of a box that is
        contained in the most recent query (the result-stream information
        of the original paper).
    initial_frequency:
        Tuples initially attributed to the root bucket.  Defaults to
        ``row_count`` (assume-uniform initial model).
    """

    name = "STHoles"

    def __init__(
        self,
        bounds: Box,
        row_count: int,
        max_buckets: int = 256,
        region_count: Optional[Callable[[Box], float]] = None,
        initial_frequency: Optional[float] = None,
    ) -> None:
        if max_buckets < 1:
            raise ValueError("max_buckets must be at least 1")
        if row_count < 0:
            raise ValueError("row_count must be non-negative")
        if bounds.is_degenerate():
            # Pad degenerate dimensions so volumes are well-defined.
            widths = np.where(bounds.widths > 0, bounds.widths, 1.0)
            bounds = Box.from_center(bounds.center, widths)
        self._root = _Bucket(
            box=bounds,
            frequency=float(
                row_count if initial_frequency is None else initial_frequency
            ),
        )
        self.row_count = int(row_count)
        self.max_buckets = max_buckets
        self._region_count = region_count
        self._queries_observed = 0
        self._holes_drilled = 0
        self._merges = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def bucket_count(self) -> int:
        return self._root.subtree_size()

    @property
    def holes_drilled(self) -> int:
        return self._holes_drilled

    @property
    def merges_performed(self) -> int:
        return self._merges

    @property
    def root_box(self) -> Box:
        return self._root.box

    def total_frequency(self) -> float:
        """Tuples the histogram currently accounts for."""
        return self._root.subtree_frequency()

    def memory_bytes(self) -> int:
        d = self._root.box.dimensions
        return self.bucket_count * (2 * d * FLOAT_BYTES + 8 + 8)

    def buckets(self) -> List[Tuple[Box, float]]:
        """Snapshot of all ``(box, exclusive frequency)`` pairs."""
        return [(b.box, b.frequency) for b, _ in self._root.walk()]

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def estimate_count(self, query: Box) -> float:
        """Estimated number of tuples in ``query``."""
        return self._estimate_bucket(self._root, query)

    def estimate(self, query: Box) -> float:
        if self.row_count <= 0:
            return 0.0
        selectivity = self.estimate_count(query) / self.row_count
        return float(min(max(selectivity, 0.0), 1.0))

    def _estimate_bucket(self, bucket: _Bucket, query: Box) -> float:
        region = query.intersect(bucket.box)
        if region is None:
            return 0.0
        total = 0.0
        covered = region.volume()
        for child in bucket.children:
            total += self._estimate_bucket(child, query)
            overlap = region.intersect(child.box)
            if overlap is not None:
                covered -= overlap.volume()
        covered = max(covered, 0.0)
        exclusive = bucket.exclusive_volume()
        if exclusive > 0.0:
            fraction = min(covered / exclusive, 1.0)
            total += bucket.frequency * fraction
        elif covered > 0.0 or region == bucket.box:
            # Degenerate exclusive region fully consumed by the query.
            total += bucket.frequency
        return total

    # ------------------------------------------------------------------
    # Refinement (feedback)
    # ------------------------------------------------------------------
    def feedback(self, query: Box, true_selectivity: float) -> None:
        """Refine the histogram with the observed query result."""
        if not 0.0 <= true_selectivity <= 1.0:
            raise ValueError("true selectivity must lie in [0, 1]")
        self._queries_observed += 1
        query_count = true_selectivity * self.row_count

        # Identify candidate holes for every bucket the query intersects.
        # Collect first, then drill: drilling mutates the tree.
        candidates: List[Tuple[_Bucket, Box]] = []
        for bucket, _ in self._root.walk():
            region = query.intersect(bucket.box)
            if region is None or region.volume() <= 0.0:
                continue
            candidates.append((bucket, region))

        for bucket, region in candidates:
            shrunk = self._shrink(bucket, region)
            if shrunk is None:
                continue
            count = self._count_region(shrunk, query, query_count)
            self._drill(bucket, shrunk, count)

        self._enforce_budget()

    def _count_region(
        self, region: Box, query: Box, query_count: float
    ) -> float:
        """True tuple count of ``region`` (⊆ query), or a volume-scaled
        approximation when no result stream is available."""
        if self._region_count is not None:
            return float(self._region_count(region))
        query_volume = query.volume()
        if query_volume <= 0.0:
            return query_count
        return query_count * min(region.volume() / query_volume, 1.0)

    def _shrink(self, bucket: _Bucket, candidate: Box) -> Optional[Box]:
        """Shrink a candidate hole until no child partially intersects it.

        Repeatedly picks the (dimension, direction) cut excluding at least
        one partially intersecting child while keeping the largest
        remaining volume (the greedy rule of Bruno et al., Section 4.2.1).
        """
        low = candidate.low.copy()
        high = candidate.high.copy()
        d = candidate.dimensions
        while True:
            box = Box(low, high)
            if box.volume() <= bucket.v_box() * _MIN_RELATIVE_VOLUME:
                return None
            participants = [
                child
                for child in bucket.children
                if box.intersects(child.box) and not box.contains_box(child.box)
            ]
            if not participants:
                return box
            best_volume = -1.0
            best_cut: Optional[Tuple[int, str, float]] = None
            for child in participants:
                for j in range(d):
                    # Raise the lower bound past the child's upper face.
                    if child.box.high[j] > low[j] and child.box.low[j] < high[j]:
                        if child.box.high[j] < high[j]:
                            new_low = child.box.high[j]
                            volume = self._cut_volume(low, high, j, new_low, high[j])
                            if volume > best_volume:
                                best_volume = volume
                                best_cut = (j, "low", new_low)
                        # Lower the upper bound past the child's lower face.
                        if child.box.low[j] > low[j]:
                            new_high = child.box.low[j]
                            volume = self._cut_volume(low, high, j, low[j], new_high)
                            if volume > best_volume:
                                best_volume = volume
                                best_cut = (j, "high", new_high)
            if best_cut is None:
                # No admissible cut (a participant spans the candidate in
                # every dimension); give up on this hole.
                return None
            j, side, value = best_cut
            if side == "low":
                low[j] = value
            else:
                high[j] = value

    @staticmethod
    def _cut_volume(
        low: np.ndarray, high: np.ndarray, dim: int, new_low: float, new_high: float
    ) -> float:
        widths = high - low
        widths = np.where(widths > 0, widths, 0.0)
        others = np.prod(np.delete(widths, dim))
        return float(others * max(new_high - new_low, 0.0))

    def _drill(self, bucket: _Bucket, hole: Box, count: float) -> None:
        """Drill ``hole`` into ``bucket`` with observed tuple ``count``."""
        migrated = [c for c in bucket.children if hole.contains_box(c.box)]
        migrated_belief = sum(c.subtree_frequency() for c in migrated)
        exclusive_count = max(count - migrated_belief, 0.0)

        if hole == bucket.box:
            # The hole covers the whole bucket: just refresh its frequency.
            bucket.frequency = exclusive_count
            return
        for child in bucket.children:
            if child.box == hole:
                # Identical hole already exists: refresh it instead.
                child.frequency = max(
                    count - sum(g.subtree_frequency() for g in child.children),
                    0.0,
                )
                return
        if hole.volume() <= bucket.v_box() * _MIN_RELATIVE_VOLUME:
            return

        new_bucket = _Bucket(box=hole, frequency=exclusive_count,
                             children=migrated)
        bucket.children = [c for c in bucket.children if c not in migrated]
        bucket.children.append(new_bucket)
        bucket.frequency = max(bucket.frequency - exclusive_count, 0.0)
        self._holes_drilled += 1

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def _enforce_budget(self) -> None:
        while self.bucket_count > self.max_buckets:
            merge = self._best_merge()
            if merge is None:
                return
            merge()
            self._merges += 1

    def _best_merge(self) -> Optional[Callable[[], None]]:
        """Find the minimum-penalty merge; returns a closure applying it.

        Parent-child merges are considered for every bucket.  Sibling
        merges are restricted to *neighbouring* pairs — for each parent,
        children adjacent when sorted by box centre along each dimension.
        Exhaustively scoring all ``O(k^2)`` sibling pairs (as [7]
        describes) is quadratic per node and cubic with the participant
        expansion; neighbouring pairs are where low-penalty merges live,
        and the restriction keeps refinement interactive at the paper's
        bucket budgets.
        """
        best_penalty = np.inf
        best_action: Optional[Callable[[], None]] = None
        exclusive: dict = {}
        for bucket, parent in self._root.walk():
            exclusive[id(bucket)] = bucket.exclusive_volume()
        for bucket, parent in self._root.walk():
            if parent is not None:
                penalty = self._parent_child_penalty(
                    parent, bucket, exclusive
                )
                if penalty < best_penalty:
                    best_penalty = penalty
                    best_action = self._make_parent_child_merge(parent, bucket)
            for b1, b2 in self._sibling_candidates(bucket):
                result = self._plan_sibling_merge(bucket, b1, b2, exclusive)
                if result is None:
                    continue
                penalty, action = result
                if penalty < best_penalty:
                    best_penalty = penalty
                    best_action = action
        return best_action

    @staticmethod
    def _sibling_candidates(bucket: _Bucket):
        """Neighbouring sibling pairs by box centre, per dimension."""
        children = bucket.children
        if len(children) < 2:
            return
        if len(children) == 2:
            yield children[0], children[1]
            return
        d = bucket.box.dimensions
        seen = set()
        for j in range(d):
            ordered = sorted(
                children, key=lambda c: (c.box.low[j] + c.box.high[j])
            )
            for left, right in zip(ordered, ordered[1:]):
                key = (id(left), id(right)) if id(left) < id(right) else (
                    id(right),
                    id(left),
                )
                if key in seen:
                    continue
                seen.add(key)
                yield left, right

    # -- parent-child ----------------------------------------------------
    @staticmethod
    def _parent_child_penalty(
        parent: _Bucket, child: _Bucket, exclusive: Optional[dict] = None
    ) -> float:
        if exclusive is not None:
            v_p = exclusive[id(parent)]
            v_c = exclusive[id(child)]
        else:
            v_p = parent.exclusive_volume()
            v_c = child.exclusive_volume()
        v_n = v_p + v_c
        f_n = parent.frequency + child.frequency
        if v_n <= 0.0:
            return abs(parent.frequency) + abs(child.frequency)
        return abs(parent.frequency - f_n * v_p / v_n) + abs(
            child.frequency - f_n * v_c / v_n
        )

    def _make_parent_child_merge(
        self, parent: _Bucket, child: _Bucket
    ) -> Callable[[], None]:
        def apply() -> None:
            parent.frequency += child.frequency
            parent.children = [
                c for c in parent.children if c is not child
            ] + child.children

        return apply

    # -- siblings ----------------------------------------------------------
    def _plan_sibling_merge(
        self,
        parent: _Bucket,
        b1: _Bucket,
        b2: _Bucket,
        exclusive: Optional[dict] = None,
    ) -> Optional[Tuple[float, Callable[[], None]]]:
        box = union_bounds([b1.box, b2.box])
        # Grow until no other child partially intersects the merged box.
        grown = True
        while grown:
            grown = False
            for other in parent.children:
                if other is b1 or other is b2:
                    continue
                if box.intersects(other.box) and not box.contains_box(other.box):
                    box = union_bounds([box, other.box])
                    grown = True
        enclosed = [
            o
            for o in parent.children
            if o is not b1 and o is not b2 and box.contains_box(o.box)
        ]
        all_swallowed = [b1, b2] + enclosed
        v_absorbed = box.volume() - sum(o.v_box() for o in all_swallowed)
        v_absorbed = max(v_absorbed, 0.0)
        if exclusive is not None:
            v_parent = exclusive[id(parent)]
            v_b1 = exclusive[id(b1)]
            v_b2 = exclusive[id(b2)]
        else:
            v_parent = parent.exclusive_volume()
            v_b1 = b1.exclusive_volume()
            v_b2 = b2.exclusive_volume()
        f_absorbed = (
            parent.frequency * (v_absorbed / v_parent) if v_parent > 0.0 else 0.0
        )
        f_n = b1.frequency + b2.frequency + f_absorbed
        v_n = v_absorbed + v_b1 + v_b2

        if v_n <= 0.0:
            penalty = abs(b1.frequency) + abs(b2.frequency) + abs(f_absorbed)
        else:
            penalty = (
                abs(b1.frequency - f_n * v_b1 / v_n)
                + abs(b2.frequency - f_n * v_b2 / v_n)
                + abs(f_absorbed - f_n * v_absorbed / v_n)
            )

        def apply() -> None:
            new_bucket = _Bucket(
                box=box,
                frequency=f_n,
                children=b1.children + b2.children + enclosed,
            )
            parent.children = [
                c for c in parent.children if c not in all_swallowed
            ]
            parent.children.append(new_bucket)
            parent.frequency = max(parent.frequency - f_absorbed, 0.0)

        return penalty, apply

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"STHolesHistogram(buckets={self.bucket_count}/"
            f"{self.max_buckets}, rows={self.row_count})"
        )
