"""Experiment harness regenerating the paper's evaluation (Section 6).

Run ``python -m repro.bench <experiment>`` to regenerate a table or
figure (see :mod:`repro.bench.cli`), or drive the runners in
:mod:`repro.bench.experiments` programmatically.
"""

from .metrics import ErrorSummary, WinMatrix, summarize, win_matrix
from .protocol import ALL_ESTIMATORS, TrialConfig, TrialResult, run_static_trial

__all__ = [
    "ALL_ESTIMATORS",
    "ErrorSummary",
    "TrialConfig",
    "TrialResult",
    "WinMatrix",
    "run_static_trial",
    "summarize",
    "win_matrix",
]
