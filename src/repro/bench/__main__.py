"""``python -m repro.bench`` — regenerate the paper's tables and figures."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
