"""Command-line entry point regenerating the paper's tables and figures.

Usage::

    python -m repro.bench fig4   [--scale smoke|small|paper]
    python -m repro.bench fig5   [--scale ...]
    python -m repro.bench table1 [--scale ...]
    python -m repro.bench fig6   [--scale ...]
    python -m repro.bench fig7
    python -m repro.bench fig8   [--scale ...]
    python -m repro.bench ablations [--scale ...]
    python -m repro.bench batch
    python -m repro.bench backends [--scale ...] [--shards N [N ...]]
                                   [--sublinear-sizes N [N ...]]
    python -m repro.bench chaos  [--scale ...]
    python -m repro.bench metrics
    python -m repro.bench serving [--scale ...] [--checkpoint PATH]
                                  [--clients N [N ...]]
    python -m repro.bench forecast [--scale ...]
    python -m repro.bench plans  [--scale ...]
    python -m repro.bench replay [--scale ...] [--replay-table CSV]
                                 [--replay-log PATH]
    python -m repro.bench all    [--scale ...]

Any invocation accepts ``--metrics-json PATH``: the process-wide
metrics registry is enabled for the run and its full snapshot
(counters, histograms, spans, estimation traces) is dumped as JSON.

Any invocation accepts ``--checkpoint PATH``: experiments that build a
primary self-tuning model (currently ``serving``) warm-start it from the
checkpoint when the file exists and save the final tuned state back to
it, so repeated runs resume where the last one stopped.

Scales trade fidelity for runtime: ``smoke`` finishes in well under a
minute per experiment (CI-sized), ``small`` (the default) reproduces the
paper's qualitative shapes in minutes, ``paper`` runs the full protocol
(25 repetitions, all datasets, all workloads) and can take hours.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict

from ..obs import disable_metrics, enable_metrics, export_metrics, get_registry
from .experiments import (
    run_adaptive_parameter_ablation,
    run_backend_scaling,
    run_batch_scaling,
    run_chaos,
    run_dynamic_quality,
    run_forecast,
    run_frontend_load,
    run_karma_ablation,
    run_log_update_ablation,
    run_model_size_quality,
    run_observability,
    run_plans,
    run_replay,
    run_runtime_scaling,
    run_selector_shootout,
    run_serving,
    run_static_quality,
)
from .metrics import win_matrix
from .reporting import (
    render_chaos,
    render_dynamic,
    render_forecast,
    render_frontend_load,
    render_model_size,
    render_observability,
    render_plans,
    render_replay,
    render_runtime,
    render_serving,
    render_static_quality,
    render_win_matrix,
)

__all__ = ["main", "run_experiment", "EXPERIMENTS", "SCALES"]

#: Scale presets: (datasets, workloads, repetitions, rows, test queries).
SCALES: Dict[str, Dict] = {
    "smoke": dict(
        datasets=("power", "synthetic"),
        workloads=("DT", "UV"),
        repetitions=1,
        rows=20_000,
        train_queries=30,
        test_queries=60,
        model_sizes=(1024, 4096),
        dynamic_runs=1,
        dynamic_cycles=3,
        dynamic_queries=30,
        batch_starts=3,
    ),
    "small": dict(
        datasets=("bike", "forest", "power", "protein", "synthetic"),
        workloads=("DT", "DV", "UT", "UV"),
        repetitions=3,
        rows=50_000,
        train_queries=100,
        test_queries=150,
        model_sizes=(1024, 2048, 4096, 8192, 16384, 32768),
        dynamic_runs=3,
        dynamic_cycles=10,
        dynamic_queries=60,
        batch_starts=6,
    ),
    "paper": dict(
        datasets=("bike", "forest", "power", "protein", "synthetic"),
        workloads=("DT", "DV", "UT", "UV"),
        repetitions=25,
        rows=None,
        train_queries=100,
        test_queries=300,
        model_sizes=(1024, 2048, 4096, 8192, 16384, 32768),
        dynamic_runs=10,
        dynamic_cycles=10,
        dynamic_queries=100,
        batch_starts=8,
    ),
}

EXPERIMENTS = (
    "fig4",
    "fig5",
    "table1",
    "fig6",
    "fig7",
    "fig8",
    "ablations",
    "batch",
    "backends",
    "chaos",
    "metrics",
    "serving",
    "forecast",
    "plans",
    "replay",
    "all",
)

#: Per-scale sweep parameters for the ``backends`` experiment.
#: ``sublinear_sizes`` is the million-row regime where only the
#: sublinear backends run the full batch (the numpy baseline is timed
#: on ``reference_queries`` queries).
BACKEND_SCALE = {
    "smoke": dict(
        sample_sizes=(4096, 16384), batch_size=64, repeats=1,
        sublinear_sizes=(100_000,), reference_queries=8,
    ),
    "small": dict(
        sample_sizes=(16384, 65536), batch_size=128, repeats=2,
        sublinear_sizes=(1_000_000,), reference_queries=16,
    ),
    "paper": dict(
        sample_sizes=(16384, 65536, 262144), batch_size=256, repeats=3,
        sublinear_sizes=(1_000_000, 10_000_000), reference_queries=16,
    ),
}

#: Trajectory file the ``backends`` experiment writes next to the report
#: so perf regressions are diffable across PRs.
BACKENDS_JSON = "BENCH_backends.json"

#: Per-scale parameters for the ``chaos`` experiment.
CHAOS_SCALE = {
    "smoke": dict(seeds=(0, 1), sample_size=256, batches=3, batch_size=24),
    "small": dict(seeds=(0, 1, 2), sample_size=512, batches=4, batch_size=32),
    "paper": dict(
        seeds=tuple(range(8)), sample_size=1024, batches=6, batch_size=64
    ),
}

#: Per-scale parameters for the ``serving`` experiment.
SERVING_SCALE = {
    "smoke": dict(sample_size=512, rows=10_000, feedbacks=64, readers=2),
    "small": dict(sample_size=1024, rows=20_000, feedbacks=200, readers=4),
    "paper": dict(sample_size=4096, rows=100_000, feedbacks=1000, readers=8),
}

#: Per-scale parameters for the ``serving`` experiment's concurrency
#: axis (the closed-loop front-end load sweep).  Each scale includes a
#: cell with more clients than the admission-queue depth, so the sweep
#: always exercises load shedding.
FRONTEND_SCALE = {
    "smoke": dict(
        sample_size=1024, rows=8_000, clients=(2, 8, 24),
        rates=(None,), requests_per_client=40, max_queue_depth=12,
    ),
    "small": dict(
        sample_size=2048, rows=20_000, clients=(2, 8, 32),
        rates=(None, 100.0), requests_per_client=80, max_queue_depth=16,
    ),
    "paper": dict(
        sample_size=4096, rows=100_000, clients=(2, 8, 32, 128),
        rates=(None, 100.0, 1000.0), requests_per_client=200,
        max_queue_depth=32,
    ),
}


#: Per-scale parameters for the ``plans`` experiment (optimizer in
#: the loop: plan quality per estimator family on a correlated star).
PLANS_SCALE = {
    "smoke": dict(
        fact_rows=10_000, dim_rows=1_500, sample_size=256,
        feedback_queries=30, dp_tables=10,
    ),
    "small": dict(
        fact_rows=40_000, dim_rows=4_000, sample_size=512,
        feedback_queries=100, dp_tables=11,
    ),
    "paper": dict(
        fact_rows=200_000, dim_rows=20_000, sample_size=2048,
        feedback_queries=400, dp_tables=14,
    ),
}

#: Per-scale parameters for the ``forecast`` experiment (reactive vs
#: proactive serving under phased load, plus the clock-injected
#: autoscale ramp).
FORECAST_SCALE = {
    "smoke": dict(
        sample_size=16384, rows=30_000, phases=3, clients=24,
        rate=100.0, requests_per_client=10, max_queue_depth=6,
        offered_rates=(30, 90, 200, 330, 330),
    ),
    "small": dict(
        sample_size=32768, rows=50_000, phases=4, clients=32,
        rate=100.0, requests_per_client=15, max_queue_depth=6,
    ),
    "paper": dict(
        sample_size=32768, rows=100_000, phases=8, clients=48,
        rate=150.0, requests_per_client=40, max_queue_depth=8,
        offered_rates=(40, 120, 260, 420, 600, 600, 600, 600),
        max_shards=8,
    ),
}


#: Per-scale parameters for the ``replay`` experiment (workload replay
#: head-to-head across every estimator family on a drifting log).
REPLAY_SCALE = {
    "smoke": dict(
        rows=10_000, queries=120, dimensions=3, drift_at=0.5, target=0.02,
    ),
    "small": dict(
        rows=20_000, queries=240, dimensions=4, drift_at=0.5, target=0.02,
    ),
    "paper": dict(
        rows=100_000, queries=1_000, dimensions=5, drift_at=0.5,
        target=0.01,
    ),
}

#: Machine-readable result the ``replay`` experiment writes next to the
#: report, so learned-vs-KDE quality is diffable across PRs.
REPLAY_JSON = "BENCH_replay.json"


def _static(scale: Dict, dimensions: int, progress: bool):
    return run_static_quality(
        dimensions=dimensions,
        datasets=scale["datasets"],
        workloads=scale["workloads"],
        repetitions=scale["repetitions"],
        rows=scale["rows"],
        train_queries=scale["train_queries"],
        test_queries=scale["test_queries"],
        batch_starts=scale["batch_starts"],
        progress=progress,
    )


def run_experiment(
    name: str,
    scale_name: str,
    progress: bool = True,
    shards=None,
    checkpoint=None,
    clients=None,
    sublinear_sizes=None,
    replay_table=None,
    replay_log=None,
) -> str:
    """Run one experiment and return its rendered report."""
    scale = SCALES[scale_name]
    started = time.time()
    if name == "fig4":
        report = render_static_quality(_static(scale, 3, progress))
        title = "Figure 4 - estimation quality on static datasets (3D)"
    elif name == "fig5":
        report = render_static_quality(_static(scale, 8, progress))
        title = "Figure 5 - estimation quality on static datasets (8D)"
    elif name == "table1":
        experiments = []
        for dimensions in (3, 8):
            experiments.extend(_static(scale, dimensions, progress).experiments)
        report = render_win_matrix(win_matrix(experiments))
        title = "Table 1 - pairwise win percentages (3D + 8D)"
    elif name == "fig6":
        result = run_model_size_quality(
            sizes=scale["model_sizes"],
            repetitions=max(1, scale["repetitions"] * 2),
            rows=scale["rows"] or 100_000,
            batch_starts=scale["batch_starts"],
            progress=progress,
        )
        report = render_model_size(result)
        title = "Figure 6 - estimation quality with growing model size"
    elif name == "fig7":
        report = render_runtime(run_runtime_scaling(progress=progress))
        title = "Figure 7 - estimator runtime with growing model size"
    elif name == "fig8":
        sections = []
        for dimensions in (5, 8):
            result = run_dynamic_quality(
                dimensions=dimensions,
                runs=scale["dynamic_runs"],
                cycles=scale["dynamic_cycles"],
                queries_per_cycle=scale["dynamic_queries"],
                progress=progress,
            )
            sections.append(
                f"[{dimensions}D]\n" + render_dynamic(result)
            )
        report = "\n\n".join(sections)
        title = "Figure 8 - estimation quality on changing data"
    elif name == "ablations":
        log_result = run_log_update_ablation(
            repetitions=scale["repetitions"]
        )
        karma_result = run_karma_ablation(runs=scale["dynamic_runs"])
        params = run_adaptive_parameter_ablation(
            repetitions=scale["repetitions"]
        )
        shootout = run_selector_shootout(repetitions=scale["repetitions"])
        report = "\n".join(
            [
                "A1 log-space updates: better in "
                f"{100 * log_result.log_win_fraction:.0f}% of paired trials "
                "(paper: 68%)",
                "A2 karma maintenance on dynamic data: "
                f"error {karma_result.with_karma:.4f} with, "
                f"{karma_result.without_karma:.4f} without, "
                f"{karma_result.with_karma_no_shortcut:.4f} without shortcut "
                f"(improvement {100 * karma_result.karma_improvement:.0f}%)",
                "A3 mini-batch sizes: "
                + ", ".join(
                    f"N={n}: {e:.4f}"
                    for n, e in params.batch_size_errors.items()
                ),
                "A3 losses: "
                + ", ".join(
                    f"{loss}: {e:.4f}" for loss, e in params.loss_errors.items()
                ),
                "A4 selector shootout (mean abs error): "
                + ", ".join(
                    f"{name}: {shootout.errors[name]:.4f}"
                    for name in shootout.ranking()
                ),
            ]
        )
        title = "Ablations - design choices called out by the paper"
    elif name == "batch":
        result = run_batch_scaling(adaptive=True)
        lines = []
        for device in ("gpu", "cpu"):
            speedups = result.speedup(device)
            lines.append(
                f"{device.upper()}: per-query protocol "
                f"{result.per_query_seconds[device] * 1e6:.0f}us/query; "
                + ", ".join(
                    f"q={size}: {seconds * 1e6:.0f}us ({speedup:.2f}x)"
                    for size, seconds, speedup in zip(
                        result.batch_sizes,
                        result.batched_seconds[device],
                        speedups,
                    )
                )
            )
        report = "\n".join(lines)
        title = (
            "Batched evaluation - modelled per-query cost vs batch size "
            "(adaptive estimate+feedback)"
        )
    elif name == "backends":
        params = dict(BACKEND_SCALE[scale_name])
        if shards:
            params["shard_counts"] = tuple(shards)
        if sublinear_sizes is not None:
            params["sublinear_sizes"] = tuple(sublinear_sizes)
        result = run_backend_scaling(progress=progress, **params)
        lines = []
        for series, values in result.wall_seconds.items():
            speedups = result.speedup(series)
            lines.append(
                f"{series}: "
                + ", ".join(
                    f"s={size}: {seconds * 1e3:.1f}ms ({speedup:.2f}x)"
                    for size, seconds, speedup in zip(
                        result.sample_sizes, values, speedups
                    )
                )
            )
        lines.append(
            "cache hit rate: "
            + ", ".join(
                f"s={size}: {rate:.2f}"
                for size, rate in zip(
                    result.sample_sizes, result.cache_hit_rates
                )
            )
        )
        lines.append(
            f"max |deviation| vs numpy backend: "
            f"{result.max_abs_deviation:.2e}"
        )
        for series, qerrors in result.qerror.items():
            lines.append(
                f"{series} accuracy: Q-error (max/mean) "
                + ", ".join(
                    f"s={size}: {q:.2f}/{m:.2f}"
                    for size, q, m in zip(
                        result.sample_sizes,
                        qerrors,
                        result.qerror_mean[series],
                    )
                )
                + "; rows/query "
                + ", ".join(
                    f"s={size}: {rows:.0f}"
                    for size, rows in zip(
                        result.sample_sizes, result.rows_per_query[series]
                    )
                )
            )
        if result.sublinear_sizes:
            lines.append(
                f"[million-row sweep, selective workload: full batch on "
                f"sublinear backends, numpy timed on "
                f"{result.reference_queries} queries]"
            )
            for series, values in result.sublinear_seconds_per_query.items():
                entries = []
                for i, size in enumerate(result.sublinear_sizes):
                    entry = f"s={size}: {values[i] * 1e6:.0f}us/query"
                    if series != "numpy":
                        speedup = result.sublinear_speedup(series)[i]
                        qmax = result.sublinear_qerror[series][i]
                        qmean = result.sublinear_qerror_mean[series][i]
                        entry += (
                            f" ({speedup:.0f}x, Q-err {qmax:.2f}/{qmean:.2f},"
                            f" {result.sublinear_rows_per_query[series][i]:.0f}"
                            " rows/q)"
                        )
                    entries.append(entry)
                lines.append(f"{series}: " + ", ".join(entries))
        with open(BACKENDS_JSON, "w", encoding="utf-8") as handle:
            json.dump(
                {"experiment": "backends", "scale": scale_name,
                 "result": result.as_dict()},
                handle,
                indent=2,
            )
            handle.write("\n")
        lines.append(f"trajectory written to {BACKENDS_JSON}")
        profile = result.device_profile
        lines.append(
            f"modelled device profile ({profile['device']}): "
            f"kernels {profile['kernel_seconds'] * 1e3:.2f}ms, "
            f"transfers {profile['transfer_seconds'] * 1e3:.2f}ms; "
            + ", ".join(
                f"{kernel}: {entry['launches']}x/"
                f"{entry['seconds'] * 1e6:.0f}us"
                for kernel, entry in sorted(profile["kernels"].items())
            )
        )
        report = "\n".join(lines)
        title = (
            "Execution backends - measured wall clock, shards x sample "
            "size (speedups vs the numpy backend)"
        )
    elif name == "chaos":
        result = run_chaos(progress=progress, **CHAOS_SCALE[scale_name])
        report = render_chaos(result)
        title = (
            "Chaos - sharded execution under seeded fault storms "
            "(crashes, stragglers, shm corruption)"
        )
    elif name == "metrics":
        report = render_observability(run_observability())
        title = (
            "Observability - metrics/span/trace summary of one "
            "instrumented serving loop"
        )
    elif name == "serving":
        result = run_serving(
            checkpoint=checkpoint, **SERVING_SCALE[scale_name]
        )
        frontend_params = dict(FRONTEND_SCALE[scale_name])
        if clients:
            frontend_params["clients"] = tuple(clients)
        load = run_frontend_load(**frontend_params)
        report = (
            render_serving(result)
            + "\n\n[concurrency axis]\n"
            + render_frontend_load(load)
        )
        title = (
            "Serving - reader throughput, snapshot staleness, and the "
            "micro-batching front end under closed-loop load"
        )
    elif name == "forecast":
        report = render_forecast(run_forecast(**FORECAST_SCALE[scale_name]))
        title = (
            "Forecast - proactive (forecast-driven warming/publication/"
            "autoscaling) vs reactive serving under phased load"
        )
    elif name == "plans":
        result = run_plans(progress=progress, **PLANS_SCALE[scale_name])
        report = render_plans(result)
        title = (
            "Plans - join-order quality per estimator family "
            "(RegistryCostModel over served snapshots)"
        )
    elif name == "replay":
        result = run_replay(
            progress=progress,
            table_path=replay_table,
            log_path=replay_log,
            **REPLAY_SCALE[scale_name],
        )
        report = render_replay(result)
        with open(REPLAY_JSON, "w", encoding="utf-8") as handle:
            json.dump(
                {"experiment": "replay", "scale": scale_name,
                 "result": result.as_dict()},
                handle,
                indent=2,
            )
            handle.write("\n")
        report += f"\nresults written to {REPLAY_JSON}"
        title = (
            "Replay - workload replay head-to-head (KDE vs classic vs "
            "learned baselines on one drifting log)"
        )
    else:
        raise ValueError(f"unknown experiment {name!r}")
    elapsed = time.time() - started
    banner = "=" * len(title)
    return f"{title}\n{banner}\n{report}\n[{elapsed:.1f}s @ scale={scale_name}]"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS)
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default="small",
        help="fidelity/runtime preset (default: small)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-trial progress"
    )
    parser.add_argument(
        "--shards", type=int, nargs="+", default=None,
        help="shard counts swept by the backends experiment",
    )
    parser.add_argument(
        "--sublinear-sizes", type=int, nargs="*", default=None,
        help="sample sizes for the backends experiment's million-row "
        "sublinear sweep (pass no values to skip it)",
    )
    parser.add_argument(
        "--clients", type=int, nargs="+", default=None,
        help="client counts swept by the serving experiment's "
        "closed-loop front-end load generator",
    )
    parser.add_argument(
        "--replay-table", metavar="CSV", default=None,
        help="existing CSV table dump for the replay experiment "
        "(default: generate a two-cluster synthetic table)",
    )
    parser.add_argument(
        "--replay-log", metavar="PATH", default=None,
        help="existing query log (CSV or SQL-lite) for the replay "
        "experiment (default: generate a drifting log)",
    )
    parser.add_argument(
        "--metrics-json", metavar="PATH", default=None,
        help="enable the metrics registry and dump its snapshot "
        "(counters, spans, estimation traces) to PATH as JSON",
    )
    parser.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="warm-start the experiment's primary model from this "
        "ModelState checkpoint when the file exists, and save the "
        "final state back to it",
    )
    args = parser.parse_args(argv)

    names = (
        ["fig4", "fig5", "table1", "fig6", "fig7", "fig8", "ablations",
         "batch", "backends", "chaos", "metrics", "serving", "forecast",
         "plans", "replay"]
        if args.experiment == "all"
        else [args.experiment]
    )
    if args.metrics_json:
        enable_metrics()
    try:
        for name in names:
            print(
                run_experiment(
                    name, args.scale, progress=not args.quiet,
                    shards=args.shards, checkpoint=args.checkpoint,
                    clients=args.clients,
                    sublinear_sizes=args.sublinear_sizes,
                    replay_table=args.replay_table,
                    replay_log=args.replay_log,
                )
            )
            print()
        if args.metrics_json:
            export_metrics(get_registry(), path=args.metrics_json)
            print(f"metrics snapshot written to {args.metrics_json}")
    finally:
        if args.metrics_json:
            disable_metrics()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
