"""Experiment runners, one per table/figure of the paper's evaluation."""

from .ablations import (
    AdaptiveParameterAblation,
    KarmaAblation,
    LogUpdateAblation,
    SelectorShootout,
    run_adaptive_parameter_ablation,
    run_karma_ablation,
    run_log_update_ablation,
    run_selector_shootout,
)
from .chaos import ChaosResult, run_chaos
from .dynamic_quality import DynamicQualityResult, run_dynamic_quality
from .forecast import (
    AutoscaleStep,
    ForecastModeResult,
    ForecastResult,
    run_forecast,
)
from .frontend_load import (
    FrontendLoadCell,
    FrontendLoadResult,
    run_frontend_load,
)
from .model_size import PAPER_SIZES, ModelSizeResult, run_model_size_quality
from .observability import ObservabilityResult, run_observability
from .plans import PlanModeResult, PlansResult, run_plans
from .replay import (
    REPLAY_ESTIMATORS,
    ReplayEstimatorResult,
    ReplayResult,
    run_replay,
)
from .runtime import (
    DEFAULT_BATCH_SIZES,
    PAPER_MODEL_SIZES,
    BackendScalingResult,
    BatchScalingResult,
    RuntimeResult,
    run_backend_scaling,
    run_batch_scaling,
    run_runtime_scaling,
)
from .serving import ServingResult, run_serving
from .static_quality import StaticQualityResult, run_static_quality

__all__ = [
    "AdaptiveParameterAblation",
    "AutoscaleStep",
    "BackendScalingResult",
    "BatchScalingResult",
    "ChaosResult",
    "DEFAULT_BATCH_SIZES",
    "DynamicQualityResult",
    "ForecastModeResult",
    "ForecastResult",
    "FrontendLoadCell",
    "FrontendLoadResult",
    "KarmaAblation",
    "LogUpdateAblation",
    "ModelSizeResult",
    "ObservabilityResult",
    "PAPER_MODEL_SIZES",
    "PAPER_SIZES",
    "PlanModeResult",
    "PlansResult",
    "REPLAY_ESTIMATORS",
    "ReplayEstimatorResult",
    "ReplayResult",
    "RuntimeResult",
    "SelectorShootout",
    "ServingResult",
    "StaticQualityResult",
    "run_adaptive_parameter_ablation",
    "run_backend_scaling",
    "run_batch_scaling",
    "run_chaos",
    "run_dynamic_quality",
    "run_forecast",
    "run_frontend_load",
    "run_karma_ablation",
    "run_log_update_ablation",
    "run_model_size_quality",
    "run_observability",
    "run_plans",
    "run_replay",
    "run_runtime_scaling",
    "run_selector_shootout",
    "run_serving",
    "run_static_quality",
]
