"""Ablation studies for the design choices the paper calls out.

* **A1 — logarithmic bandwidth updates** (Section 5.5): the paper reports
  improvements over linear updates in 68% of experiments; the ablation
  reruns the adaptive estimator with both settings on identical trials.
* **A2 — Karma maintenance** (Section 4.2): the dynamic workload with the
  maintenance machinery on/off, isolating its contribution.
* **A3 — adaptive hyper-parameters** (Section 4.1): mini-batch size and
  loss sweeps on a static workload.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ...baselines import AdaptiveKDE, kde_sample_size
from ...core.config import AdaptiveConfig, KarmaConfig, SelfTuningConfig
from ...datasets import load_dataset
from ...db import Table
from ...geometry import Box
from ...workloads import (
    DeleteClusterEvent,
    EvolvingClusterWorkload,
    InsertEvent,
    QueryEvent,
    generate_workload,
)

__all__ = [
    "LogUpdateAblation",
    "run_log_update_ablation",
    "KarmaAblation",
    "run_karma_ablation",
    "AdaptiveParameterAblation",
    "run_adaptive_parameter_ablation",
    "SelectorShootout",
    "run_selector_shootout",
]


def _adaptive_trial_error(
    data: np.ndarray,
    config: SelfTuningConfig,
    workload_kind: str,
    train_queries: int,
    test_queries: int,
    seed: int,
) -> float:
    """Mean absolute test error of one Adaptive configuration."""
    rng = np.random.default_rng(seed)
    table = Table(data.shape[1], initial_rows=data)
    sample = table.analyze(kde_sample_size(data.shape[1]), rng)
    queries = generate_workload(
        data,
        workload_kind,
        train_queries + test_queries,
        rng,
        bounds=Box.bounding(data, margin=1e-9),
        search_data=data[
            rng.choice(len(data), size=min(20_000, len(data)), replace=False)
        ],
    )
    estimator = AdaptiveKDE(
        sample,
        config=config,
        row_source=table,
        population_size=len(table),
        seed=seed,
    )
    # Training: one batched feedback pass (numerically equivalent to the
    # per-query estimate/feedback loop — see SelfTuningKDE.feedback_batch).
    train = queries[:train_queries]
    truths = [table.selectivity(query) for query in train]
    estimator.feedback_many(train, truths)
    errors = []
    for query in queries[train_queries:]:
        truth = table.selectivity(query)
        errors.append(abs(estimator.estimate(query) - truth))
        estimator.feedback(query, truth)
    return float(np.mean(errors))


# ----------------------------------------------------------------------
# A1: logarithmic vs linear bandwidth updates
# ----------------------------------------------------------------------
@dataclass
class LogUpdateAblation:
    """Paired errors of log-space vs linear-space adaptive updates."""

    log_errors: List[float]
    linear_errors: List[float]

    @property
    def log_win_fraction(self) -> float:
        """Fraction of paired trials where log updates were better."""
        wins = sum(
            1
            for log_error, linear_error in zip(
                self.log_errors, self.linear_errors
            )
            if log_error < linear_error
        )
        return wins / len(self.log_errors)


def run_log_update_ablation(
    datasets: Sequence[str] = ("forest", "power", "bike"),
    workloads: Sequence[str] = ("DT", "DV"),
    dimensions: int = 3,
    repetitions: int = 3,
    rows: Optional[int] = 30_000,
    seed: int = 0,
) -> LogUpdateAblation:
    """Rerun Adaptive with log updates on/off over identical trials."""
    log_errors: List[float] = []
    linear_errors: List[float] = []
    base = SelfTuningConfig()
    for dataset in datasets:
        data = load_dataset(dataset, dimensions=dimensions, rows=rows, seed=seed)
        for workload in workloads:
            for repetition in range(repetitions):
                trial_seed = seed + repetition * 7919
                log_errors.append(
                    _adaptive_trial_error(
                        data,
                        replace(
                            base,
                            adaptive=AdaptiveConfig(log_updates=True),
                        ),
                        workload,
                        100,
                        100,
                        trial_seed,
                    )
                )
                linear_errors.append(
                    _adaptive_trial_error(
                        data,
                        replace(
                            base,
                            adaptive=AdaptiveConfig(log_updates=False),
                        ),
                        workload,
                        100,
                        100,
                        trial_seed,
                    )
                )
    return LogUpdateAblation(log_errors=log_errors, linear_errors=linear_errors)


# ----------------------------------------------------------------------
# A2: karma maintenance on/off under data changes
# ----------------------------------------------------------------------
@dataclass
class KarmaAblation:
    """Mean error on the dynamic workload with maintenance on/off."""

    with_karma: float
    without_karma: float
    with_karma_no_shortcut: float

    @property
    def karma_improvement(self) -> float:
        """Relative error reduction attributable to the maintenance."""
        if self.without_karma == 0.0:
            return 0.0
        return 1.0 - self.with_karma / self.without_karma


def _dynamic_error(
    workload: EvolvingClusterWorkload, config: SelfTuningConfig, seed: int
) -> float:
    rng = np.random.default_rng(seed)
    table = Table(workload.dimensions, initial_rows=workload.initial_data())
    sample = table.analyze(
        min(kde_sample_size(workload.dimensions), len(table)), rng
    )
    estimator = AdaptiveKDE(
        sample,
        config=config,
        row_source=table,
        population_size=len(table),
        seed=seed,
    )
    errors: List[float] = []
    for event in workload.events():
        if isinstance(event, InsertEvent):
            table.insert(event.row)
            estimator.on_insert(event.row)
        elif isinstance(event, DeleteClusterEvent):
            deleted = table.delete_in(event.region)
            for _ in range(deleted):
                estimator.on_delete()
        elif isinstance(event, QueryEvent):
            truth = table.selectivity(event.query)
            errors.append(abs(estimator.estimate(event.query) - truth))
            estimator.feedback(event.query, truth)
    return float(np.mean(errors))


def run_karma_ablation(
    dimensions: int = 5,
    runs: int = 3,
    cycles: int = 6,
    queries_per_cycle: int = 60,
    seed: int = 0,
) -> KarmaAblation:
    """Dynamic workload with the three maintenance configurations."""
    configurations = {
        "with": SelfTuningConfig(maintain_sample=True),
        "without": SelfTuningConfig(maintain_sample=False),
        "no_shortcut": SelfTuningConfig(
            maintain_sample=True,
            karma=KarmaConfig(empty_region_shortcut=False),
        ),
    }
    totals = {name: 0.0 for name in configurations}
    for run in range(runs):
        workload = EvolvingClusterWorkload(
            dimensions=dimensions,
            cycles=cycles,
            queries_per_cycle=queries_per_cycle,
            seed=seed + run,
        )
        for name, config in configurations.items():
            totals[name] += _dynamic_error(workload, config, seed * 31 + run)
    return KarmaAblation(
        with_karma=totals["with"] / runs,
        without_karma=totals["without"] / runs,
        with_karma_no_shortcut=totals["no_shortcut"] / runs,
    )


# ----------------------------------------------------------------------
# A3: adaptive hyper-parameters
# ----------------------------------------------------------------------
@dataclass
class AdaptiveParameterAblation:
    """Mean error per mini-batch size and per loss function."""

    batch_size_errors: Dict[int, float]
    loss_errors: Dict[str, float]


@dataclass
class SelectorShootout:
    """Mean error per estimator across the bandwidth-selector sweep."""

    errors: Dict[str, float]

    def ranking(self) -> List[str]:
        """Estimator names, best (lowest error) first."""
        return sorted(self.errors, key=self.errors.get)


def run_selector_shootout(
    datasets: Sequence[str] = ("power", "synthetic"),
    workloads: Sequence[str] = ("DT", "DV"),
    dimensions: int = 3,
    repetitions: int = 2,
    rows: Optional[int] = 30_000,
    seed: int = 0,
) -> SelectorShootout:
    """A4 — every bandwidth selection route on the same trials.

    Extends Table 1's cast with the extension baselines: the plug-in
    selector (the second sophisticated class of Section 3.2), the AVI
    histogram product, and the naive sampling estimator KDE generalises.
    """
    from ..protocol import EXTENDED_ESTIMATORS, TrialConfig, run_static_trial

    estimator_names = tuple(
        name for name in EXTENDED_ESTIMATORS if name != "STHoles"
    )
    totals: Dict[str, float] = {name: 0.0 for name in estimator_names}
    count = 0
    for dataset in datasets:
        data = load_dataset(
            dataset, dimensions=dimensions, rows=rows, seed=seed
        )
        for workload in workloads:
            config = TrialConfig(
                dataset=data,
                workload=workload,
                train_queries=60,
                test_queries=100,
                estimators=estimator_names,
                batch_starts=4,
            )
            for repetition in range(repetitions):
                trial = run_static_trial(config, seed=seed + repetition * 101)
                for name, error in trial.errors.items():
                    totals[name] += error
                count += 1
    return SelectorShootout(
        errors={name: total / count for name, total in totals.items()}
    )


def run_adaptive_parameter_ablation(
    batch_sizes: Sequence[int] = (1, 5, 10, 20),
    losses: Sequence[str] = ("squared", "absolute", "squared_q"),
    dataset: str = "power",
    dimensions: int = 3,
    workload: str = "DT",
    repetitions: int = 3,
    rows: Optional[int] = 30_000,
    seed: int = 0,
) -> AdaptiveParameterAblation:
    """Sweep mini-batch size and loss for the adaptive learner."""
    data = load_dataset(dataset, dimensions=dimensions, rows=rows, seed=seed)
    batch_size_errors: Dict[int, float] = {}
    for batch_size in batch_sizes:
        config = SelfTuningConfig(
            adaptive=AdaptiveConfig(batch_size=batch_size)
        )
        errors = [
            _adaptive_trial_error(
                data, config, workload, 100, 100, seed + rep * 7919
            )
            for rep in range(repetitions)
        ]
        batch_size_errors[batch_size] = float(np.mean(errors))
    loss_errors: Dict[str, float] = {}
    for loss in losses:
        config = SelfTuningConfig(loss=loss)
        errors = [
            _adaptive_trial_error(
                data, config, workload, 100, 100, seed + rep * 7919
            )
            for rep in range(repetitions)
        ]
        loss_errors[loss] = float(np.mean(errors))
    return AdaptiveParameterAblation(
        batch_size_errors=batch_size_errors, loss_errors=loss_errors
    )
