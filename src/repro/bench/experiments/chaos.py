"""Chaos bench: sharded estimation quality under seeded fault storms.

Runs the fault-tolerant sharded backend (see :mod:`repro.faults`) under
a reproducible storm of injected worker crashes, stragglers and
shared-memory corruption, and verifies the reliability contract the
library makes everywhere else numerically: *faults never change
results*.  Reported per storm seed: how many faults fired, how many
retries/resurrections the executor needed, the breaker's state history,
and the maximum deviation of every batch from the reference numpy
backend (which must stay within the 1e-12 equivalence budget).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ...core.backends import NumpyBackend, ShardedBackend
from ...core.bandwidth import scott_bandwidth
from ...core.estimator import KernelDensityEstimator
from ...faults import FaultInjector, FaultPlan, FaultSpec, RetryPolicy
from ...geometry import QueryBatch

__all__ = ["ChaosResult", "run_chaos"]


@dataclass
class ChaosResult:
    """Aggregate outcome of one chaos sweep."""

    seeds: Tuple[int, ...]
    batches_per_seed: int
    #: Per-seed counts of injected faults, keyed ``(site, kind)``.
    injected: List[Dict[Tuple[str, str], int]] = field(default_factory=list)
    retries: List[int] = field(default_factory=list)
    resurrections: List[int] = field(default_factory=list)
    republications: List[int] = field(default_factory=list)
    timeouts: List[int] = field(default_factory=list)
    breaker_transitions: List[int] = field(default_factory=list)
    #: Max |sharded - numpy| across all batches, per seed.
    max_abs_deviation: List[float] = field(default_factory=list)
    wall_seconds: List[float] = field(default_factory=list)

    @property
    def total_injected(self) -> int:
        return sum(sum(counts.values()) for counts in self.injected)

    @property
    def worst_deviation(self) -> float:
        return max(self.max_abs_deviation, default=0.0)


def _storm_plan(seed: int, draws: int) -> FaultPlan:
    """Shard crash/straggler storm plus one shm corruption per seed."""
    base = FaultPlan.seeded(
        seed, draws=draws, crash=0.12, slow=0.2, slow_seconds=0.01
    )
    return FaultPlan(
        tuple(base) + (FaultSpec("shm", "corrupt", at=2 + seed % 3),)
    )


def run_chaos(
    seeds: Tuple[int, ...] = (0, 1, 2),
    sample_size: int = 512,
    dimensions: int = 3,
    batches: int = 4,
    batch_size: int = 32,
    shards: int = 3,
    progress: bool = True,
) -> ChaosResult:
    """Run the sharded backend under one fault storm per seed."""
    result = ChaosResult(seeds=tuple(seeds), batches_per_seed=batches)
    for seed in seeds:
        rng = np.random.default_rng(seed)
        sample = rng.normal(size=(sample_size, dimensions))
        bandwidth = scott_bandwidth(sample)
        reference = KernelDensityEstimator(
            sample, bandwidth, backend=NumpyBackend()
        )
        injector = FaultInjector(_storm_plan(seed, draws=batches * shards))
        backend = ShardedBackend(
            shards=shards,
            retry=RetryPolicy(
                max_attempts=4,
                shard_timeout=30.0,
                backoff_base=0.0,
                jitter=0.0,
            ),
            faults=injector,
        )
        model = KernelDensityEstimator(sample, bandwidth, backend=backend)
        deviation = 0.0
        started = time.perf_counter()
        for _ in range(batches):
            lows = rng.uniform(-2.0, 0.0, size=(batch_size, dimensions))
            widths = rng.uniform(0.5, 2.0, size=(batch_size, dimensions))
            batch = QueryBatch(lows, lows + widths)
            got = model.selectivity_batch(batch)
            want = reference.selectivity_batch(batch)
            deviation = max(deviation, float(np.abs(got - want).max()))
        elapsed = time.perf_counter() - started
        backend.close()

        counts: Dict[Tuple[str, str], int] = {}
        for site, kind, _ in injector.events:
            counts[(site, kind)] = counts.get((site, kind), 0) + 1
        result.injected.append(counts)
        result.retries.append(backend.executor.retry_count)
        result.resurrections.append(backend.executor.resurrection_count)
        result.republications.append(backend.executor.republication_count)
        result.timeouts.append(backend.executor.timeout_count)
        result.breaker_transitions.append(len(backend.breaker.transitions))
        result.max_abs_deviation.append(deviation)
        result.wall_seconds.append(elapsed)
        if progress:
            fired = sum(counts.values())
            print(
                f"[chaos] seed={seed}: {fired} faults, "
                f"{backend.executor.resurrection_count} resurrections, "
                f"max dev {deviation:.2e} ({elapsed:.1f}s)"
            )
    return result
