"""Figure 8: estimation quality on changing data.

Section 6.5's setup: the evolving-cluster workload (insertions of new
clusters, deletions of old ones, recency-biased DT queries) replayed
against *Heuristic*, *STHoles* and *Adaptive*, with every estimator
restricted to the usual ``d * 4 kB`` budget.  The experiment records the
progression of the absolute estimation error over the query stream,
averaged over several runs — Figure 8 plots exactly this trace, plus the
table cardinality over time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ...baselines import (
    AdaptiveKDE,
    HeuristicKDE,
    STHolesHistogram,
    kde_sample_size,
    memory_budget_bytes,
    sthole_bucket_budget,
)
from ...db import Table
from ...workloads import (
    DeleteClusterEvent,
    EvolvingClusterWorkload,
    InsertEvent,
    QueryEvent,
)

__all__ = ["DynamicQualityResult", "run_dynamic_quality"]

_ESTIMATORS = ("Heuristic", "STHoles", "Adaptive")


@dataclass
class DynamicQualityResult:
    """Error traces over the dynamic query stream."""

    dimensions: int
    #: estimator -> (runs, queries) absolute error matrix.
    traces: Dict[str, np.ndarray]
    #: Table cardinality after each query (one run's worth; identical
    #: across runs of the same seed progression up to cluster randomness).
    cardinality: np.ndarray

    def mean_trace(self, estimator: str) -> np.ndarray:
        return self.traces[estimator].mean(axis=0)

    def final_error(self, estimator: str, window: int = 50) -> float:
        """Mean error over the last ``window`` queries, across runs."""
        return float(self.traces[estimator][:, -window:].mean())


def _run_single(
    workload: EvolvingClusterWorkload, seed: int
) -> Dict[str, List[float]]:
    """Replay one event stream against all three estimators."""
    rng = np.random.default_rng(seed)
    dimensions = workload.dimensions
    budget = memory_budget_bytes(dimensions)
    initial = workload.initial_data()
    table = Table(dimensions, initial_rows=initial)

    sample = table.analyze(
        min(kde_sample_size(dimensions, budget), len(table)), rng
    )
    heuristic = HeuristicKDE(sample)
    adaptive = AdaptiveKDE(
        sample, row_source=table, population_size=len(table), seed=seed
    )
    stholes = STHolesHistogram(
        workload.domain(),
        row_count=len(table),
        max_buckets=sthole_bucket_budget(dimensions, budget),
        region_count=table.count,
    )

    errors: Dict[str, List[float]] = {name: [] for name in _ESTIMATORS}
    cardinality: List[int] = []
    for event in workload.events():
        if isinstance(event, InsertEvent):
            table.insert(event.row)
            adaptive.on_insert(event.row)
            stholes.row_count = len(table)
        elif isinstance(event, DeleteClusterEvent):
            deleted = table.delete_in(event.region)
            for _ in range(deleted):
                adaptive.on_delete()
            stholes.row_count = len(table)
        elif isinstance(event, QueryEvent):
            truth = table.selectivity(event.query)
            for name, estimator in (
                ("Heuristic", heuristic),
                ("STHoles", stholes),
                ("Adaptive", adaptive),
            ):
                estimate = estimator.estimate(event.query)
                errors[name].append(abs(estimate - truth))
                estimator.feedback(event.query, truth)
            cardinality.append(len(table))
    errors["_cardinality"] = cardinality  # type: ignore[assignment]
    return errors


def run_dynamic_quality(
    dimensions: int = 5,
    runs: int = 10,
    cycles: int = 10,
    queries_per_cycle: int = 100,
    tuples_per_cycle: int = 1500,
    initial_tuples: int = 4500,
    seed: int = 0,
    progress: bool = False,
) -> DynamicQualityResult:
    """Run the Figure 8 experiment (5-D by default; pass 8 for Fig 8b)."""
    all_traces: Dict[str, List[List[float]]] = {
        name: [] for name in _ESTIMATORS
    }
    cardinality: Sequence[int] = []
    for run in range(runs):
        workload = EvolvingClusterWorkload(
            dimensions=dimensions,
            initial_tuples=initial_tuples,
            tuples_per_cycle=tuples_per_cycle,
            cycles=cycles,
            queries_per_cycle=queries_per_cycle,
            seed=seed + run,
        )
        outcome = _run_single(workload, seed=seed * 100 + run)
        cardinality = outcome.pop("_cardinality")  # type: ignore[arg-type]
        for name in _ESTIMATORS:
            all_traces[name].append(outcome[name])
        if progress:
            means = {
                name: f"{np.mean(outcome[name]):.4f}" for name in _ESTIMATORS
            }
            print(f"  run {run + 1}/{runs}: {means}", flush=True)
    return DynamicQualityResult(
        dimensions=dimensions,
        traces={
            name: np.array(traces) for name, traces in all_traces.items()
        },
        cardinality=np.array(cardinality),
    )
