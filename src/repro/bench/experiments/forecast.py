"""Reactive vs proactive serving under phased load with publications.

The forecast experiment quantifies what :class:`~repro.forecast.
ProactiveController` buys over the paper's reactive §4 loop.  Both modes
run the *same* phased schedule against the asyncio front end:

1. **Feedback burst** — the writer absorbs feedback, epochs advance and
   new snapshots publish; every publication's reader starts cold (the
   per-publication CDF-term cache of the ``cached`` backend is empty).
2. **Query burst** — closed-loop clients hammer the lane; in *reactive*
   mode the first post-publication batches pay the cold cache misses on
   the serving path (latency spikes back the admission queue up into
   sheds), in *proactive* mode the controller stepped between the
   bursts and pre-warmed the fresh reader with the lane's recent query
   boxes, so the bursts land on a warm cache.

A second, clock-injected segment demonstrates the demand forecaster
driving shard autoscaling: a ramping synthetic query rate against a
sharded reader, with the controller resizing the pool ahead of the ramp
(``scale`` actions, recorded per step).

Everything the controller decides is also visible in the metrics
registry (``controller.*`` counters, ``forecast.*`` gauges) when metrics
are enabled, so ``--metrics-json`` exports the decision trail.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...core.backends.sharded import ShardedBackend
from ...core.model import SelfTuningKDE
from ...forecast import ControllerConfig, ProactiveController
from ...geometry import Box
from ...obs import MetricsRegistry, get_registry, metrics_enabled
from ...serve import (
    EstimatorFrontend,
    FrontendConfig,
    ModelRegistry,
    Overloaded,
    SnapshotServer,
)
from .runtime import templated_workload

__all__ = [
    "AutoscaleStep",
    "ForecastModeResult",
    "ForecastResult",
    "run_forecast",
]

#: Seconds a shed client waits before retrying.
SHED_BACKOFF_SECONDS = 0.002

TABLE = "bench"
COLUMNS = ("c0", "c1", "c2")


@dataclass
class ForecastModeResult:
    """One serving mode (reactive or proactive) over the full schedule."""

    mode: str
    attempts: int
    completed: int
    shed: int
    shed_rate: float
    p50_ms: float
    p99_ms: float
    duration_seconds: float
    publications: int
    #: Controller action counts by kind (empty for the reactive mode).
    actions: Dict[str, int] = field(default_factory=dict)


@dataclass
class AutoscaleStep:
    """One step of the clock-injected autoscale ramp."""

    step: int
    offered_rate: float
    measured_rate: float
    predicted_rate: float
    shards: int


@dataclass
class ForecastResult:
    """Reactive vs proactive comparison plus the autoscale trajectory."""

    sample_size: int
    dimensions: int
    phases: int
    clients: int
    reactive: ForecastModeResult
    proactive: ForecastModeResult
    autoscale: List[AutoscaleStep] = field(default_factory=list)
    scale_events: int = 0

    @property
    def p99_improvement(self) -> float:
        """Fractional p99 reduction of proactive vs reactive."""
        if self.reactive.p99_ms <= 0:
            return 0.0
        return 1.0 - self.proactive.p99_ms / self.reactive.p99_ms


def _bench_registry() -> MetricsRegistry:
    """The process registry when instrumentation is on, else a private one.

    The controller's trace tap and decision counters need *a* live
    registry; using the process-wide one when the run is instrumented
    makes every decision visible in the exported snapshot.
    """
    return get_registry() if metrics_enabled() else MetricsRegistry()


async def _query_burst(
    frontend: EstimatorFrontend,
    boxes: Sequence[Box],
    clients: int,
    rate: float,
    requests_per_client: int,
    seed: int,
) -> Tuple[int, int, List[float]]:
    """One think-time burst; returns (attempts, shed, latencies).

    Clients pace themselves (exponential think time at ``rate``
    requests/second each), so under a *warm* reader the admission queue
    stays short and nothing sheds; a cold-reader stall lets arrivals
    pile past the queue depth — sheds then measure exactly the cost of
    serving cold.
    """

    async def client(slot: int) -> Tuple[int, int, List[float]]:
        rng = np.random.default_rng(seed + 7919 * slot)
        latencies: List[float] = []
        shed = 0
        attempts = 0
        async with frontend.session() as session:
            while attempts < requests_per_client:
                await asyncio.sleep(float(rng.exponential(1.0 / rate)))
                box = boxes[int(rng.integers(len(boxes)))]
                attempts += 1
                started = time.perf_counter()
                try:
                    await session.estimate(TABLE, COLUMNS, box)
                except Overloaded:
                    shed += 1
                    await asyncio.sleep(SHED_BACKOFF_SECONDS)
                else:
                    latencies.append(time.perf_counter() - started)
        return attempts, shed, latencies

    outcomes = await asyncio.gather(*[client(s) for s in range(clients)])
    return (
        sum(a for a, _, _ in outcomes),
        sum(s for _, s, _ in outcomes),
        [l for _, _, ls in outcomes for l in ls],
    )


def _run_mode(
    mode: str,
    sample: np.ndarray,
    boxes: Sequence[Box],
    feedback_plan: Sequence[Sequence[Tuple[Box, float]]],
    clients: int,
    rate: float,
    requests_per_client: int,
    max_queue_depth: int,
    max_batch_size: int,
    seed: int,
) -> ForecastModeResult:
    """Run the phased schedule in one mode against a fresh stack."""
    metrics = _bench_registry()
    model = SelfTuningKDE(sample, seed=seed % (2**31), metrics=metrics)
    server = SnapshotServer(model, metrics=metrics, reader_backend="cached")
    registry = ModelRegistry()
    registry.register(TABLE, COLUMNS, server)
    frontend = EstimatorFrontend(
        registry,
        config=FrontendConfig(
            max_batch_size=max_batch_size,
            max_queue_depth=max_queue_depth,
        ),
    )
    controller = (
        ProactiveController(
            registry,
            # Serving A/B isolates the warming/publication actuators;
            # drift retunes are exercised by their own tests and would
            # perturb the model mid-comparison.
            config=ControllerConfig(drift_threshold=float("inf"),
                                    volume_factor=None),
            metrics=metrics,
            frontend=frontend,
        )
        if mode == "proactive"
        else None
    )

    async def schedule() -> Tuple[int, int, List[float], float]:
        async with frontend:
            started = time.perf_counter()
            attempts = shed = 0
            latencies: List[float] = []
            if controller is not None:
                controller.step()  # baseline counters before any burst
            for burst in feedback_plan:
                for box, actual in burst:
                    server.feedback(box, actual)
                # Maintenance-cadence publication (same in both modes):
                # the writer's absorbed feedback becomes visible even
                # when mini-batched bandwidth steps haven't crossed an
                # epoch boundary — and the fresh reader starts cold.
                server.publish()
                if controller is not None:
                    # The proactive moment: between bursts the
                    # controller warms the freshly published reader
                    # with the lane's recent boxes.
                    controller.step()
                a, s, ls = await _query_burst(
                    frontend, boxes, clients, rate, requests_per_client, seed
                )
                attempts += a
                shed += s
                latencies.extend(ls)
            return attempts, shed, latencies, time.perf_counter() - started

    attempts, shed, latencies, duration = asyncio.run(schedule())
    quantiles = (
        np.percentile(latencies, (50, 99)) if latencies else (0.0, 0.0)
    )
    actions: Dict[str, int] = {}
    if controller is not None:
        for action in controller.actions:
            actions[action.kind] = actions.get(action.kind, 0) + 1
    return ForecastModeResult(
        mode=mode,
        attempts=attempts,
        completed=len(latencies),
        shed=shed,
        shed_rate=shed / attempts if attempts else 0.0,
        p50_ms=float(quantiles[0]) * 1e3,
        p99_ms=float(quantiles[1]) * 1e3,
        duration_seconds=duration,
        publications=server.publish_count,
        actions=actions,
    )


def _run_autoscale(
    sample: np.ndarray,
    offered_rates: Sequence[float],
    queries_per_shard: float,
    max_shards: int,
    seed: int,
) -> Tuple[List[AutoscaleStep], int]:
    """Clock-injected demand ramp against a sharded reader.

    Demand is driven through the cheap single-query reader path (which
    never touches the shard pool), so the trajectory isolates the
    *decisions*: measured rate, forecast, and the shard count the
    controller chose ahead of the ramp.
    """
    metrics = _bench_registry()
    model = SelfTuningKDE(sample, seed=seed % (2**31), metrics=metrics)
    server = SnapshotServer(
        model,
        metrics=metrics,
        reader_backend=lambda: ShardedBackend(shards=1),
    )
    registry = ModelRegistry()
    registry.register(TABLE, COLUMNS, server)
    clock = [0.0]
    controller = ProactiveController(
        registry,
        config=ControllerConfig(
            queries_per_shard=queries_per_shard,
            max_shards=max_shards,
            warm_on_publish=False,  # decisions only; keep the pool cold
        ),
        metrics=metrics,
        clock=lambda: clock[0],
    )
    controller.step()  # baseline
    dims = sample.shape[1]
    probe = Box((-0.1,) * dims, (0.1,) * dims)
    steps: List[AutoscaleStep] = []
    for index, rate in enumerate(offered_rates):
        for _ in range(int(rate)):
            server.estimate(probe)
        clock[0] += 1.0
        controller.step()
        backend = server.published.reader._backend
        label = {"model": f"{TABLE}/{','.join(COLUMNS)}"}
        steps.append(
            AutoscaleStep(
                step=index,
                offered_rate=float(rate),
                measured_rate=metrics.gauge("forecast.rate", label).value,
                predicted_rate=metrics.gauge(
                    "forecast.predicted_rate", label
                ).value,
                shards=backend.shards,
            )
        )
    scale_events = sum(
        1 for action in controller.actions if action.kind == "scale"
    )
    return steps, scale_events


def run_forecast(
    sample_size: int = 32768,
    rows: int = 50_000,
    phases: int = 4,
    feedbacks_per_phase: int = 4,
    clients: int = 32,
    rate: float = 100.0,
    requests_per_client: int = 15,
    max_queue_depth: int = 6,
    max_batch_size: int = 64,
    query_pool: int = 96,
    template_pool: int = 4,
    offered_rates: Sequence[float] = (40, 120, 260, 420, 420, 420),
    queries_per_shard: float = 128.0,
    max_shards: int = 4,
    seed: int = 20150601,
) -> ForecastResult:
    """Reactive vs proactive under an identical phased schedule.

    Both modes get fresh stacks over the same data, the same feedback
    plan (so the same publication points) and the same closed-loop
    query bursts; the only difference is the controller stepping
    between bursts in proactive mode.
    """
    dimensions = len(COLUMNS)
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(rows, dimensions))
    sample = data[rng.choice(rows, size=sample_size, replace=False)]
    batch = templated_workload(
        data, query_pool, rng, template_pool=template_pool
    )
    boxes = [Box(lo, hi) for lo, hi in zip(batch.low, batch.high)]

    # One shared feedback plan: drawn once so both modes publish at the
    # same points with the same query boxes.
    feedback_plan: List[List[Tuple[Box, float]]] = []
    for _ in range(phases):
        burst = []
        for _ in range(feedbacks_per_phase):
            box = boxes[int(rng.integers(len(boxes)))]
            burst.append((box, float(rng.uniform(0.01, 0.5))))
        feedback_plan.append(burst)

    common = dict(
        sample=sample,
        boxes=boxes,
        feedback_plan=feedback_plan,
        clients=clients,
        rate=rate,
        requests_per_client=requests_per_client,
        max_queue_depth=max_queue_depth,
        max_batch_size=max_batch_size,
        seed=seed,
    )
    reactive = _run_mode("reactive", **common)
    proactive = _run_mode("proactive", **common)
    autoscale, scale_events = _run_autoscale(
        sample[: min(512, sample_size)],
        offered_rates,
        queries_per_shard,
        max_shards,
        seed,
    )
    return ForecastResult(
        sample_size=sample_size,
        dimensions=dimensions,
        phases=phases,
        clients=clients,
        reactive=reactive,
        proactive=proactive,
        autoscale=autoscale,
        scale_events=scale_events,
    )
