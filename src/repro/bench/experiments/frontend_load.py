"""Closed-loop multi-client load generation against the asyncio front end.

The serving experiment's concurrency axis: sweep ``clients × arrival
rate`` against one :class:`~repro.serve.EstimatorFrontend` and measure
what the admission queue buys (and costs) end to end —

* **p50/p99 request latency** — closed-loop, measured client-side around
  each awaited estimate;
* **coalescing factor** — requests answered per evaluated batch; > 1
  means concurrent singles are riding shared evaluations;
* **shed rate** — fraction of attempts rejected by admission control
  (:class:`~repro.serve.Overloaded`), the price of keeping admitted
  p99 bounded under overload.

Each client is closed-loop: it issues a request, awaits the response,
optionally sleeps an exponential think time (``rate`` requests/second
per client; ``None`` = no think time, maximum pressure), and repeats.
Shed attempts back off briefly and count against the client's attempt
budget, so overload cells terminate.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...core.model import SelfTuningKDE
from ...geometry import Box
from ...serve import EstimatorFrontend, FrontendConfig, ModelRegistry, Overloaded
from .runtime import templated_workload

__all__ = ["FrontendLoadCell", "FrontendLoadResult", "run_frontend_load"]

#: Seconds a shed client waits before retrying.
SHED_BACKOFF_SECONDS = 0.002

TABLE = "bench"
COLUMNS = ("c0", "c1", "c2")


@dataclass
class FrontendLoadCell:
    """One (clients, rate) sweep point."""

    clients: int
    #: Per-client arrival rate (requests/s); ``None`` = unthrottled.
    rate: Optional[float]
    attempts: int
    completed: int
    shed: int
    shed_rate: float
    p50_ms: float
    p99_ms: float
    coalescing_factor: float
    batches: int
    stale_batches: int
    duration_seconds: float
    #: Completed requests per second across all clients.
    throughput: float


@dataclass
class FrontendLoadResult:
    """Full clients × rate sweep."""

    sample_size: int
    dimensions: int
    max_queue_depth: int
    max_batch_size: int
    cells: List[FrontendLoadCell] = field(default_factory=list)


async def _run_cell(
    frontend: EstimatorFrontend,
    boxes: Sequence[Box],
    clients: int,
    rate: Optional[float],
    requests_per_client: int,
    seed: int,
) -> Tuple[int, int, List[float]]:
    """Drive one closed-loop cell; returns (attempts, shed, latencies)."""

    async def client(slot: int) -> Tuple[int, int, List[float]]:
        rng = np.random.default_rng(seed + 7919 * slot)
        latencies: List[float] = []
        shed = 0
        attempts = 0
        async with frontend.session() as session:
            while attempts < requests_per_client:
                if rate is not None:
                    await asyncio.sleep(float(rng.exponential(1.0 / rate)))
                box = boxes[int(rng.integers(len(boxes)))]
                attempts += 1
                started = time.perf_counter()
                try:
                    await session.estimate(TABLE, COLUMNS, box)
                except Overloaded:
                    shed += 1
                    await asyncio.sleep(SHED_BACKOFF_SECONDS)
                else:
                    latencies.append(time.perf_counter() - started)
        return attempts, shed, latencies

    outcomes = await asyncio.gather(*[client(slot) for slot in range(clients)])
    attempts = sum(a for a, _, _ in outcomes)
    shed = sum(s for _, s, _ in outcomes)
    latencies = [l for _, _, ls in outcomes for l in ls]
    return attempts, shed, latencies


def run_frontend_load(
    sample_size: int = 2048,
    rows: int = 20_000,
    clients: Sequence[int] = (2, 8, 32),
    rates: Sequence[Optional[float]] = (None,),
    requests_per_client: int = 60,
    max_queue_depth: int = 16,
    max_batch_size: int = 256,
    query_pool: int = 64,
    seed: int = 20150601,
) -> FrontendLoadResult:
    """Sweep clients × arrival rate against one micro-batching front end.

    Every cell gets a fresh :class:`~repro.serve.SnapshotServer` and
    front end over the same data, so cells are independent and the
    reported coalescing factor and shed rate are per-cell measurements.
    """
    dimensions = len(COLUMNS)
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(rows, dimensions))
    sample = data[rng.choice(rows, size=sample_size, replace=False)]
    batch = templated_workload(data, query_pool, rng, template_pool=4)
    boxes = [Box(lo, hi) for lo, hi in zip(batch.low, batch.high)]

    result = FrontendLoadResult(
        sample_size=sample_size,
        dimensions=dimensions,
        max_queue_depth=max_queue_depth,
        max_batch_size=max_batch_size,
    )
    config = FrontendConfig(
        max_batch_size=max_batch_size, max_queue_depth=max_queue_depth
    )
    for count in clients:
        for rate in rates:
            registry = ModelRegistry()
            registry.register(
                TABLE,
                COLUMNS,
                SelfTuningKDE(sample, seed=seed % (2**31)),
            )
            frontend = EstimatorFrontend(registry, config=config)

            async def cell():
                # Stats must be read inside the context: stop() clears
                # the lanes (and their counters) on the way out.
                async with frontend:
                    started = time.perf_counter()
                    attempts, shed, latencies = await _run_cell(
                        frontend,
                        boxes,
                        count,
                        rate,
                        requests_per_client,
                        seed,
                    )
                    duration = time.perf_counter() - started
                    return attempts, shed, latencies, duration, frontend.stats()

            attempts, shed, latencies, duration, stats = asyncio.run(cell())
            quantiles = (
                np.percentile(latencies, (50, 99)) if latencies else (0.0, 0.0)
            )
            result.cells.append(
                FrontendLoadCell(
                    clients=count,
                    rate=rate,
                    attempts=attempts,
                    completed=len(latencies),
                    shed=shed,
                    shed_rate=shed / attempts if attempts else 0.0,
                    p50_ms=float(quantiles[0]) * 1e3,
                    p99_ms=float(quantiles[1]) * 1e3,
                    coalescing_factor=stats.coalescing_factor,
                    batches=stats.batches,
                    stale_batches=stats.stale_batches,
                    duration_seconds=duration,
                    throughput=(
                        len(latencies) / duration if duration > 0 else 0.0
                    ),
                )
            )
    return result
