"""Figure 6: estimation quality with growing model size.

Section 6.3's setup: the 8-D Forest dataset under a DT workload,
estimators built on 100 training queries and evaluated on another 100,
model (sample) sizes swept from 1,024 to 32,768 points, ten repetitions.
STHoles is excluded, as in the paper (its scaling is discussed in [7]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ...datasets import load_dataset
from ..metrics import ErrorSummary, summarize
from ..protocol import TrialConfig, run_static_trial

__all__ = ["ModelSizeResult", "run_model_size_quality", "PAPER_SIZES"]

#: The paper's sweep: powers of two from 1K to 32K sample points.
PAPER_SIZES = (1024, 2048, 4096, 8192, 16384, 32768)

_ESTIMATORS = ("Heuristic", "Batch", "Adaptive")


@dataclass
class ModelSizeResult:
    """Per-sample-size error summaries for the three KDE variants."""

    sizes: List[int]
    #: estimator -> size -> per-repetition mean errors.
    errors: Dict[str, Dict[int, List[float]]]

    def summary(self, estimator: str, size: int) -> ErrorSummary:
        return summarize(self.errors[estimator][size])

    def mean_curve(self, estimator: str) -> np.ndarray:
        return np.array(
            [np.mean(self.errors[estimator][size]) for size in self.sizes]
        )


def run_model_size_quality(
    sizes: Sequence[int] = PAPER_SIZES,
    dataset: str = "forest",
    dimensions: int = 8,
    workload: str = "DT",
    repetitions: int = 10,
    rows: Optional[int] = 50_000,
    train_queries: int = 100,
    test_queries: int = 100,
    batch_starts: int = 4,
    seed: int = 0,
    progress: bool = False,
) -> ModelSizeResult:
    """Run the Figure 6 sweep."""
    data = load_dataset(dataset, dimensions=dimensions, rows=rows, seed=seed)
    d = data.shape[1]
    result = ModelSizeResult(
        sizes=list(sizes),
        errors={name: {size: [] for size in sizes} for name in _ESTIMATORS},
    )
    for size in sizes:
        # The budget determines the KDE sample size: budget = size * d * 4.
        config = TrialConfig(
            dataset=data,
            workload=workload,
            train_queries=train_queries,
            test_queries=test_queries,
            budget_bytes=size * d * 4,
            estimators=_ESTIMATORS,
            batch_starts=batch_starts,
        )
        for repetition in range(repetitions):
            trial = run_static_trial(config, seed=seed * 1000 + repetition)
            for name, error in trial.errors.items():
                result.errors[name][size].append(error)
            if progress:
                print(
                    f"  size {size} rep {repetition + 1}/{repetitions}: "
                    + " ".join(f"{k}={v:.4f}" for k, v in trial.errors.items()),
                    flush=True,
                )
    return result
