"""Observability demo experiment: one instrumented serving loop.

Runs the same templated workload through each execution backend and the
simulated device with metrics enabled, then summarises what the
observability layer captured — per-backend span timings, cache
effectiveness, estimation traces, and the modelled device kernel split.
It doubles as an end-to-end check that every instrumented component
reports into one registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ...core.estimator import KernelDensityEstimator
from ...core.bandwidth import scott_bandwidth
from ...core.model import SelfTuningKDE
from ...db.feedback import FeedbackLoop
from ...db.table import Table
from ...device.kde_device import DeviceKDE
from ...device.runtime import DeviceContext
from ...geometry import Box
from ...obs.metrics import MetricsRegistry, get_registry
from .runtime import templated_workload

__all__ = ["ObservabilityResult", "run_observability"]

BACKENDS = ("numpy", "sharded", "cached")


@dataclass
class ObservabilityResult:
    """What one instrumented workload left in the registry."""

    registry: MetricsRegistry
    backends: Tuple[str, ...]
    queries: int
    #: ``{backend: (span count, total span seconds)}`` for the batched
    #: estimate span.
    span_seconds: Dict[str, Tuple[int, float]] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    trace_count: int = 0
    feedback_traces: int = 0
    #: ``{kernel: (launches, modelled seconds)}`` on the simulated gpu.
    device_kernels: Dict[str, Tuple[int, float]] = field(default_factory=dict)


def run_observability(
    sample_size: int = 2048,
    dimensions: int = 3,
    queries: int = 32,
    rows: int = 20_000,
    seed: int = 20150601,
    registry: Optional[MetricsRegistry] = None,
) -> ObservabilityResult:
    """Run an instrumented mini-workload and summarise the registry.

    Reports into ``registry`` when given, the process-wide registry when
    that is enabled (so ``--metrics-json`` captures everything), or a
    fresh private registry otherwise — the experiment never mutates the
    process-wide registry state.
    """
    if registry is None:
        ambient = get_registry()
        registry = ambient if ambient.enabled else MetricsRegistry()

    rng = np.random.default_rng(seed)
    data = rng.normal(size=(rows, dimensions))
    sample = data[rng.choice(rows, size=sample_size, replace=False)]
    bandwidth = scott_bandwidth(sample)
    batch = templated_workload(data, queries, rng, template_pool=4)
    boxes = [Box(lo, hi) for lo, hi in zip(batch.low, batch.high)]

    def true_selectivity(box: Box) -> float:
        return float(box.contains_points(data).mean())

    for backend in BACKENDS:
        estimator = KernelDensityEstimator(
            sample, bandwidth, backend=backend, metrics=registry
        )
        # Two passes so the cached backend's second pass is warm.
        estimator.selectivity_batch(batch)
        estimator.selectivity_batch(batch)
        estimator.backend.close()

    # The device path: estimate + feedback on the modelled gpu.
    context = DeviceContext.for_device("gpu", metrics=registry)
    device = DeviceKDE(sample, context, metrics=registry)
    for box in boxes[: min(8, len(boxes))]:
        device.estimate(box)
        device.feedback(box, true_selectivity(box))

    # One instrumented feedback loop (completed traces with loss).
    table = Table(dimensions, initial_rows=data)
    model = SelfTuningKDE(
        sample,
        row_source=table,
        population_size=len(table),
        seed=seed % (2**31),
        metrics=registry,
    )
    loop = FeedbackLoop(table, model, metrics=registry).attach()
    loop.run_workload(boxes[: min(8, len(boxes))])
    loop.detach()

    result = ObservabilityResult(
        registry=registry,
        backends=BACKENDS,
        queries=queries,
    )
    for key, entry in registry.span_summary().items():
        for backend in BACKENDS:
            if key == f"estimate_batch{{backend={backend}}}":
                result.span_seconds[backend] = (
                    int(entry["count"]), float(entry["seconds"])
                )
    result.cache_hits = int(registry.sum_counters("cache.hits"))
    result.cache_misses = int(registry.sum_counters("cache.misses"))
    result.trace_count = len(registry.traces)
    result.feedback_traces = sum(
        1 for trace in registry.traces if trace.stage == "feedback"
    )
    for histogram in registry.iter_histograms():
        if histogram.name != "device.kernel.seconds":
            continue
        labels = dict(histogram.labels)
        if labels.get("device") != context.spec.name:
            continue
        result.device_kernels[labels["kernel"]] = (
            histogram.count, histogram.sum
        )
    return result
