"""Plan-level impact of estimation quality: the optimizer in the loop.

The paper's introduction motivates selectivity estimation entirely
through the optimizer: bad cardinalities pick bad join orders.  This
experiment closes that loop for the reproduction.  A four-table star
query over *correlated* synthetic dimensions is optimised four times,
each time with a different estimator family priced through the same
:class:`~repro.db.optimizer.RegistryCostModel`:

``kde``
    Self-tuning KDE models served through the full stack — registered
    snapshot servers, priced via the asyncio front end's batched
    :meth:`~repro.serve.frontend.EstimatorFrontend.plan_cardinalities`
    entry point (predicates answered through admission batches, join
    edges through the Gaussian joint-integral rung).
``stale-kde``
    The same model family deliberately gone stale: trained on data
    whose attribute correlations have since *flipped sign*, served
    without retraining — the scenario the paper's Section 4 feedback
    loop exists to prevent.
``avi``
    Attribute-value-independence histograms (the classic system
    default), riding the cost model's static-estimator rung.
``sampling``
    A small uniform row sample per table.

The dimensions are built so that independence assumptions *invert* the
join order: ``dim_a``'s predicate is jointly near-impossible (negatively
correlated attributes) but looks unselective marginal-by-marginal, while
``dim_b``'s is jointly loose but looks selective to a marginal product.
An estimator that sees the joint distribution joins ``dim_a`` first; AVI
does the opposite and pays the larger intermediate result.  Each mode
reports per-node Q-errors (estimated vs true cardinality along its own
chosen plan) and the headline
:func:`~repro.db.optimizer.plan_quality_ratio` — the true cost of its
chosen plan relative to the true optimum.

A second segment cross-checks the enumerators: the DP must return the
exhaustive sweep's exact plan on the 4-table query, and is then timed on
a chain query too wide for ``O(n!)`` enumeration.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...baselines import AVIEstimator, SampleCountEstimator
from ...core.model import SelfTuningKDE
from ...db import Table
from ...db.optimizer import (
    JoinQuery,
    RegistryCostModel,
    TrueCostModel,
    optimize_join_order,
    plan_quality_ratio,
    price_order,
)
from ...geometry import Box
from ...serve import EstimatorFrontend, ModelRegistry

__all__ = ["PlanModeResult", "PlansResult", "run_plans"]


@dataclass(frozen=True)
class PlanModeResult:
    """One estimator family's chosen plan and how it really performs."""

    mode: str
    order: Tuple[str, ...]
    estimated_cardinalities: Tuple[float, ...]
    true_cardinalities: Tuple[float, ...]
    #: Per-node Q-error: max(est/true, true/est) along the chosen order.
    node_qerrors: Tuple[float, ...]
    #: True C_out of the chosen plan / true C_out of the true optimum.
    quality_ratio: float
    #: How many plan nodes each estimation rung priced.
    rung_counts: Dict[str, int]

    @property
    def max_qerror(self) -> float:
        return max(self.node_qerrors) if self.node_qerrors else 1.0


@dataclass(frozen=True)
class PlansResult:
    modes: List[PlanModeResult]
    optimal_order: Tuple[str, ...]
    optimal_cost: float
    #: DP and exhaustive enumeration agreed exactly on the star query.
    dp_matches_exhaustive: bool
    #: Width of the wide chain query only the DP can enumerate.
    dp_tables: int
    dp_seconds: float

    def ratio(self, mode: str) -> float:
        for result in self.modes:
            if result.mode == mode:
                return result.quality_ratio
        raise KeyError(mode)


def _correlated_dimension(rng, rows, sign, noise):
    """``[key, u, w]`` with ``w = sign * u + noise`` — the correlation
    AVI's marginal product cannot see."""
    u = rng.normal(size=rows)
    w = sign * u + rng.normal(scale=noise, size=rows)
    return np.column_stack([np.arange(float(rows)), u, w])


def _build_query(rng, fact_rows, dim_rows, noise):
    fact = Table(
        3,
        ["ka", "kb", "kc"],
        initial_rows=np.column_stack(
            [
                rng.integers(0, dim_rows, fact_rows).astype(float),
                rng.integers(0, dim_rows, fact_rows).astype(float),
                rng.integers(0, dim_rows, fact_rows).astype(float),
            ]
        ),
    )
    dim_a = Table(
        3, ["k", "u", "w"],
        initial_rows=_correlated_dimension(rng, dim_rows, -1.0, noise),
    )
    dim_b = Table(
        3, ["k", "u", "w"],
        initial_rows=_correlated_dimension(rng, dim_rows, +1.0, noise),
    )
    dim_c = Table(
        2, ["k", "u"],
        initial_rows=np.column_stack(
            [np.arange(float(dim_rows)), rng.normal(size=dim_rows)]
        ),
    )
    span = float(dim_rows)
    return JoinQuery(
        tables={"fact": fact, "dim_a": dim_a, "dim_b": dim_b, "dim_c": dim_c},
        predicates={
            # Jointly near-impossible, marginally loose: u >= 0 AND
            # w >= 0 with w ~ -u needs u in a sliver around zero.
            "dim_a": Box([-1.0, 0.0, 0.0], [span, 6.0, 6.0]),
            # Jointly loose, marginally selective-looking: u >= 1 AND
            # w >= 1 with w ~ +u is just P(u >= 1).
            "dim_b": Box([-1.0, 1.0, 1.0], [span, 6.0, 6.0]),
            # Uncorrelated control: every family prices this right.
            "dim_c": Box([-1.0, 0.5], [span, 6.0]),
        },
        joins=[
            ("fact", 0, "dim_a", 0),
            ("fact", 1, "dim_b", 0),
            ("fact", 2, "dim_c", 0),
        ],
    )


def _train_feedback(model, table, predicate, rng, queries):
    """Drive the Section 4/5 loop: random sub-boxes of the predicate
    region answered with true selectivities."""
    rows = table.rows()
    low = rows.min(axis=0)
    high = rows.max(axis=0)
    for _ in range(queries):
        a = rng.uniform(low, high)
        b = rng.uniform(low, high)
        box = Box(np.minimum(a, b), np.maximum(a, b))
        model.feedback(box, table.count(box) / len(table))


def _kde_registry(query, rng, sample_size, feedback_queries, stale, noise):
    """Registry of served SelfTuningKDE models, optionally trained on
    correlation-flipped (stale) data."""
    registry = ModelRegistry()
    for name, table in query.tables.items():
        if stale and name in ("dim_a", "dim_b"):
            sign = +1.0 if name == "dim_a" else -1.0
            source = Table(
                3, list(table.column_names),
                initial_rows=_correlated_dimension(
                    rng, len(table), sign, noise
                ),
            )
        else:
            source = table
        sample = source.analyze(min(sample_size, len(source)), rng)
        model = SelfTuningKDE(sample, seed=7)
        predicate = query.predicates.get(name)
        if predicate is not None and feedback_queries:
            _train_feedback(model, source, predicate, rng, feedback_queries)
        registry.register(name, tuple(table.column_names), model)
    return registry


def _count_rungs(pricing) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for record in pricing:
        counts[record.rung] = counts.get(record.rung, 0) + 1
    return counts


def _score(query, mode, plan, rung_counts, truth) -> PlanModeResult:
    true_plan = price_order(query, plan.order, truth)
    qerrors = []
    for estimated, actual in zip(plan.nodes, true_plan.nodes):
        lo = max(min(estimated.cardinality, actual.cardinality), 1e-6)
        hi = max(estimated.cardinality, actual.cardinality, 1e-6)
        qerrors.append(hi / lo)
    return PlanModeResult(
        mode=mode,
        order=plan.order,
        estimated_cardinalities=tuple(
            node.cardinality for node in plan.nodes
        ),
        true_cardinalities=tuple(node.cardinality for node in true_plan.nodes),
        node_qerrors=tuple(qerrors),
        quality_ratio=plan_quality_ratio(query, plan, truth),
        rung_counts=rung_counts,
    )


async def _kde_plan(registry, query):
    async with EstimatorFrontend(registry) as frontend:
        return await frontend.plan_cardinalities(query)


def run_plans(
    fact_rows: int = 40_000,
    dim_rows: int = 4_000,
    sample_size: int = 512,
    feedback_queries: int = 100,
    noise: float = 0.1,
    dp_tables: int = 11,
    seed: int = 0,
    progress: bool = True,
) -> PlansResult:
    """Run the optimizer-in-the-loop comparison; see the module docstring."""
    rng = np.random.default_rng(seed)
    query = _build_query(rng, fact_rows, dim_rows, noise)
    truth = TrueCostModel()
    optimal = optimize_join_order(query, truth)
    modes: List[PlanModeResult] = []

    def log(message):
        if progress:
            print(f"  [plans] {message}")

    # -- self-tuning KDE through the full serving stack ----------------
    for mode, stale in (("kde", False), ("stale-kde", True)):
        registry = _kde_registry(
            query, rng, sample_size, feedback_queries, stale, noise
        )
        estimate = asyncio.run(_kde_plan(registry, query))
        modes.append(
            _score(
                query, mode, estimate.plan,
                _count_rungs(estimate.pricing), truth,
            )
        )
        log(f"{mode}: order={'>'.join(estimate.plan.order)} "
            f"ratio={modes[-1].quality_ratio:.2f}")

    # -- independence and sampling baselines ---------------------------
    for mode, build in (
        ("avi", lambda table: AVIEstimator(table.rows())),
        (
            "sampling",
            lambda table: SampleCountEstimator(
                table.analyze(min(sample_size, len(table)), rng)
            ),
        ),
    ):
        estimators = {
            name: build(table) for name, table in query.tables.items()
        }
        model = RegistryCostModel(estimators=estimators)
        plan = optimize_join_order(query, model)
        modes.append(_score(query, mode, plan, model.rung_counts(), truth))
        log(f"{mode}: order={'>'.join(plan.order)} "
            f"ratio={modes[-1].quality_ratio:.2f}")

    # -- enumerator cross-check and wide-query timing ------------------
    exhaustive = optimize_join_order(query, truth, method="exhaustive")
    dp = optimize_join_order(query, truth, method="dp")
    dp_matches = dp.order == exhaustive.order and np.isclose(
        dp.cost, exhaustive.cost
    )
    chain_tables = {}
    chain_rng = np.random.default_rng(seed + 1)
    for i in range(dp_tables):
        keys = np.arange(200.0)
        chain_rng.shuffle(keys)
        chain_tables[f"t{i:02d}"] = Table(
            1, initial_rows=keys.reshape(-1, 1)
        )
    chain = JoinQuery(
        tables=chain_tables,
        joins=[
            (f"t{i:02d}", 0, f"t{i + 1:02d}", 0)
            for i in range(dp_tables - 1)
        ],
    )
    started = time.perf_counter()
    optimize_join_order(chain, TrueCostModel())
    dp_seconds = time.perf_counter() - started
    log(f"dp=={'exhaustive' if dp_matches else 'MISMATCH'}; "
        f"{dp_tables}-table chain in {dp_seconds:.2f}s")

    return PlansResult(
        modes=modes,
        optimal_order=optimal.order,
        optimal_cost=optimal.cost,
        dp_matches_exhaustive=bool(dp_matches),
        dp_tables=dp_tables,
        dp_seconds=dp_seconds,
    )
