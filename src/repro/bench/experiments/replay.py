"""Workload replay head-to-head: every estimator family on one log.

The §6 experiments compare estimators on freshly generated query
streams.  This experiment instead goes through the
:mod:`repro.db.replay` harness end-to-end: it *materializes* a table
dump and a drifting query log as CSV files, ingests them back through
:func:`~repro.db.replay.load_table_csv` /
:func:`~repro.db.replay.load_query_log` (so the disk round-trip is part
of what is measured), and replays the identical log — with feedback —
through every compared estimator family: the paper's KDE (static and
self-tuning), the classic baselines (STHoles, AVI, sampling) and the
learned baselines (:mod:`repro.learned`'s Naru and MSCN).

The log drifts: its first ``drift_at`` fraction targets one cluster of
the data, the rest another.  Static estimators keep their construction-
time view; feedback-driven ones (Adaptive, STHoles, MSCN) see the drift
as it unfolds, which the post-drift tail window isolates.
"""

from __future__ import annotations

import csv
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...baselines import (
    AdaptiveKDE,
    AVIEstimator,
    HeuristicKDE,
    STHolesHistogram,
    SampleCountEstimator,
    kde_sample_size,
    memory_budget_bytes,
    sthole_bucket_budget,
)
from ...baselines.base import SelectivityEstimator
from ...db import Table
from ...db.replay import (
    ReplayReport,
    load_query_log,
    load_table_csv,
    replay_workload,
)
from ...learned import MSCNRegressor, NaruEstimator
from ...workloads import generate_workload

__all__ = ["REPLAY_ESTIMATORS", "ReplayEstimatorResult", "ReplayResult", "run_replay"]

#: Estimator families of the replay head-to-head.  ``Heuristic``, AVI,
#: ``Sampling`` and ``Naru`` are static (feedback is a no-op for them);
#: ``Adaptive``, STHoles and MSCN learn from the replayed feedback.
REPLAY_ESTIMATORS = (
    "Heuristic",
    "Adaptive",
    "STHoles",
    "AVI",
    "Sampling",
    "Naru",
    "MSCN",
)

#: The feedback-driven subset of :data:`REPLAY_ESTIMATORS`.
ADAPTIVE_ESTIMATORS = frozenset({"Adaptive", "STHoles", "MSCN"})


@dataclass
class ReplayEstimatorResult:
    """One estimator's record over the replayed log."""

    name: str
    #: Whether the estimator consumes feedback (vs ignoring it).
    adaptive: bool
    #: Q-error percentiles over the whole log and over the post-drift
    #: tail window (where feedback-driven estimators have caught up).
    qerror: Dict[str, float]
    tail_qerror: Dict[str, float]
    mean_latency_seconds: float
    memory_bytes: int
    within_budget: bool

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "adaptive": self.adaptive,
            "qerror": dict(self.qerror),
            "tail_qerror": dict(self.tail_qerror),
            "mean_latency_seconds": self.mean_latency_seconds,
            "memory_bytes": self.memory_bytes,
            "within_budget": self.within_budget,
        }


@dataclass
class ReplayResult:
    """Outcome of the replay head-to-head."""

    estimators: List[ReplayEstimatorResult]
    queries: int
    drift_index: int
    dimensions: int
    rows: int
    budget_bytes: int
    table_path: str
    log_path: str

    def result_for(self, name: str) -> ReplayEstimatorResult:
        for entry in self.estimators:
            if entry.name == name:
                return entry
        raise KeyError(name)

    def as_dict(self) -> dict:
        return {
            "queries": self.queries,
            "drift_index": self.drift_index,
            "dimensions": self.dimensions,
            "rows": self.rows,
            "budget_bytes": self.budget_bytes,
            "estimators": [entry.as_dict() for entry in self.estimators],
        }


def _make_dataset(
    rows: int, dimensions: int, rng: np.random.Generator
) -> np.ndarray:
    """Two correlated Gaussian clusters of equal weight."""
    half = rows // 2
    offsets = (-2.0, 2.0)
    blocks = []
    for cluster, offset in enumerate(offsets):
        count = half if cluster == 0 else rows - half
        base = rng.normal(size=(count, dimensions))
        # Correlate neighbouring attributes, like the paper's synthetic
        # generator, so independence assumptions (AVI) are stressed.
        for dim in range(1, dimensions):
            base[:, dim] = 0.6 * base[:, dim - 1] + 0.8 * base[:, dim]
        scales = 1.0 + 0.5 * np.arange(dimensions)
        blocks.append(offset + base * scales)
    return np.concatenate(blocks, axis=0)


def _write_table_csv(path: str, data: np.ndarray) -> None:
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([f"a{i}" for i in range(data.shape[1])])
        writer.writerows(data.tolist())


def _write_query_log_csv(
    path: str,
    columns: Sequence[str],
    queries: Sequence,
    selectivities: Sequence[float],
) -> None:
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        header: List[str] = []
        for column in columns:
            header.extend([f"{column}_lo", f"{column}_hi"])
        header.append("selectivity")
        writer.writerow(header)
        for query, truth in zip(queries, selectivities):
            record = []
            for dim in range(len(columns)):
                record.extend([query.low[dim], query.high[dim]])
            record.append(truth)
            writer.writerow(record)


def _build_estimator(
    name: str,
    table: Table,
    sample: np.ndarray,
    budget: int,
    seed: int,
) -> SelectivityEstimator:
    dimensions = table.dimensions
    if name == "Heuristic":
        return HeuristicKDE(sample)
    if name == "Adaptive":
        return AdaptiveKDE(
            sample,
            row_source=table,
            population_size=len(table),
            seed=seed,
        )
    if name == "STHoles":
        return STHolesHistogram(
            table.bounds(margin=1e-9),
            row_count=len(table),
            max_buckets=sthole_bucket_budget(dimensions, budget),
            region_count=table.count,
        )
    if name == "AVI":
        # Each 1-D histogram stores ``buckets`` fractions plus
        # ``buckets + 1`` edges: d * (2B + 1) floats in total.
        buckets = max(4, (budget // (dimensions * 4) - 1) // 2)
        return AVIEstimator(table.rows(), buckets_per_dimension=buckets)
    if name == "Sampling":
        return SampleCountEstimator(sample)
    if name == "Naru":
        return NaruEstimator(sample, budget_bytes=budget, seed=seed)
    if name == "MSCN":
        return MSCNRegressor(
            sample=sample, budget_bytes=budget, seed=seed
        )
    raise ValueError(f"unknown replay estimator {name!r}")


def run_replay(
    rows: int = 20_000,
    queries: int = 200,
    dimensions: int = 4,
    drift_at: float = 0.5,
    target: float = 0.02,
    estimators: Sequence[str] = REPLAY_ESTIMATORS,
    budget_bytes: Optional[int] = None,
    seed: int = 0,
    table_path: Optional[str] = None,
    log_path: Optional[str] = None,
    workdir: Optional[str] = None,
    progress: bool = True,
) -> ReplayResult:
    """Run the replay head-to-head.

    With the default ``table_path=None`` / ``log_path=None``, a
    two-cluster dataset and a drifting query log are generated, written
    to CSV under ``workdir`` (a temporary directory when omitted) and
    read back through the ingest functions.  Passing existing paths
    replays a user-supplied dump/log instead (no generation; ``rows``,
    ``drift_at`` and ``target`` are ignored, the tail window defaults to
    the last half of the log).
    """
    if not 0.0 < drift_at < 1.0:
        raise ValueError("drift_at must lie strictly between 0 and 1")
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    cleanup: Optional[tempfile.TemporaryDirectory] = None
    try:
        if table_path is None or log_path is None:
            if workdir is None:
                cleanup = tempfile.TemporaryDirectory(prefix="replay-")
                workdir = cleanup.name
            os.makedirs(workdir, exist_ok=True)
            table_path, log_path, drift_index = _generate_inputs(
                workdir,
                rows=rows,
                queries=queries,
                dimensions=dimensions,
                drift_at=drift_at,
                target=target,
                rng=rng,
            )
        else:
            drift_index = None

        table = load_table_csv(table_path)
        log = load_query_log(log_path, table)
        if drift_index is None:
            drift_index = len(log) // 2
        tail = len(log) - drift_index

        budget = budget_bytes or memory_budget_bytes(table.dimensions)
        sample = table.analyze(
            kde_sample_size(table.dimensions, budget), seed=seed
        )

        results: List[ReplayEstimatorResult] = []
        for name in estimators:
            estimator = _build_estimator(name, table, sample, budget, seed)
            report = replay_workload(table, estimator, log, feedback=True)
            results.append(_summarize(name, report, tail, budget))
            if progress:
                print(
                    f"  [replay] {name}: p50={results[-1].qerror['p50']:.2f} "
                    f"tail p50={results[-1].tail_qerror['p50']:.2f}",
                    flush=True,
                )
        return ReplayResult(
            estimators=results,
            queries=len(log),
            drift_index=drift_index,
            dimensions=table.dimensions,
            rows=len(table),
            budget_bytes=budget,
            table_path=table_path,
            log_path=log_path,
        )
    finally:
        if cleanup is not None:
            cleanup.cleanup()


def _generate_inputs(
    workdir: str,
    *,
    rows: int,
    queries: int,
    dimensions: int,
    drift_at: float,
    target: float,
    rng: np.random.Generator,
) -> Tuple[str, str, int]:
    """Materialize the table dump and drifting log; return their paths."""
    data = _make_dataset(rows, dimensions, rng)
    table = Table(dimensions, initial_rows=data)
    bounds = table.bounds(margin=1e-9)
    drift_index = int(round(queries * drift_at))
    drift_index = min(max(drift_index, 1), queries - 1)

    # Phase 1 centers on the first cluster, phase 2 on the second; the
    # selectivity-target bisection counts against the full table either
    # way, so both phases hit the same ~target selectivity.
    half = rows // 2
    phase_data = (data[:half], data[half:])
    phase_counts = (drift_index, queries - drift_index)
    log_queries: List = []
    for cluster_rows, count in zip(phase_data, phase_counts):
        log_queries.extend(
            generate_workload(
                cluster_rows,
                "DT",
                count,
                rng,
                target=target,
                bounds=bounds,
                search_data=data[
                    rng.choice(rows, size=min(rows, 20_000), replace=False)
                ],
            )
        )
    truths = [table.selectivity(query) for query in log_queries]

    table_path = os.path.join(workdir, "replay_table.csv")
    log_path = os.path.join(workdir, "replay_log.csv")
    _write_table_csv(table_path, data)
    _write_query_log_csv(
        log_path,
        [f"a{i}" for i in range(dimensions)],
        log_queries,
        truths,
    )
    return table_path, log_path, drift_index


def _summarize(
    name: str, report: ReplayReport, tail: int, budget: int
) -> ReplayEstimatorResult:
    return ReplayEstimatorResult(
        name=name,
        adaptive=name in ADAPTIVE_ESTIMATORS,
        qerror=report.qerror_percentiles(),
        tail_qerror=report.tail(tail).qerror_percentiles(),
        mean_latency_seconds=(
            float(report.latencies.mean()) if len(report) else 0.0
        ),
        memory_bytes=report.memory_bytes,
        within_budget=report.memory_bytes <= budget,
    )
