"""Figure 7: estimator runtime with growing model size.

Section 6.4 measures the total estimation overhead of 100 random UV
queries on a synthetic 8-D table, sweeping the model size, comparing:

* *Heuristic* and *Adaptive* KDE on the GPU and the CPU (through the
  simulated device layer — the substitution documented in DESIGN.md),
* the *full* STHoles model with an equivalent memory budget, priced by
  the sequential-traversal cost model.

The numbers are modelled, not measured — the point of the figure is the
*shape*: flat launch-latency-dominated start, linear scaling afterwards,
a roughly constant GPU/CPU gap, a constant Adaptive offset, and STHoles
winning small models but losing large ones by the paper's 7-10x.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ...baselines.stholes import sthole_bucket_budget
from ...core import KernelDensityEstimator, scott_bandwidth
from ...core.backends import (
    CachedBackend,
    GridBackend,
    HashingBackend,
    ShardedBackend,
)
from ...datasets import gunopulos_synthetic
from ...device import DeviceContext, DeviceKDE, STHolesCostModel
from ...geometry import Box, QueryBatch
from ...workloads import generate_workload

__all__ = [
    "RuntimeResult",
    "run_runtime_scaling",
    "BatchScalingResult",
    "run_batch_scaling",
    "BackendScalingResult",
    "run_backend_scaling",
    "templated_workload",
    "PAPER_MODEL_SIZES",
    "DEFAULT_BATCH_SIZES",
]

#: Model sizes (sample points) swept by the paper's Figure 7.
PAPER_MODEL_SIZES = (1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072)


@dataclass
class RuntimeResult:
    """Modelled per-query estimation overhead (seconds) per configuration."""

    sizes: List[int]
    #: series name -> per-size seconds/query.  Series: "Heuristic GPU",
    #: "Adaptive GPU", "Heuristic CPU", "Adaptive CPU", "STHoles".
    seconds: Dict[str, List[float]]

    def series(self, name: str) -> np.ndarray:
        return np.array(self.seconds[name], dtype=np.float64)


def _feedback_selectivities(queries: Sequence[Box]) -> list:
    return [0.0 if query.volume() == 0 else 0.001 for query in queries]


def _kde_seconds_per_query(
    sample: np.ndarray,
    queries: Sequence[Box],
    device: str,
    adaptive: bool,
    batched: bool = False,
) -> float:
    """Modelled seconds per query, per-query or batched choreography.

    The per-query path reproduces the paper's Figure 7 protocol (one
    transfer/launch sequence per query).  The batched path serves the
    whole workload through ``estimate_batch``/``feedback_batch`` — same
    math, but launch and transfer overhead paid once per batch.
    """
    context = DeviceContext.for_device(device)
    kde = DeviceKDE(sample, context, adaptive=adaptive)
    context.reset_clock()
    if batched:
        kde.estimate_batch(queries)
        if adaptive:
            kde.feedback_batch(queries, _feedback_selectivities(queries))
    else:
        for query, truth in zip(queries, _feedback_selectivities(queries)):
            kde.estimate(query)
            if adaptive:
                kde.feedback(query, truth)
    return context.elapsed_seconds / len(queries)


def run_runtime_scaling(
    sizes: Sequence[int] = PAPER_MODEL_SIZES,
    dimensions: int = 8,
    queries: int = 100,
    data_rows: int = 100_000,
    seed: int = 0,
    progress: bool = False,
    batched: bool = False,
) -> RuntimeResult:
    """Run the Figure 7 sweep.

    ``data_rows`` only bounds the pool the samples and query centers are
    drawn from (the paper's table has three million rows; the estimation
    cost depends on the model size, not the table size).  ``batched``
    serves each workload through the batched device path instead of the
    paper's query-at-a-time protocol (see :func:`run_batch_scaling` for
    the dedicated batching experiment).
    """
    rng = np.random.default_rng(seed)
    data = gunopulos_synthetic(
        rows=max(data_rows, max(sizes)), dimensions=dimensions, seed=seed
    )
    workload = generate_workload(data, "UV", queries, rng)
    result = RuntimeResult(sizes=list(sizes), seconds={
        "Heuristic GPU": [],
        "Adaptive GPU": [],
        "Heuristic CPU": [],
        "Adaptive CPU": [],
        "STHoles": [],
    })
    sthole_model = STHolesCostModel()
    for size in sizes:
        sample = data[rng.choice(data.shape[0], size=size, replace=False)]
        for device in ("gpu", "cpu"):
            for adaptive in (False, True):
                label = f"{'Adaptive' if adaptive else 'Heuristic'} {device.upper()}"
                seconds = _kde_seconds_per_query(
                    sample, workload, device, adaptive, batched=batched
                )
                result.seconds[label].append(seconds)
        # STHoles with the same memory budget, full model (paper: the
        # estimation time of the fully built histogram).
        budget_bytes = size * dimensions * 4
        buckets = sthole_bucket_budget(dimensions, budget_bytes)
        result.seconds["STHoles"].append(
            sthole_model.estimate_seconds(buckets)
        )
        if progress:
            row = {k: f"{v[-1] * 1e3:.3f}ms" for k, v in result.seconds.items()}
            print(f"  size {size}: {row}", flush=True)
    return result


#: Batch sizes swept by the batched-evaluation experiment.
DEFAULT_BATCH_SIZES = (1, 4, 16, 64, 256, 1024)


@dataclass
class BatchScalingResult:
    """Modelled per-query overhead versus batch size, per device.

    ``per_query_seconds[device]`` is the (constant) query-at-a-time
    baseline; ``batched_seconds[device]`` the per-size batched costs.
    The amortisation factor at the largest batch is the headline number
    of the SIMD-batched KDE formulation (Andrzejewski et al.).
    """

    batch_sizes: List[int]
    per_query_seconds: Dict[str, float]
    batched_seconds: Dict[str, List[float]]

    def speedup(self, device: str) -> np.ndarray:
        """Per-batch-size speedup of the batched path over the loop."""
        batched = np.array(self.batched_seconds[device], dtype=np.float64)
        return self.per_query_seconds[device] / batched


def run_batch_scaling(
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    model_size: int = 4096,
    dimensions: int = 4,
    devices: Sequence[str] = ("gpu", "cpu"),
    adaptive: bool = False,
    seed: int = 0,
) -> BatchScalingResult:
    """Sweep the batch size at a fixed model size on the modelled clock.

    Launch latency and per-query transfers dominate small models, so the
    batched path's modelled per-query cost falls towards the pure
    kernel-work floor as the batch grows — the motivation for the batched
    query-evaluation engine.
    """
    rng = np.random.default_rng(seed)
    data = gunopulos_synthetic(
        rows=max(10 * model_size, 10_000), dimensions=dimensions, seed=seed
    )
    sample = data[rng.choice(data.shape[0], size=model_size, replace=False)]
    workload = generate_workload(data, "UV", max(batch_sizes), rng)
    result = BatchScalingResult(
        batch_sizes=list(batch_sizes),
        per_query_seconds={},
        batched_seconds={device: [] for device in devices},
    )
    for device in devices:
        result.per_query_seconds[device] = _kde_seconds_per_query(
            sample, workload, device, adaptive, batched=False
        )
        for batch_size in batch_sizes:
            result.batched_seconds[device].append(
                _kde_seconds_per_query(
                    sample, workload[:batch_size], device, adaptive, batched=True
                )
            )
    return result


# ----------------------------------------------------------------------
# Execution-backend scaling (wall clock + cache hit rate)
# ----------------------------------------------------------------------
@dataclass
class BackendScalingResult:
    """Measured wall-clock per backend across the sweep.

    ``wall_seconds[series]`` holds one entry per sample size (best of
    ``repeats`` timed runs of one full ``selectivity_batch`` over the
    workload).  Series are ``"numpy"``, ``"sharded[n]"`` per shard
    count, and ``"cached"``/``"cached-warm"`` (cold first pass vs fully
    warmed cache).  ``max_abs_deviation`` is the largest absolute
    estimate difference of any backend against the ``numpy`` reference
    (the 1e-12 equivalence budget); ``device_profile`` is the modelled
    where-time-goes summary of a batched :class:`DeviceKDE` run at the
    largest sample size (:meth:`DeviceContext.profile`).
    """

    sample_sizes: List[int]
    batch_size: int
    shard_counts: List[int]
    repeats: int
    wall_seconds: Dict[str, List[float]] = field(default_factory=dict)
    cache_hit_rates: List[float] = field(default_factory=list)
    max_abs_deviation: float = 0.0
    device_profile: Dict[str, object] = field(default_factory=dict)
    #: Accuracy axis of the sublinear backends at the regular sizes:
    #: series -> per-size max Q-error vs the ``numpy`` reference.  The
    #: exact backends are held to the 1e-12 ``max_abs_deviation`` budget
    #: instead and do not appear here.
    qerror: Dict[str, List[float]] = field(default_factory=dict)
    qerror_mean: Dict[str, List[float]] = field(default_factory=dict)
    #: series -> per-size mean kernel-evaluated sample rows per query
    #: (``BackendStats.rows_touched_per_query``) — the observed
    #: sublinearity.
    rows_per_query: Dict[str, List[float]] = field(default_factory=dict)
    #: Big-sample sweep (10^6-10^7 rows): the numpy baseline runs only
    #: ``reference_queries`` queries there (linear cost makes the full
    #: batch infeasible), so this section stores *per-query* seconds.
    sublinear_sizes: List[int] = field(default_factory=list)
    reference_queries: int = 0
    sublinear_seconds_per_query: Dict[str, List[float]] = field(
        default_factory=dict
    )
    sublinear_qerror: Dict[str, List[float]] = field(default_factory=dict)
    sublinear_qerror_mean: Dict[str, List[float]] = field(
        default_factory=dict
    )
    sublinear_build_seconds: Dict[str, List[float]] = field(
        default_factory=dict
    )
    sublinear_rows_per_query: Dict[str, List[float]] = field(
        default_factory=dict
    )

    def series(self, name: str) -> np.ndarray:
        return np.array(self.wall_seconds[name], dtype=np.float64)

    def speedup(self, name: str, baseline: str = "numpy") -> np.ndarray:
        """Per-sample-size wall-clock speedup of ``name`` over ``baseline``."""
        return self.series(baseline) / self.series(name)

    def sublinear_speedup(self, name: str) -> np.ndarray:
        """Per-query speedup of ``name`` over numpy in the big-sample sweep."""
        baseline = np.array(
            self.sublinear_seconds_per_query["numpy"], dtype=np.float64
        )
        series = np.array(
            self.sublinear_seconds_per_query[name], dtype=np.float64
        )
        return baseline / series

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready trajectory record (``BENCH_backends.json``)."""
        return {
            "sample_sizes": list(self.sample_sizes),
            "batch_size": self.batch_size,
            "shard_counts": list(self.shard_counts),
            "repeats": self.repeats,
            "wall_seconds": {k: list(v) for k, v in self.wall_seconds.items()},
            "speedup_vs_numpy": {
                name: [float(x) for x in self.speedup(name)]
                for name in self.wall_seconds
                if name != "numpy"
            },
            "cache_hit_rates": list(self.cache_hit_rates),
            "max_abs_deviation": self.max_abs_deviation,
            "qerror": {k: list(v) for k, v in self.qerror.items()},
            "qerror_mean": {
                k: list(v) for k, v in self.qerror_mean.items()
            },
            "rows_per_query": {
                k: list(v) for k, v in self.rows_per_query.items()
            },
            "sublinear": {
                "sizes": list(self.sublinear_sizes),
                "reference_queries": self.reference_queries,
                "seconds_per_query": {
                    k: list(v)
                    for k, v in self.sublinear_seconds_per_query.items()
                },
                "speedup_vs_numpy": {
                    name: [float(x) for x in self.sublinear_speedup(name)]
                    for name in self.sublinear_seconds_per_query
                    if name != "numpy"
                },
                "qerror": {
                    k: list(v) for k, v in self.sublinear_qerror.items()
                },
                "qerror_mean": {
                    k: list(v)
                    for k, v in self.sublinear_qerror_mean.items()
                },
                "build_seconds": {
                    k: list(v) for k, v in self.sublinear_build_seconds.items()
                },
                "rows_per_query": {
                    k: list(v)
                    for k, v in self.sublinear_rows_per_query.items()
                },
            },
            "device_profile": dict(self.device_profile),
        }


def templated_workload(
    data: np.ndarray,
    queries: int,
    rng: np.random.Generator,
    template_pool: int = 8,
    width_range: tuple = (0.05, 0.5),
) -> QueryBatch:
    """A bound-reusing workload: per-dimension interval templates.

    Each dimension draws ``template_pool`` candidate ``(lo, hi)``
    intervals from the data's range; every query picks one template per
    dimension independently.  Distinct boxes abound (up to
    ``template_pool ** d``), but any single dimension only ever sees
    ``template_pool`` bounds — the reuse pattern (templated predicates,
    dashboards sweeping one attribute) that the per-dimension CDF-term
    cache exploits.

    ``width_range`` scales interval widths relative to each dimension's
    data range; narrow it (e.g. ``(0.01, 0.05)``) for a *selective*
    workload — the regime where bucket-pruning backends shine.
    """
    d = data.shape[1]
    lows = np.empty((queries, d))
    highs = np.empty((queries, d))
    for j in range(d):
        lo_candidates = rng.uniform(
            data[:, j].min(), data[:, j].max(), size=template_pool
        )
        widths = rng.uniform(
            width_range[0], width_range[1], size=template_pool
        ) * (data[:, j].max() - data[:, j].min())
        choice = rng.integers(template_pool, size=queries)
        lows[:, j] = lo_candidates[choice]
        highs[:, j] = lo_candidates[choice] + widths[choice]
    return QueryBatch(lows, highs)


def _best_wall_seconds(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` (after it ran once)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _qerror(
    estimates: np.ndarray, reference: np.ndarray, floor: float
) -> np.ndarray:
    """Per-query multiplicative deviation, floored like the paper's Q-error."""
    a = np.maximum(np.asarray(estimates, dtype=np.float64), floor)
    b = np.maximum(np.asarray(reference, dtype=np.float64), floor)
    return np.maximum(a / b, b / a)


#: The sublinear backends swept alongside the exact ones.
_SUBLINEAR_BACKENDS = (("grid", GridBackend), ("hashing", HashingBackend))


def run_backend_scaling(
    sample_sizes: Sequence[int] = (16384, 65536),
    batch_size: int = 128,
    shard_counts: Sequence[int] = (1, 2, 4),
    dimensions: int = 4,
    template_pool: int = 8,
    repeats: int = 2,
    seed: int = 0,
    progress: bool = False,
    sublinear_sizes: Sequence[int] = (),
    reference_queries: int = 16,
) -> BackendScalingResult:
    """Sweep execution backends over shards x sample size (wall clock).

    Unlike the modelled-clock experiments, this one measures *real* host
    wall time: the sharded backend's speedup is whatever the machine's
    cores actually deliver (expect ~1x on a single-core host — the
    partials pipeline still works, it just has nothing to parallelise
    over), and the cached backend's speedup tracks the workload's bound
    reuse (reported as the cache hit rate).

    The sublinear backends (``grid``, ``hashing``) join the regular
    sweep with an accuracy axis: their per-size max Q-error against the
    numpy reference and the observed kernel-evaluated rows per query.
    ``sublinear_sizes`` additionally sweeps them at million-row scale
    (the ROADMAP item 2 regime); there the numpy baseline is timed on
    only ``reference_queries`` queries — its linear cost is the point —
    and the section reports *per-query* seconds for every series.
    """
    rng = np.random.default_rng(seed)
    data = gunopulos_synthetic(
        rows=max(2 * max(sample_sizes), 10_000),
        dimensions=dimensions,
        seed=seed,
    )
    batch = templated_workload(data, batch_size, rng, template_pool)
    result = BackendScalingResult(
        sample_sizes=list(sample_sizes),
        batch_size=batch_size,
        shard_counts=list(shard_counts),
        repeats=repeats,
    )
    result.sublinear_sizes = list(sublinear_sizes)
    result.reference_queries = int(reference_queries)
    series_names = (
        ["numpy"]
        + [f"sharded[{n}]" for n in shard_counts]
        + ["cached", "cached-warm"]
        + [name for name, _ in _SUBLINEAR_BACKENDS]
    )
    for name in series_names:
        result.wall_seconds[name] = []
    for name, _ in _SUBLINEAR_BACKENDS:
        result.qerror[name] = []
        result.qerror_mean[name] = []
        result.rows_per_query[name] = []

    for size in sample_sizes:
        sample = data[rng.choice(data.shape[0], size=size, replace=False)]
        bandwidth = scott_bandwidth(sample)

        reference = KernelDensityEstimator(sample, bandwidth)
        reference.selectivity_batch(batch)  # warm numpy/BLAS paths
        result.wall_seconds["numpy"].append(
            _best_wall_seconds(
                lambda: reference.selectivity_batch(batch), repeats
            )
        )
        expected = reference.selectivity_batch(batch)

        for shards in shard_counts:
            kde = KernelDensityEstimator(
                sample, bandwidth, backend=ShardedBackend(shards=shards)
            )
            estimates = kde.selectivity_batch(batch)  # spins up the pool
            result.max_abs_deviation = max(
                result.max_abs_deviation,
                float(np.abs(estimates - expected).max()),
            )
            result.wall_seconds[f"sharded[{shards}]"].append(
                _best_wall_seconds(
                    lambda: kde.selectivity_batch(batch), repeats
                )
            )
            kde.backend.close()

        kde = KernelDensityEstimator(
            sample, bandwidth, backend=CachedBackend()
        )
        cold = _best_wall_seconds(
            lambda: kde.selectivity_batch(batch), 1
        )
        result.wall_seconds["cached"].append(cold)
        estimates = kde.selectivity_batch(batch)
        result.max_abs_deviation = max(
            result.max_abs_deviation,
            float(np.abs(estimates - expected).max()),
        )
        result.wall_seconds["cached-warm"].append(
            _best_wall_seconds(
                lambda: kde.selectivity_batch(batch), repeats
            )
        )
        result.cache_hit_rates.append(kde.backend.stats.cache_hit_rate)

        for name, factory in _SUBLINEAR_BACKENDS:
            kde = KernelDensityEstimator(sample, bandwidth, backend=factory())
            estimates = kde.selectivity_batch(batch)  # builds tables/index
            qerrors = _qerror(estimates, expected, floor=1.0 / size)
            result.qerror[name].append(float(qerrors.max()))
            result.qerror_mean[name].append(float(qerrors.mean()))
            result.wall_seconds[name].append(
                _best_wall_seconds(
                    lambda: kde.selectivity_batch(batch), repeats
                )
            )
            result.rows_per_query[name].append(
                kde.backend.stats.rows_touched_per_query
            )
        if progress:
            row = {
                name: f"{values[-1] * 1e3:.1f}ms"
                for name, values in result.wall_seconds.items()
            }
            print(
                f"  size {size}: {row} "
                f"(hit rate {result.cache_hit_rates[-1]:.2f})",
                flush=True,
            )

    # Million-row regime: sublinear backends answer the full batch; the
    # numpy baseline is timed on a small query subset (its per-query
    # cost is what the sublinear backends are beating).
    if sublinear_sizes:
        for name in ("numpy",) + tuple(n for n, _ in _SUBLINEAR_BACKENDS):
            result.sublinear_seconds_per_query[name] = []
        for name, _ in _SUBLINEAR_BACKENDS:
            result.sublinear_qerror[name] = []
            result.sublinear_qerror_mean[name] = []
            result.sublinear_build_seconds[name] = []
            result.sublinear_rows_per_query[name] = []
        # Million-row serving is about *selective* predicates — the
        # regime where the hashing backend's bucket pruning pays; the
        # wide default templates would make its near stratum the whole
        # sample.
        selective_batch = templated_workload(
            data, batch_size, rng, template_pool, width_range=(0.01, 0.05)
        )
        reference_batch = selective_batch[: max(1, reference_queries)]
        for size in sublinear_sizes:
            # Generate the sample directly at the target size instead of
            # subsampling a 2x pool: at 10^7 rows the pool would double
            # the resident footprint for nothing.
            sample = gunopulos_synthetic(
                rows=size, dimensions=dimensions, seed=seed + size
            )
            bandwidth = scott_bandwidth(sample)
            reference = KernelDensityEstimator(sample, bandwidth)
            started = time.perf_counter()
            expected = reference.selectivity_batch(reference_batch)
            result.sublinear_seconds_per_query["numpy"].append(
                (time.perf_counter() - started) / len(reference_batch)
            )
            for name, factory in _SUBLINEAR_BACKENDS:
                kde = KernelDensityEstimator(
                    sample, bandwidth, backend=factory()
                )
                estimates = kde.selectivity_batch(selective_batch)  # + build
                result.sublinear_build_seconds[name].append(
                    kde.backend.last_build_seconds
                )
                qerrors = _qerror(
                    estimates[: len(reference_batch)],
                    expected,
                    floor=1.0 / size,
                )
                result.sublinear_qerror[name].append(float(qerrors.max()))
                result.sublinear_qerror_mean[name].append(
                    float(qerrors.mean())
                )
                result.sublinear_seconds_per_query[name].append(
                    _best_wall_seconds(
                        lambda: kde.selectivity_batch(selective_batch),
                        repeats,
                    )
                    / len(selective_batch)
                )
                result.sublinear_rows_per_query[name].append(
                    kde.backend.stats.rows_touched_per_query
                )
            if progress:
                row = {
                    name: f"{values[-1] * 1e6:.1f}us/q"
                    for name, values in (
                        result.sublinear_seconds_per_query.items()
                    )
                }
                print(f"  sublinear size {size}: {row}", flush=True)

    # Where the modelled device time goes for the same workload shape at
    # the largest size (per-kernel seconds from DeviceContext.profile).
    sample = data[
        rng.choice(data.shape[0], size=max(sample_sizes), replace=False)
    ]
    context = DeviceContext.for_device("gpu")
    device_kde = DeviceKDE(sample, context, adaptive=True)
    device_kde.estimate_batch(batch)
    device_kde.feedback_batch(batch, [0.001] * len(batch))
    result.device_profile = context.profile()
    return result
