"""Serving experiment: concurrent readers against a tuning writer.

Measures what the snapshot-isolated serving layer (:mod:`repro.serve`)
buys: reader threads hammer :meth:`SnapshotServer.estimate` — lock-free
reads of the published :class:`~repro.core.state.ModelState` — while the
writer thread drives the estimate → execute → feedback cycle that
mutates bandwidths (Section 5.2) and, through publication, makes each
completed epoch visible.  Reported numbers:

* **reader throughput** — estimates served per second across all reader
  threads while the writer tunes;
* **snapshot staleness** — feedback observations the writer has absorbed
  but the served snapshot does not yet reflect, sampled at every read
  (mean and max);
* **publication count** — how many whole-epoch states were published.

With ``checkpoint=`` the run warm-starts from an existing checkpoint
file (when present and readable) and persists the final tuned state back
to it, demonstrating the crash-safe restart path end to end.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ...core.model import SelfTuningKDE
from ...core.state import CheckpointError, ModelState
from ...geometry import Box
from ...obs.metrics import MetricsRegistry, get_registry
from ...serve import SnapshotServer
from .runtime import templated_workload

__all__ = ["ServingResult", "run_serving"]


@dataclass
class ServingResult:
    """Throughput and staleness summary of one serving run."""

    readers: int
    feedbacks: int
    duration_seconds: float
    reads_total: int
    reads_per_second: float
    publishes: int
    staleness_mean: float
    staleness_max: int
    #: Final-snapshot mean absolute estimation error on the workload.
    mean_absolute_error: float
    warm_started: bool = False
    checkpoint_path: Optional[str] = None
    #: Per-reader read counts (to spot scheduler starvation).
    reads_per_reader: List[int] = field(default_factory=list)


def run_serving(
    sample_size: int = 1024,
    dimensions: int = 3,
    rows: int = 20_000,
    feedbacks: int = 200,
    readers: int = 4,
    seed: int = 20150601,
    checkpoint: Optional[str] = None,
    registry: Optional[MetricsRegistry] = None,
) -> ServingResult:
    """Run concurrent readers against one self-tuning writer.

    The writer applies ``feedbacks`` query-feedback pairs through a
    :class:`~repro.serve.SnapshotServer` while ``readers`` threads read
    continuously.  Staleness is sampled reader-side at every estimate.
    """
    if registry is None:
        ambient = get_registry()
        registry = ambient if ambient.enabled else MetricsRegistry()

    rng = np.random.default_rng(seed)
    data = rng.normal(size=(rows, dimensions))
    sample = data[rng.choice(rows, size=sample_size, replace=False)]
    batch = templated_workload(data, max(feedbacks, 32), rng, template_pool=4)
    boxes = [Box(lo, hi) for lo, hi in zip(batch.low, batch.high)]
    truths = [float(box.contains_points(data).mean()) for box in boxes]

    model = SelfTuningKDE(sample, seed=seed % (2**31), metrics=registry)
    server = SnapshotServer(model, metrics=registry)

    warm_started = False
    if checkpoint is not None and os.path.exists(checkpoint):
        try:
            server.restore(ModelState.load(checkpoint))
            warm_started = True
        except CheckpointError:
            # An unreadable checkpoint (crash mid-write without the
            # atomic rename, manual corruption) falls back to cold start.
            pass

    stop = threading.Event()
    reads_per_reader = [0] * readers
    staleness_samples: List[List[int]] = [[] for _ in range(readers)]

    def read_loop(slot: int) -> None:
        local_rng = np.random.default_rng(seed + 1000 + slot)
        count = 0
        while not stop.is_set():
            box = boxes[int(local_rng.integers(len(boxes)))]
            server.estimate(box)
            staleness_samples[slot].append(server.staleness)
            count += 1
        reads_per_reader[slot] = count

    threads = [
        threading.Thread(target=read_loop, args=(slot,), daemon=True)
        for slot in range(readers)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    try:
        for index in range(feedbacks):
            box = boxes[index % len(boxes)]
            server.feedback(box, truths[index % len(truths)])
    finally:
        stop.set()
        for thread in threads:
            thread.join()
    duration = time.perf_counter() - started

    if checkpoint is not None:
        server.snapshot().save(checkpoint)

    flat_staleness = [s for samples in staleness_samples for s in samples]
    final_estimates = server.estimate_batch(batch)
    mean_abs_error = float(
        np.mean(np.abs(final_estimates - np.asarray(truths)))
    )
    reads_total = sum(reads_per_reader)
    return ServingResult(
        readers=readers,
        feedbacks=feedbacks,
        duration_seconds=duration,
        reads_total=reads_total,
        reads_per_second=reads_total / duration if duration > 0 else 0.0,
        publishes=server.publish_count,
        staleness_mean=(
            float(np.mean(flat_staleness)) if flat_staleness else 0.0
        ),
        staleness_max=max(flat_staleness, default=0),
        mean_absolute_error=mean_abs_error,
        warm_started=warm_started,
        checkpoint_path=checkpoint,
        reads_per_reader=list(reads_per_reader),
    )
