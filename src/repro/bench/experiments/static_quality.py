"""Figures 4 & 5: estimation quality on static datasets.

For every (dataset, workload) pair, run the Section 6.2 protocol for a
number of repetitions and summarise the per-repetition mean absolute
errors — one box plot of the paper's figure per cell.  Figure 4 is the
3-dimensional sweep, Figure 5 the 8-dimensional one; both share this
runner and differ only in the projection dimensionality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...datasets import DATASET_NAMES, load_dataset
from ...workloads import WORKLOAD_KINDS
from ..metrics import ErrorSummary, summarize
from ..protocol import ALL_ESTIMATORS, TrialConfig, run_static_trial

__all__ = ["StaticQualityResult", "run_static_quality"]


@dataclass
class StaticQualityResult:
    """All repetitions of the static-quality sweep."""

    dimensions: int
    #: (dataset, workload) -> estimator -> per-repetition mean errors.
    errors: Dict[Tuple[str, str], Dict[str, List[float]]]
    #: Flat per-experiment error mappings, for the Table 1 win matrix.
    experiments: List[Dict[str, float]] = field(default_factory=list)

    def summary(
        self, dataset: str, workload: str
    ) -> Dict[str, ErrorSummary]:
        """Box-plot statistics for one figure cell."""
        cell = self.errors[(dataset, workload)]
        return {name: summarize(values) for name, values in cell.items()}

    def mean_error(self, dataset: str, workload: str, estimator: str) -> float:
        return float(np.mean(self.errors[(dataset, workload)][estimator]))


def run_static_quality(
    dimensions: int,
    datasets: Sequence[str] = DATASET_NAMES,
    workloads: Sequence[str] = WORKLOAD_KINDS,
    repetitions: int = 25,
    rows: Optional[int] = 50_000,
    train_queries: int = 100,
    test_queries: int = 300,
    estimators: Sequence[str] = ALL_ESTIMATORS,
    batch_starts: int = 8,
    scv_points: int = 1024,
    seed: int = 0,
    progress: bool = False,
) -> StaticQualityResult:
    """Run the Figure 4/5 sweep.

    Parameters mirror Section 6.2; ``rows`` caps dataset cardinality for
    scaled-down runs (``None`` uses the original sizes), and
    ``repetitions`` defaults to the paper's 25.
    """
    result = StaticQualityResult(dimensions=dimensions, errors={})
    for dataset_name in datasets:
        data = load_dataset(
            dataset_name, dimensions=dimensions, rows=rows, seed=seed
        )
        for workload in workloads:
            cell: Dict[str, List[float]] = {name: [] for name in estimators}
            config = TrialConfig(
                dataset=data,
                workload=workload,
                train_queries=train_queries,
                test_queries=test_queries,
                estimators=tuple(estimators),
                batch_starts=batch_starts,
                scv_points=scv_points,
            )
            for repetition in range(repetitions):
                trial = run_static_trial(
                    config, seed=seed * 10_000 + repetition
                )
                for name, error in trial.errors.items():
                    cell[name].append(error)
                result.experiments.append(dict(trial.errors))
                if progress:
                    print(
                        f"  {dataset_name}({dimensions}D) {workload} "
                        f"rep {repetition + 1}/{repetitions}: "
                        + " ".join(
                            f"{k}={v:.4f}" for k, v in trial.errors.items()
                        ),
                        flush=True,
                    )
            result.errors[(dataset_name, workload)] = cell
    return result
