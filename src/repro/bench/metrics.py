"""Metric aggregation for the experiment harness.

The paper reports absolute selectivity estimation errors as box plots
(Figures 4-6, 8) and pairwise win percentages (Table 1).  This module
provides the two corresponding aggregations: five-number summaries of
error samples and the win matrix over paired experiment outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

import numpy as np

__all__ = ["ErrorSummary", "summarize", "WinMatrix", "win_matrix"]


@dataclass(frozen=True)
class ErrorSummary:
    """Five-number summary (plus mean) of an error sample — one box plot."""

    count: int
    mean: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float

    def as_row(self) -> List[float]:
        return [self.mean, self.minimum, self.p25, self.median, self.p75, self.maximum]


def summarize(errors: Sequence[float]) -> ErrorSummary:
    """Summary statistics of a sequence of per-repetition errors."""
    values = np.asarray(list(errors), dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot summarize an empty error sample")
    return ErrorSummary(
        count=int(values.size),
        mean=float(values.mean()),
        minimum=float(values.min()),
        p25=float(np.percentile(values, 25)),
        median=float(np.percentile(values, 50)),
        p75=float(np.percentile(values, 75)),
        maximum=float(values.max()),
    )


@dataclass
class WinMatrix:
    """Pairwise win percentages over paired experiment outcomes (Table 1).

    ``percentages[a][b]`` is the percentage of experiments in which
    estimator ``a`` produced a strictly lower error than estimator ``b``.
    Ties count for neither side, matching the paper's "performed better"
    reading.
    """

    estimators: List[str]
    percentages: Dict[str, Dict[str, float]]
    experiments: int

    def wins(self, row: str, column: str) -> float:
        return self.percentages[row][column]


def win_matrix(results: Sequence[Mapping[str, float]]) -> WinMatrix:
    """Build the Table 1 win matrix from per-experiment error mappings.

    Parameters
    ----------
    results:
        One mapping ``estimator name -> error`` per experiment run.  All
        mappings must cover the same estimator set.
    """
    results = list(results)
    if not results:
        raise ValueError("win_matrix requires at least one experiment")
    names = sorted(results[0])
    for index, result in enumerate(results):
        if sorted(result) != names:
            raise ValueError("all experiments must cover the same estimators")
        for name in names:
            if not np.isfinite(result[name]):
                # A silent NaN would count as a loss for *both* sides of
                # every comparison, skewing the Table 1 percentages.
                raise ValueError(
                    f"non-finite error {result[name]!r} for estimator "
                    f"{name!r} in experiment {index}"
                )
    percentages: Dict[str, Dict[str, float]] = {}
    total = len(results)
    for a in names:
        percentages[a] = {}
        for b in names:
            if a == b:
                continue
            wins = sum(1 for result in results if result[a] < result[b])
            percentages[a][b] = 100.0 * wins / total
    return WinMatrix(estimators=names, percentages=percentages, experiments=total)
