"""The experimental protocol of Section 6.2.

One *static trial* follows the paper's recipe exactly:

1. draw training and test queries from the selected workload,
2. collect one random sample shared by every KDE variant, sized to the
   ``d * 4 kB`` memory budget,
3. initialise the estimators and — where applicable — tune them on the
   training queries (Batch optimises its bandwidth; Adaptive and STHoles
   consume the training queries as feedback),
4. measure the average absolute selectivity estimation error on the test
   queries (self-tuning estimators keep receiving feedback during the
   test phase, as they would in production).

Every estimator sees the exact same queries and every KDE variant the
exact same sample, so differences are attributable to the methods alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..geometry import Box
from ..baselines import (
    AdaptiveKDE,
    AVIEstimator,
    BatchKDE,
    HeuristicKDE,
    PluginKDE,
    SCVKDE,
    STHolesHistogram,
    SampleCountEstimator,
    SelectivityEstimator,
    kde_sample_size,
    memory_budget_bytes,
    sthole_bucket_budget,
)
from ..core.gradient import QueryFeedback
from ..db import Table
from ..workloads import generate_workload

__all__ = [
    "TrialConfig",
    "TrialResult",
    "run_static_trial",
    "build_estimators",
    "ALL_ESTIMATORS",
    "EXTENDED_ESTIMATORS",
]

#: The five estimators of the paper's evaluation (Section 6.1.1).
ALL_ESTIMATORS = ("STHoles", "Heuristic", "SCV", "Batch", "Adaptive")

#: Everything the harness can run, including the extension baselines.
EXTENDED_ESTIMATORS = ALL_ESTIMATORS + ("Plugin", "AVI", "Sampling")


@dataclass(frozen=True)
class TrialConfig:
    """Parameters of one static-quality trial (defaults: Section 6.2)."""

    dataset: np.ndarray
    workload: str
    train_queries: int = 100
    test_queries: int = 300
    #: Memory budget per estimator; ``d * 4 kB`` when omitted.
    budget_bytes: Optional[int] = None
    #: Which estimators to run (a subset of :data:`ALL_ESTIMATORS`).
    estimators: Sequence[str] = ALL_ESTIMATORS
    #: Subsample size used by the selectivity-target bisection.
    search_points: int = 20_000
    target: float = 0.01
    #: Number of restarts for the Batch global phase.
    batch_starts: int = 8
    #: Cap on points used by the SCV criterion.  The default covers the
    #: whole d*4kB sample (1024 points), so the selector sees exactly the
    #: model it tunes; lower it for speed on bigger budgets.
    scv_points: int = 1024


@dataclass
class TrialResult:
    """Mean absolute test error per estimator for one trial."""

    errors: Dict[str, float]
    #: Per-query absolute errors (estimator -> (test_queries,) array).
    per_query: Dict[str, np.ndarray] = field(default_factory=dict)


def _make_queries(
    config: TrialConfig, rng: np.random.Generator
) -> Tuple[List[Box], List[Box], Box]:
    data = config.dataset
    bounds = Box.bounding(data, margin=1e-9)
    search = data
    if data.shape[0] > config.search_points:
        indices = rng.choice(
            data.shape[0], size=config.search_points, replace=False
        )
        search = data[indices]
    queries = generate_workload(
        data,
        config.workload,
        config.train_queries + config.test_queries,
        rng,
        target=config.target,
        bounds=bounds,
        search_data=search,
    )
    return (
        queries[: config.train_queries],
        queries[config.train_queries :],
        bounds,
    )


def build_estimators(
    config: TrialConfig,
    table: Table,
    sample: np.ndarray,
    train_feedback: Sequence[QueryFeedback],
    bounds: Box,
    seed: int,
) -> Dict[str, SelectivityEstimator]:
    """Construct and train the requested estimators (Section 6.1.1)."""
    dimensions = sample.shape[1]
    budget = config.budget_bytes or memory_budget_bytes(dimensions)
    estimators: Dict[str, SelectivityEstimator] = {}

    for name in config.estimators:
        if name == "Heuristic":
            estimators[name] = HeuristicKDE(sample)
        elif name == "SCV":
            estimators[name] = SCVKDE(
                sample, max_points=config.scv_points, seed=seed
            )
        elif name == "Batch":
            estimators[name] = BatchKDE(
                sample,
                train_feedback,
                starts=config.batch_starts,
                seed=seed,
            )
        elif name == "Adaptive":
            adaptive = AdaptiveKDE(
                sample,
                row_source=table,
                population_size=len(table),
                seed=seed,
            )
            # Training queries arrive as ordinary feedback (Section 4).
            for feedback in train_feedback:
                adaptive.estimate(feedback.query)
                adaptive.feedback(feedback.query, feedback.selectivity)
            estimators[name] = adaptive
        elif name == "STHoles":
            histogram = STHolesHistogram(
                bounds,
                row_count=len(table),
                max_buckets=sthole_bucket_budget(dimensions, budget),
                region_count=table.count,
            )
            for feedback in train_feedback:
                histogram.estimate(feedback.query)
                histogram.feedback(feedback.query, feedback.selectivity)
            estimators[name] = histogram
        elif name == "Plugin":
            estimators[name] = PluginKDE(sample, seed=seed)
        elif name == "AVI":
            # One full-table pass per attribute, like a real ANALYZE;
            # bucket count chosen to respect the shared memory budget
            # (two floats per bucket per dimension).
            buckets = max(4, budget // (dimensions * 2 * 4))
            estimators[name] = AVIEstimator(
                table.rows(), buckets_per_dimension=buckets
            )
        elif name == "Sampling":
            estimators[name] = SampleCountEstimator(sample)
        else:
            raise ValueError(f"unknown estimator {name!r}")
    return estimators


def run_static_trial(config: TrialConfig, seed: int) -> TrialResult:
    """Run one full repetition of the static-quality protocol."""
    rng = np.random.default_rng(seed)
    data = np.asarray(config.dataset, dtype=np.float64)
    dimensions = data.shape[1]
    budget = config.budget_bytes or memory_budget_bytes(dimensions)

    train, test, bounds = _make_queries(config, rng)
    table = Table(dimensions, initial_rows=data)
    sample = table.analyze(kde_sample_size(dimensions, budget), rng)
    train_feedback = [
        QueryFeedback(q, table.selectivity(q)) for q in train
    ]
    estimators = build_estimators(
        config, table, sample, train_feedback, bounds, seed
    )

    truths = np.array([table.selectivity(q) for q in test])
    per_query: Dict[str, np.ndarray] = {}
    errors: Dict[str, float] = {}
    for name, estimator in estimators.items():
        estimates = np.empty(len(test))
        for i, query in enumerate(test):
            estimates[i] = estimator.estimate(query)
            # Self-tuning estimators keep learning from the stream.
            estimator.feedback(query, float(truths[i]))
        absolute = np.abs(estimates - truths)
        per_query[name] = absolute
        errors[name] = float(absolute.mean())
    return TrialResult(errors=errors, per_query=per_query)
