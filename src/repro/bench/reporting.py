"""Plain-text rendering of experiment results.

Each function turns one experiment's result object into the same
rows/series the paper's table or figure reports, printed as aligned text
tables — the harness's equivalent of the published plots.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .experiments.chaos import ChaosResult
from .experiments.dynamic_quality import DynamicQualityResult
from .experiments.forecast import ForecastResult
from .experiments.frontend_load import FrontendLoadResult
from .experiments.model_size import ModelSizeResult
from .experiments.observability import ObservabilityResult
from .experiments.plans import PlansResult
from .experiments.replay import ReplayResult
from .experiments.runtime import RuntimeResult
from .experiments.serving import ServingResult
from .experiments.static_quality import StaticQualityResult
from .metrics import WinMatrix

__all__ = [
    "format_table",
    "render_static_quality",
    "render_win_matrix",
    "render_model_size",
    "render_observability",
    "render_plans",
    "render_runtime",
    "render_chaos",
    "render_dynamic",
    "render_forecast",
    "render_frontend_load",
    "render_replay",
    "render_serving",
]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    """Align a list of string rows under headers."""
    columns = [list(column) for column in zip(headers, *rows)]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header_line = "  ".join(
        header.ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def render_static_quality(result: StaticQualityResult) -> str:
    """Figure 4/5 as a text table: one row per (dataset, workload)."""
    estimators = sorted(
        next(iter(result.errors.values())).keys()
    ) if result.errors else []
    headers = ["dataset", "workload"] + [
        f"{name} (mean/med)" for name in estimators
    ]
    rows: List[List[str]] = []
    for (dataset, workload), cell in sorted(result.errors.items()):
        row = [f"{dataset}({result.dimensions}D)", workload]
        for name in estimators:
            values = np.asarray(cell[name])
            row.append(f"{values.mean():.4f}/{np.median(values):.4f}")
        rows.append(row)
    return format_table(headers, rows)


def render_win_matrix(matrix: WinMatrix) -> str:
    """Table 1: row estimator's win percentage against each column."""
    headers = ["estimator"] + matrix.estimators
    rows = []
    for row_name in matrix.estimators:
        row = [row_name]
        for column_name in matrix.estimators:
            if row_name == column_name:
                row.append("-")
            else:
                row.append(f"{matrix.wins(row_name, column_name):.1f}")
        rows.append(row)
    table = format_table(headers, rows)
    return (
        f"{table}\n({matrix.experiments} experiments; cells: % of runs the "
        "row estimator beat the column estimator)"
    )


def render_replay(result: ReplayResult) -> str:
    """Workload replay head-to-head: one row per estimator family."""
    headers = [
        "estimator",
        "mode",
        "q-err p50",
        "p90",
        "p99",
        "tail p50",
        "tail p90",
        "us/query",
        "bytes",
        "budget",
    ]
    rows: List[List[str]] = []
    for entry in result.estimators:
        rows.append(
            [
                entry.name,
                "adaptive" if entry.adaptive else "static",
                f"{entry.qerror['p50']:.2f}",
                f"{entry.qerror['p90']:.2f}",
                f"{entry.qerror['p99']:.2f}",
                f"{entry.tail_qerror['p50']:.2f}",
                f"{entry.tail_qerror['p90']:.2f}",
                f"{entry.mean_latency_seconds * 1e6:.0f}",
                str(entry.memory_bytes),
                "ok" if entry.within_budget else "OVER",
            ]
        )
    table = format_table(headers, rows)
    return (
        f"{table}\n"
        f"({result.queries} logged queries over {result.rows} rows "
        f"({result.dimensions}D), drift at query {result.drift_index}; "
        f"tail = post-drift window; budget {result.budget_bytes} bytes)"
    )


def render_model_size(result: ModelSizeResult) -> str:
    """Figure 6: error vs sample size, one column per estimator."""
    estimators = sorted(result.errors)
    headers = ["sample size"] + estimators
    rows = []
    for size in result.sizes:
        row = [str(size)]
        for name in estimators:
            row.append(f"{np.mean(result.errors[name][size]):.4f}")
        rows.append(row)
    return format_table(headers, rows)


def render_runtime(result: RuntimeResult) -> str:
    """Figure 7: modelled per-query overhead (ms) vs model size."""
    series = list(result.seconds)
    headers = ["model size"] + [f"{name} [ms]" for name in series]
    rows = []
    for index, size in enumerate(result.sizes):
        row = [str(size)]
        for name in series:
            row.append(f"{result.seconds[name][index] * 1e3:.3f}")
        rows.append(row)
    return format_table(headers, rows)


def render_dynamic(result: DynamicQualityResult, bins: int = 20) -> str:
    """Figure 8: windowed mean error progression per estimator."""
    names = sorted(result.traces)
    total = result.traces[names[0]].shape[1]
    edges = np.linspace(0, total, bins + 1).astype(int)
    headers = ["queries", "tuples"] + names
    rows = []
    for i in range(bins):
        lo, hi = edges[i], edges[i + 1]
        if hi <= lo:
            continue
        row = [
            f"{lo}-{hi}",
            str(int(result.cardinality[lo:hi].mean())),
        ]
        for name in names:
            window = result.traces[name][:, lo:hi]
            row.append(f"{window.mean():.4f}")
        rows.append(row)
    return format_table(headers, rows)


def render_observability(result: ObservabilityResult) -> str:
    """Summary of what the metrics layer captured in one serving loop."""
    backend_rows = []
    for backend in result.backends:
        count, seconds = result.span_seconds.get(backend, (0, 0.0))
        backend_rows.append(
            [backend, str(count), f"{seconds * 1e3:.2f}"]
        )
    sections = [
        format_table(
            ["backend", "batch spans", "span total [ms]"], backend_rows
        )
    ]
    total_lookups = result.cache_hits + result.cache_misses
    hit_rate = result.cache_hits / total_lookups if total_lookups else 0.0
    sections.append(
        f"cache: {result.cache_hits} hits / {result.cache_misses} misses "
        f"(hit rate {hit_rate:.2f})"
    )
    sections.append(
        f"traces: {result.trace_count} recorded "
        f"({result.feedback_traces} completed feedback cycles) "
        f"for {result.queries} workload queries"
    )
    if result.device_kernels:
        kernel_rows = [
            [kernel, str(launches), f"{seconds * 1e6:.1f}"]
            for kernel, (launches, seconds) in sorted(
                result.device_kernels.items()
            )
        ]
        sections.append(
            format_table(
                ["device kernel", "launches", "modelled [us]"], kernel_rows
            )
        )
    return "\n".join(sections)


def render_serving(result: ServingResult) -> str:
    """Reader throughput + snapshot staleness of one serving run."""
    per_reader = ", ".join(str(count) for count in result.reads_per_reader)
    sections = [
        f"readers: {result.readers} threads, "
        f"{result.reads_total} reads in {result.duration_seconds:.2f}s "
        f"({result.reads_per_second:,.0f} reads/s; per reader: {per_reader})",
        f"writer: {result.feedbacks} feedback cycles, "
        f"{result.publishes} snapshot publications "
        f"(one per completed epoch)",
        f"staleness at read: mean {result.staleness_mean:.2f}, "
        f"max {result.staleness_max} feedbacks behind the writer",
        f"final-snapshot mean abs error: {result.mean_absolute_error:.4f}",
    ]
    if result.checkpoint_path is not None:
        origin = "warm-started from" if result.warm_started else "cold start;"
        sections.append(
            f"checkpoint: {origin} {result.checkpoint_path} "
            "(final state saved back)"
        )
    return "\n".join(sections)


def render_frontend_load(result: FrontendLoadResult) -> str:
    """Clients × arrival-rate sweep of the micro-batching front end."""
    headers = [
        "clients",
        "rate/s",
        "attempts",
        "done",
        "shed%",
        "p50 ms",
        "p99 ms",
        "coalesce",
        "req/s",
    ]
    rows = []
    for cell in result.cells:
        rows.append(
            [
                str(cell.clients),
                "max" if cell.rate is None else f"{cell.rate:g}",
                str(cell.attempts),
                str(cell.completed),
                f"{100 * cell.shed_rate:.1f}",
                f"{cell.p50_ms:.2f}",
                f"{cell.p99_ms:.2f}",
                f"{cell.coalescing_factor:.2f}",
                f"{cell.throughput:,.0f}",
            ]
        )
    header = (
        f"front end: sample={result.sample_size}, "
        f"queue depth={result.max_queue_depth}, "
        f"max batch={result.max_batch_size} "
        "(closed-loop clients; rate is per-client think-rate)"
    )
    return header + "\n" + format_table(headers, rows)


def render_forecast(result: ForecastResult) -> str:
    """Reactive vs proactive serving, plus the autoscale trajectory."""
    headers = [
        "mode",
        "attempts",
        "done",
        "shed%",
        "p50 ms",
        "p99 ms",
        "pubs",
        "actions",
    ]
    rows = []
    for mode in (result.reactive, result.proactive):
        actions = (
            ", ".join(
                f"{kind}x{count}"
                for kind, count in sorted(mode.actions.items())
            )
            or "-"
        )
        rows.append(
            [
                mode.mode,
                str(mode.attempts),
                str(mode.completed),
                f"{100 * mode.shed_rate:.1f}",
                f"{mode.p50_ms:.2f}",
                f"{mode.p99_ms:.2f}",
                str(mode.publications),
                actions,
            ]
        )
    header = (
        f"forecast: sample={result.sample_size}, phases={result.phases}, "
        f"clients={result.clients} (identical schedules; proactive adds "
        "the controller stepping between bursts)"
    )
    lines = [header, format_table(headers, rows)]
    lines.append(
        f"p99 improvement: {100 * result.p99_improvement:.0f}% "
        f"(proactive vs reactive)"
    )
    if result.autoscale:
        scale_headers = ["step", "offered/s", "measured/s", "predicted/s", "shards"]
        scale_rows = [
            [
                str(step.step),
                f"{step.offered_rate:.0f}",
                f"{step.measured_rate:.1f}",
                f"{step.predicted_rate:.1f}",
                str(step.shards),
            ]
            for step in result.autoscale
        ]
        lines.append(
            f"[autoscale ramp: {result.scale_events} scale events, "
            "clock-injected]"
        )
        lines.append(format_table(scale_headers, scale_rows))
    return "\n".join(lines)


def render_chaos(result: ChaosResult) -> str:
    """Fault counts, recovery work and deviation per storm seed."""
    headers = [
        "seed",
        "faults",
        "retries",
        "resurrect",
        "republish",
        "timeouts",
        "breaker",
        "max |dev|",
        "seconds",
    ]
    rows = []
    for index, seed in enumerate(result.seeds):
        fired = sum(result.injected[index].values())
        rows.append(
            [
                str(seed),
                str(fired),
                str(result.retries[index]),
                str(result.resurrections[index]),
                str(result.republications[index]),
                str(result.timeouts[index]),
                str(result.breaker_transitions[index]),
                f"{result.max_abs_deviation[index]:.2e}",
                f"{result.wall_seconds[index]:.1f}",
            ]
        )
    verdict = (
        "PASS: all batches within the 1e-12 budget"
        if result.worst_deviation <= 1e-12
        else f"FAIL: worst deviation {result.worst_deviation:.2e}"
    )
    return (
        format_table(headers, rows)
        + f"\n{result.total_injected} faults injected across "
        f"{len(result.seeds)} storms x {result.batches_per_seed} batches; "
        + verdict
    )


def render_plans(result: PlansResult) -> str:
    """Optimizer-in-the-loop: chosen orders and true plan quality."""
    headers = [
        "mode",
        "chosen order",
        "ratio",
        "max node Q-err",
        "pricing rungs",
    ]
    rows = []
    for mode in result.modes:
        rungs = ", ".join(
            f"{rung}:{count}"
            for rung, count in sorted(mode.rung_counts.items())
        )
        rows.append(
            [
                mode.mode,
                " > ".join(mode.order),
                f"{mode.quality_ratio:.2f}",
                f"{mode.max_qerror:.2f}",
                rungs,
            ]
        )
    lines = [format_table(headers, rows)]
    lines.append(
        "true optimum: "
        + " > ".join(result.optimal_order)
        + f" (C_out = {result.optimal_cost:,.0f}); ratio = true cost of "
        "chosen plan / true cost of optimum"
    )
    lines.append(
        ("PASS" if result.dp_matches_exhaustive else "FAIL")
        + ": DP plan == exhaustive plan on the 4-table star; "
        f"{result.dp_tables}-table chain enumerated in "
        f"{result.dp_seconds:.2f}s (factorial sweep would need "
        f"{result.dp_tables}! orders)"
    )
    return "\n".join(lines)
