"""Core library: the paper's self-tuning KDE selectivity estimator.

Public surface:

* :class:`~repro.core.estimator.KernelDensityEstimator` — Eq. (1)/(13).
* :func:`~repro.core.bandwidth.scott_bandwidth` — Eq. (3).
* :class:`~repro.core.optimize.BandwidthOptimizer` — problem (5).
* :class:`~repro.core.adaptive.RMSpropTuner` — Listing 1.
* :class:`~repro.core.karma.KarmaTracker` — Eq. (6)-(8) & Appendix E.
* :class:`~repro.core.model.SelfTuningKDE` — the full feedback loop.
* :class:`~repro.core.state.ModelState` — immutable, versioned model
  state: the snapshot/restore + checkpoint substrate.
"""

from .adaptive import RMSpropTuner
from .backends import (
    BackendStats,
    CachedBackend,
    ExecutionBackend,
    GridBackend,
    HashingBackend,
    NumpyBackend,
    ShardedBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from .bandwidth import scott_bandwidth, silverman_bandwidth
from .chunking import get_chunk_budget, set_chunk_budget
from .categorical import OrderedDiscreteKernel, encode_categories
from .config import AdaptiveConfig, KarmaConfig, SelfTuningConfig
from .estimator import KernelDensityEstimator
from .join import (
    band_join_selectivity,
    equi_join_density,
    independence_band_join_selectivity,
)
from .variable import VariableKernelDensityEstimator, abramson_factors
from .gradient import (
    QueryFeedback,
    loss_and_gradient,
    to_log_space_gradient,
    workload_loss_and_gradient,
)
from .karma import KarmaTracker, certified_inside_mask, leave_one_out_estimates
from .kernels import EpanechnikovKernel, GaussianKernel, Kernel, get_kernel
from .losses import (
    AbsoluteLoss,
    Loss,
    RelativeLoss,
    SquaredLoss,
    SquaredQLoss,
    SquaredRelativeLoss,
    get_loss,
)
from .model import ArrayRowSource, RowSource, SelfTuningKDE
from .optimize import BandwidthOptimizer, OptimizationResult, optimize_bandwidth
from .reservoir import ReservoirSampler, SkipReservoirSampler
from .state import FORMAT_VERSION, CheckpointError, ModelState

__all__ = [
    "AbsoluteLoss",
    "AdaptiveConfig",
    "ArrayRowSource",
    "BackendStats",
    "BandwidthOptimizer",
    "CachedBackend",
    "CheckpointError",
    "EpanechnikovKernel",
    "FORMAT_VERSION",
    "ExecutionBackend",
    "GridBackend",
    "HashingBackend",
    "NumpyBackend",
    "ShardedBackend",
    "GaussianKernel",
    "KarmaConfig",
    "KarmaTracker",
    "Kernel",
    "KernelDensityEstimator",
    "Loss",
    "ModelState",
    "OptimizationResult",
    "OrderedDiscreteKernel",
    "QueryFeedback",
    "RMSpropTuner",
    "RelativeLoss",
    "ReservoirSampler",
    "RowSource",
    "SelfTuningConfig",
    "SelfTuningKDE",
    "SkipReservoirSampler",
    "SquaredLoss",
    "SquaredQLoss",
    "SquaredRelativeLoss",
    "VariableKernelDensityEstimator",
    "abramson_factors",
    "available_backends",
    "band_join_selectivity",
    "certified_inside_mask",
    "encode_categories",
    "equi_join_density",
    "get_backend",
    "get_chunk_budget",
    "get_kernel",
    "independence_band_join_selectivity",
    "get_loss",
    "register_backend",
    "resolve_backend",
    "set_chunk_budget",
    "leave_one_out_estimates",
    "loss_and_gradient",
    "optimize_bandwidth",
    "scott_bandwidth",
    "silverman_bandwidth",
    "to_log_space_gradient",
    "workload_loss_and_gradient",
]
