"""Online bandwidth adaptation via mini-batch RMSprop (Section 4.1).

This module implements Listing 1 of the paper: after every query the
estimator receives feedback, computes the loss gradient with respect to
the bandwidth, and accumulates it into a mini-batch.  Once the batch is
full, the averaged gradient drives an RMSprop update with Rprop-style
per-dimension learning-rate adaptation:

* the running average ``r`` of squared gradient magnitudes rescales each
  step (RMSprop proper), and
* the per-dimension learning rate grows by ``lambda_inc`` while successive
  averaged gradients agree in sign and shrinks by ``lambda_dec`` when they
  flip (the Rprop heritage), clamped to ``[lambda_min, lambda_max]``.

Positivity of the bandwidth (the constraint of problem (5)) is enforced by
restricting any update *towards zero* to at most half the current value.
In logarithmic-update mode (Appendix D) the safeguard is dropped — the
exponential map keeps the bandwidth positive by construction — and the
gradient is pre-scaled by ``h`` (Eq. 18) by the caller.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .config import AdaptiveConfig

__all__ = ["RMSpropTuner"]


class RMSpropTuner:
    """Mini-batch RMSprop learner for per-dimension bandwidths.

    The tuner is deliberately decoupled from the estimator: callers feed it
    per-query gradients (already in log space when ``config.log_updates``)
    together with the current bandwidth, and receive a new bandwidth back
    whenever a mini-batch completes.

    Parameters
    ----------
    dimensions:
        Number of bandwidth parameters.
    config:
        Learner constants; defaults are the paper's (Listing 1 discussion).
    """

    def __init__(
        self, dimensions: int, config: Optional[AdaptiveConfig] = None
    ) -> None:
        if dimensions < 1:
            raise ValueError("dimensions must be at least 1")
        self.config = config or AdaptiveConfig()
        self.dimensions = dimensions
        self._accumulated = np.zeros(dimensions, dtype=np.float64)
        self._batch_count = 0
        self._running_magnitude = np.zeros(dimensions, dtype=np.float64)
        self._previous_gradient = np.zeros(dimensions, dtype=np.float64)
        self._learning_rate = np.full(
            dimensions, self.config.initial_learning_rate, dtype=np.float64
        )
        self._updates_applied = 0
        self._observations = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def learning_rates(self) -> np.ndarray:
        """Current per-dimension learning rates (copy)."""
        return self._learning_rate.copy()

    @property
    def updates_applied(self) -> int:
        """Number of completed mini-batch updates."""
        return self._updates_applied

    @property
    def observations(self) -> int:
        """Number of gradients observed."""
        return self._observations

    @property
    def pending(self) -> int:
        """Gradients accumulated in the current (incomplete) mini-batch."""
        return self._batch_count

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    def observe(
        self, gradient: np.ndarray, bandwidth: np.ndarray
    ) -> Optional[np.ndarray]:
        """Feed one query's gradient; returns a new bandwidth on batch end.

        Parameters
        ----------
        gradient:
            Loss gradient for the current query.  In logarithmic-update
            mode this must already be the log-space gradient (Eq. 18).
        bandwidth:
            The estimator's current bandwidth.

        Returns
        -------
        The updated bandwidth vector when this observation completed a
        mini-batch, else ``None``.
        """
        gradient = np.asarray(gradient, dtype=np.float64)
        bandwidth = np.asarray(bandwidth, dtype=np.float64)
        if gradient.shape != (self.dimensions,):
            raise ValueError(
                f"gradient must have shape ({self.dimensions},), got {gradient.shape}"
            )
        if not np.all(np.isfinite(gradient)):
            raise ValueError("gradient contains non-finite entries")
        self._observations += 1
        self._accumulated += gradient
        self._batch_count += 1
        if self._batch_count < self.config.batch_size:
            return None
        return self._apply_update(bandwidth)

    @property
    def batch_room(self) -> int:
        """Observations the current mini-batch still accepts before an
        update fires — the exact segment length a batched caller may feed
        while staying equivalent to query-at-a-time :meth:`observe`."""
        return self.config.batch_size - self._batch_count

    def observe_batch(
        self, gradients: np.ndarray, bandwidth: np.ndarray
    ) -> Optional[np.ndarray]:
        """Feed a whole batch of per-query gradients at once.

        Equivalent to calling :meth:`observe` once per row: gradients are
        accumulated in row order and an update is applied at every
        mini-batch boundary crossed, each update consuming the bandwidth
        produced by the previous one.

        Callers in logarithmic-update mode should feed at most
        :attr:`batch_room` rows per call (all rows of one call share the
        gradients' pre-scaling bandwidth; after an update fires,
        subsequent gradients must be rebuilt against the new bandwidth to
        match the per-query semantics exactly).

        Returns the bandwidth after the *last* completed mini-batch, or
        ``None`` when no boundary was crossed.
        """
        gradients = np.atleast_2d(np.asarray(gradients, dtype=np.float64))
        bandwidth = np.asarray(bandwidth, dtype=np.float64)
        if gradients.ndim != 2 or gradients.shape[1] != self.dimensions:
            raise ValueError(
                f"gradients must have shape (m, {self.dimensions}), "
                f"got {gradients.shape}"
            )
        if not np.all(np.isfinite(gradients)):
            raise ValueError("gradients contain non-finite entries")
        current = bandwidth
        updated: Optional[np.ndarray] = None
        consumed = 0
        while consumed < gradients.shape[0]:
            take = min(self.batch_room, gradients.shape[0] - consumed)
            block = gradients[consumed : consumed + take]
            self._accumulated += block.sum(axis=0)
            self._batch_count += take
            self._observations += take
            consumed += take
            if self._batch_count >= self.config.batch_size:
                current = self._apply_update(current)
                updated = current
        return updated

    def _apply_update(self, bandwidth: np.ndarray) -> np.ndarray:
        cfg = self.config
        averaged = self._accumulated / self._batch_count
        self._accumulated[:] = 0.0
        self._batch_count = 0

        # Running average of squared gradient magnitudes (RMSprop), with
        # the standard warm-up bias correction: without it the first
        # update normalises by sqrt((1 - alpha) g^2), inflating the step
        # by 1/sqrt(1 - alpha) and kicking the bandwidth far off target.
        self._running_magnitude = (
            cfg.smoothing * self._running_magnitude
            + (1.0 - cfg.smoothing) * averaged * averaged
        )
        correction = 1.0 - cfg.smoothing ** (self._updates_applied + 1)
        corrected_magnitude = self._running_magnitude / correction

        # Rprop-style learning-rate adaptation on sign agreement.
        agreement = averaged * self._previous_gradient
        increase = agreement > 0.0
        decrease = agreement < 0.0
        self._learning_rate[increase] *= cfg.learning_rate_increase
        self._learning_rate[decrease] *= cfg.learning_rate_decrease
        np.clip(
            self._learning_rate,
            cfg.learning_rate_min,
            cfg.learning_rate_max,
            out=self._learning_rate,
        )
        self._previous_gradient = averaged

        step = self._learning_rate * averaged / (
            np.sqrt(corrected_magnitude) + cfg.epsilon
        )
        self._updates_applied += 1

        if cfg.log_updates:
            # Exponential-map update keeps bandwidths positive; the trust
            # region bounds each update to a factor exp(max_log_step).
            step = np.clip(step, -cfg.max_log_step, cfg.max_log_step)
            log_h = np.log(bandwidth) - step
            return np.exp(np.clip(log_h, -80.0, 80.0))

        # Linear update with the positivity safeguard: never move more
        # than half-way towards zero in a single step.
        updated = bandwidth - step
        return np.maximum(updated, bandwidth / 2.0)

    def reset_batch(self) -> None:
        """Drop the partially accumulated mini-batch (e.g. after a rebuild)."""
        self._accumulated[:] = 0.0
        self._batch_count = 0

    # ------------------------------------------------------------------
    # State snapshot / restore
    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """Complete learner state as a dict of arrays and counters.

        Everything the update rule depends on is included — mini-batch
        accumulator, RMSprop magnitude average, Rprop sign memory and
        learning rates — so a restored tuner replays bit-identically.
        """
        return {
            "accumulated": self._accumulated.copy(),
            "batch_count": int(self._batch_count),
            "running_magnitude": self._running_magnitude.copy(),
            "previous_gradient": self._previous_gradient.copy(),
            "learning_rate": self._learning_rate.copy(),
            "updates_applied": int(self._updates_applied),
            "observations": int(self._observations),
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`get_state`."""
        expected = (self.dimensions,)
        for key in (
            "accumulated",
            "running_magnitude",
            "previous_gradient",
            "learning_rate",
        ):
            value = np.asarray(state[key], dtype=np.float64)
            if value.shape != expected:
                raise ValueError(
                    f"tuner state {key!r} must have shape {expected}, "
                    f"got {value.shape}"
                )
        self._accumulated = np.array(
            state["accumulated"], dtype=np.float64, copy=True
        )
        self._batch_count = int(state["batch_count"])
        self._running_magnitude = np.array(
            state["running_magnitude"], dtype=np.float64, copy=True
        )
        self._previous_gradient = np.array(
            state["previous_gradient"], dtype=np.float64, copy=True
        )
        self._learning_rate = np.array(
            state["learning_rate"], dtype=np.float64, copy=True
        )
        self._updates_applied = int(state["updates_applied"])
        self._observations = int(state["observations"])
