"""Pluggable execution backends for the KDE batch hot path.

Three strategies ship with the library (motivated by the GPU mapping of
Sections 5.1-5.4 and the CPU data-parallel formulation of Andrzejewski
et al.):

``numpy`` (default)
    The reference single-thread chunked evaluation — bitwise identical
    to the seed per-query loop.
``sharded``
    Row shards of the sample evaluated on a ``concurrent.futures``
    process pool over ``multiprocessing.shared_memory`` views, reduced
    host-side like the paper's two-phase estimate+sum kernel.
``cached``
    A per-dimension CDF-term LRU exploiting the Eq. (13) product form:
    column masses are memoised on ``(dimension, lo, hi, bandwidth_epoch,
    sample_epoch)`` and reused across queries sharing bounds.

Two *sublinear* strategies trade bounded error for per-query cost that
no longer scales with the sample (ROADMAP item 2):

``grid``
    Snap the sample to a per-dimension grid at build time and answer
    selectivities from precomputed kernel-CDF tables — O(dims) per
    query, no sample rows touched (binned route of Andrzejewski et
    al.).
``hashing``
    Bucket the sample by coarse spatial hash; evaluate near-the-box
    buckets exactly and certify the far remainder by Hoeffding-sized
    importance sampling under an ``epsilon``/``delta`` relative-error
    knob (after Charikar & Siminelakis).

Select one with the ``backend=`` knob on
:class:`~repro.core.estimator.KernelDensityEstimator`,
:class:`~repro.core.model.SelfTuningKDE`,
:class:`~repro.device.kde_device.DeviceKDE`, or
:meth:`~repro.db.feedback.FeedbackLoop.run_workload_batched` — by name,
or as a configured instance (e.g. ``ShardedBackend(shards=4)``).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

from .base import BackendStats, ExecutionBackend
from .cache import CachedBackend, CDFTermCache
from .grid import GridBackend
from .hashing import HashingBackend
from .numpy_backend import NumpyBackend
from .sharded import (
    ShardedBackend,
    ShardedSampleExecutor,
    ShardExecutionError,
    default_shard_count,
)

__all__ = [
    "BackendStats",
    "CDFTermCache",
    "CachedBackend",
    "ExecutionBackend",
    "GridBackend",
    "HashingBackend",
    "NumpyBackend",
    "ShardExecutionError",
    "ShardedBackend",
    "ShardedSampleExecutor",
    "available_backends",
    "default_shard_count",
    "get_backend",
    "register_backend",
    "resolve_backend",
]

#: Default backend name used when the knob is left unset.
DEFAULT_BACKEND = "numpy"

_REGISTRY: Dict[str, Callable[[], ExecutionBackend]] = {
    "numpy": NumpyBackend,
    "sharded": ShardedBackend,
    "cached": CachedBackend,
    "grid": GridBackend,
    "hashing": HashingBackend,
}


def register_backend(
    name: str, factory: Callable[[], ExecutionBackend]
) -> None:
    """Register a backend factory under ``name`` for lookup by string."""
    if not name:
        raise ValueError("backend name must be non-empty")
    _REGISTRY[name] = factory


def available_backends() -> tuple:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str) -> ExecutionBackend:
    """Instantiate a fresh backend by registry name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(available_backends())
        raise ValueError(
            f"unknown execution backend {name!r}; known backends: {known}"
        ) from None
    return factory()


def resolve_backend(
    backend: Union[str, ExecutionBackend, None],
) -> ExecutionBackend:
    """Coerce the user-facing ``backend=`` knob into an instance.

    ``None`` yields a fresh default (``numpy``) backend; strings go
    through the registry; instances pass through unchanged (they must
    not already be bound to a different estimator).
    """
    if backend is None:
        return get_backend(DEFAULT_BACKEND)
    if isinstance(backend, ExecutionBackend):
        return backend
    if isinstance(backend, str):
        return get_backend(backend)
    raise TypeError(
        "backend must be None, a registry name, or an ExecutionBackend "
        f"instance; got {type(backend).__name__}"
    )
