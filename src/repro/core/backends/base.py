"""The execution-backend contract for the KDE batch hot path.

The paper's estimator is embarrassingly data-parallel over the sample:
one (point, dimension) term per virtual GPU thread, reduced in a second
phase (Sections 5.1-5.4).  An :class:`ExecutionBackend` abstracts *how*
that evaluation is scheduled on the host — inline numpy, sharded across
a process pool over shared memory, or served from a per-dimension CDF
term cache — while the estimator keeps owning *what* is computed (the
Eq. (13) factorisation and the Eq. (17) gradient).

A backend binds to exactly one :class:`~repro.core.estimator.
KernelDensityEstimator` and receives the raw ``(q, d)`` bound matrices
of a validated :class:`~repro.geometry.QueryBatch`.  Every backend must
be numerically equivalent to the reference ``numpy`` backend to 1e-12
(the reduction tree may differ; the per-element math may not).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

__all__ = ["BackendStats", "ExecutionBackend"]


@dataclass
class BackendStats:
    """Counters a backend accumulates across evaluations."""

    blocks_evaluated: int = 0
    queries_evaluated: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    #: Sample rows whose kernel terms were actually evaluated on the
    #: selectivity path.  The reference backends touch ``s`` rows per
    #: query; the sublinear backends (``grid``, ``hashing``) touch fewer
    #: — this counter is how that sublinearity is *observed* rather than
    #: asserted.  Backends that never report it leave it at zero.
    rows_touched: int = 0
    builds: int = 0
    invalidations: Dict[str, int] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of column lookups served from the cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def rows_touched_per_query(self) -> float:
        """Mean kernel-evaluated rows per selectivity query."""
        if not self.queries_evaluated:
            return 0.0
        return self.rows_touched / self.queries_evaluated

    def as_dict(self) -> Dict[str, object]:
        return {
            "blocks_evaluated": self.blocks_evaluated,
            "queries_evaluated": self.queries_evaluated,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "cache_hit_rate": self.cache_hit_rate,
            "rows_touched": self.rows_touched,
            "rows_touched_per_query": self.rows_touched_per_query,
            "builds": self.builds,
            "invalidations": dict(self.invalidations),
        }


class ExecutionBackend:
    """Base class for pluggable batch-evaluation strategies.

    Subclasses implement the three block primitives; everything above
    (query validation, chunk-budget policy defaults, the per-query
    fallback for estimator subclasses) stays in the estimator.
    """

    #: Registry name, set by subclasses.
    name: str = ""

    def __init__(self) -> None:
        self._estimator = None
        self.stats = BackendStats()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, estimator) -> "ExecutionBackend":
        """Attach to an estimator; a backend serves exactly one model."""
        if self._estimator is not None and self._estimator is not estimator:
            raise ValueError(
                f"backend {self.name!r} is already bound to another "
                "estimator; create one backend instance per model"
            )
        self._estimator = estimator
        return self

    @property
    def estimator(self):
        if self._estimator is None:
            raise RuntimeError(
                f"backend {self.name!r} is not bound to an estimator"
            )
        return self._estimator

    def invalidate(self, reason: str) -> None:
        """Notification that bound-model state changed.

        ``reason`` is ``"bandwidth"`` (the bandwidth vector was replaced)
        or ``"sample"`` (sample rows were rewritten in place).  Backends
        drop or refresh whatever derived state depends on it.
        """
        self.stats.invalidations[reason] = (
            self.stats.invalidations.get(reason, 0) + 1
        )

    def close(self) -> None:
        """Release external resources (pools, shared memory).  Idempotent."""

    def warm(
        self,
        low: Optional[np.ndarray] = None,
        high: Optional[np.ndarray] = None,
    ) -> bool:
        """Eagerly build whatever derived state the next query would build.

        ``low``/``high`` are optional ``(q, d)`` bound matrices of
        *forecast* queries; region-aware backends (the CDF-term cache)
        pre-compute exactly their terms, while table-based backends
        (grid, hashing) build their tables regardless of the region.
        Returns ``True`` when the backend did (or could have done) any
        eager work — the proactive controller uses the return value to
        know whether warming is worth scheduling for this backend at
        all.  The base implementation does nothing and returns
        ``False``; warming never changes results, only *when* the cost
        is paid.
        """
        return False

    # ------------------------------------------------------------------
    # Block primitives
    # ------------------------------------------------------------------
    def contribution_block(
        self, low: np.ndarray, high: np.ndarray
    ) -> np.ndarray:
        """``(q, s)`` per-point contributions for ``(q, d)`` bounds."""
        raise NotImplementedError

    def selectivity_block(
        self, low: np.ndarray, high: np.ndarray
    ) -> np.ndarray:
        """``(q,)`` selectivity estimates (mean-reduced contributions)."""
        raise NotImplementedError

    def masses_block(self, low: np.ndarray, high: np.ndarray) -> np.ndarray:
        """``(q, s, d)`` per-dimension interval masses."""
        raise NotImplementedError

    def gradient_block(
        self,
        low: np.ndarray,
        high: np.ndarray,
        dimension_masses: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``(q, d)`` bandwidth gradients (Eq. 17), one row per query."""
        raise NotImplementedError

    def _count(self, queries: int) -> None:
        self.stats.blocks_evaluated += 1
        self.stats.queries_evaluated += int(queries)
        registry = self._registry()
        if registry is not None and registry.enabled:
            labels = {"backend": self.name}
            registry.counter("backend.blocks", labels).inc()
            registry.counter("backend.queries", labels).inc(int(queries))

    def _count_rows_touched(self, rows: int) -> None:
        """Account ``rows`` kernel-evaluated sample rows (see stats)."""
        self.stats.rows_touched += int(rows)
        registry = self._registry()
        if registry is not None and registry.enabled:
            registry.counter(
                "backend.rows_touched", {"backend": self.name}
            ).inc(int(rows))

    def _registry(self):
        """The bound estimator's metrics registry (None when unbound)."""
        estimator = self._estimator
        if estimator is None:
            return None
        return getattr(estimator, "obs", None)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        bound = "bound" if self._estimator is not None else "unbound"
        return f"{type(self).__name__}(name={self.name!r}, {bound})"
