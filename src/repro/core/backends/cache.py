"""Per-dimension CDF-term cache exploiting the Eq. (13) product form.

A query's contribution vector factors into ``d`` independent per-
dimension *column masses* ``F((u_j - t_j)/h_j) - F((l_j - t_j)/h_j)``
— an ``(s,)`` vector depending only on ``(dimension, lo, hi)`` and the
current bandwidth/sample state.  Real workloads overwhelmingly reuse
per-dimension bounds (templated predicates, paging, dashboards sweeping
one attribute while pinning the rest), so the expensive erf evaluations
can be shared across queries: this backend memoises column masses in an
LRU keyed on ``(dimension, lo, hi, bandwidth_epoch, sample_epoch)``.

Correctness story:

* the epochs come from the estimator, which bumps them in
  ``bandwidth``'s setter and in ``replace_points`` — a stale entry can
  never be *returned* because its key no longer matches,
* the estimator additionally notifies :meth:`CachedBackend.invalidate`,
  which drops the dead generation eagerly instead of waiting for LRU
  pressure,
* cache hits are **bitwise identical** to recomputation: misses are
  evaluated by the exact elementwise kernel expression the reference
  backend uses, and the per-query product folds the cached columns in
  the same dimension order.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from .base import ExecutionBackend

__all__ = ["CachedBackend", "CDFTermCache"]

_Key = Tuple[int, float, float, int, int]


class CDFTermCache:
    """LRU of ``(s,)`` column-mass vectors keyed on bounds + epochs."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        self.capacity = capacity
        self._entries: "OrderedDict[_Key, np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: _Key) -> Optional[np.ndarray]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: _Key, value: np.ndarray) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    @property
    def nbytes(self) -> int:
        """Resident payload size (cache-entry arrays only)."""
        return sum(entry.nbytes for entry in self._entries.values())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CachedBackend(ExecutionBackend):
    """Column-mass caching in front of chunked numpy evaluation.

    Parameters
    ----------
    capacity:
        Maximum cached columns.  Each entry is an ``(s,)`` float64
        vector (``8 s`` bytes), so the worst-case footprint is
        ``8 * s * capacity`` bytes.
    """

    name = "cached"

    def __init__(self, capacity: int = 4096) -> None:
        super().__init__()
        self.cache = CDFTermCache(capacity)
        self._emitted_hits = 0
        self._emitted_misses = 0
        self._emitted_evictions = 0

    # -- lifecycle -----------------------------------------------------
    def invalidate(self, reason: str) -> None:
        super().invalidate(reason)
        # Epoch-stamped keys already guarantee correctness; clearing
        # eagerly frees the dead generation's memory.
        self.cache.clear()

    def warm(
        self,
        low: Optional[np.ndarray] = None,
        high: Optional[np.ndarray] = None,
    ) -> bool:
        """Pre-compute the column masses the given forecast queries need.

        The cache is region-keyed, so warming without bounds has nothing
        to compute — returns ``False``.  With ``(q, d)`` bounds, every
        per-dimension ``(lo, hi)`` column is resolved through the normal
        miss path (and is therefore epoch-stamped with the *current*
        ``(bandwidth_epoch, sample_epoch)``): a later epoch bump simply
        orphans the warmed entries, it can never cause them to be served.
        """
        if low is None or high is None:
            return False
        low = np.asarray(low, dtype=np.float64)
        high = np.asarray(high, dtype=np.float64)
        for j in range(self.estimator.dimensions):
            self._column_masses(j, low[:, j], high[:, j])
        return True

    def _sync_stats(self) -> None:
        self.stats.cache_hits = self.cache.hits
        self.stats.cache_misses = self.cache.misses
        self.stats.cache_evictions = self.cache.evictions
        registry = self._registry()
        if registry is not None and registry.enabled:
            # Counters are monotonic, the cache's totals are too; emit
            # only the delta since the last sync.
            labels = {"backend": self.name}
            if self.cache.hits > self._emitted_hits:
                registry.counter("cache.hits", labels).inc(
                    self.cache.hits - self._emitted_hits
                )
                self._emitted_hits = self.cache.hits
            if self.cache.misses > self._emitted_misses:
                registry.counter("cache.misses", labels).inc(
                    self.cache.misses - self._emitted_misses
                )
                self._emitted_misses = self.cache.misses
            if self.cache.evictions > self._emitted_evictions:
                registry.counter("cache.evictions", labels).inc(
                    self.cache.evictions - self._emitted_evictions
                )
                self._emitted_evictions = self.cache.evictions
            registry.gauge("cache.entries", labels).set(len(self.cache))

    # -- column assembly -----------------------------------------------
    def _column_masses(
        self, dimension: int, lows: np.ndarray, highs: np.ndarray
    ) -> np.ndarray:
        """``(b, s)`` masses for one dimension, served from the cache.

        Unique ``(lo, hi)`` bounds are resolved once: hits are gathered
        from the LRU, misses are evaluated in a single broadcast kernel
        call (elementwise identical to the uncached path) and inserted.
        """
        estimator = self.estimator
        b_epoch = estimator.bandwidth_epoch
        s_epoch = estimator.sample_epoch
        rows_for_bound: Dict[Tuple[float, float], List[int]] = {}
        for row, (lo, hi) in enumerate(zip(lows, highs)):
            rows_for_bound.setdefault((float(lo), float(hi)), []).append(row)

        out = np.empty(
            (lows.shape[0], estimator.sample_size), dtype=np.float64
        )
        missed: List[Tuple[float, float]] = []
        for (lo, hi), rows in rows_for_bound.items():
            key = (dimension, lo, hi, b_epoch, s_epoch)
            entry = self.cache.get(key)
            if entry is None:
                missed.append((lo, hi))
            else:
                out[rows] = entry
        if missed:
            miss_lo = np.array([lo for lo, _ in missed], dtype=np.float64)
            miss_hi = np.array([hi for _, hi in missed], dtype=np.float64)
            masses = estimator.kernels[dimension].interval_mass(
                miss_lo[:, None],
                miss_hi[:, None],
                estimator._sample[None, :, dimension],
                estimator._bandwidth[dimension],
            )
            for index, (lo, hi) in enumerate(missed):
                column = np.ascontiguousarray(masses[index])
                self.cache.put((dimension, lo, hi, b_epoch, s_epoch), column)
                out[rows_for_bound[(lo, hi)]] = column
        self._sync_stats()
        return out

    def _cached_contribution_block(
        self, low: np.ndarray, high: np.ndarray
    ) -> np.ndarray:
        """``(b, s)`` contributions from cached columns (Eq. 13 product)."""
        block: Optional[np.ndarray] = None
        for j in range(low.shape[1]):
            masses = self._column_masses(j, low[:, j], high[:, j])
            if block is None:
                block = masses  # fresh (gathered) array; safe to own
            else:
                np.multiply(block, masses, out=block)
        assert block is not None
        return block

    # -- block primitives ----------------------------------------------
    def contribution_block(
        self, low: np.ndarray, high: np.ndarray
    ) -> np.ndarray:
        estimator = self.estimator
        self._count(low.shape[0])
        out = np.empty(
            (low.shape[0], estimator.sample_size), dtype=np.float64
        )
        chunk = estimator._batch_chunk()
        for start in range(0, low.shape[0], chunk):
            stop = min(low.shape[0], start + chunk)
            out[start:stop] = self._cached_contribution_block(
                low[start:stop], high[start:stop]
            )
        return out

    def selectivity_block(
        self, low: np.ndarray, high: np.ndarray
    ) -> np.ndarray:
        estimator = self.estimator
        self._count(low.shape[0])
        out = np.empty(low.shape[0], dtype=np.float64)
        chunk = estimator._batch_chunk()
        for start in range(0, low.shape[0], chunk):
            stop = min(low.shape[0], start + chunk)
            out[start:stop] = self._cached_contribution_block(
                low[start:stop], high[start:stop]
            ).mean(axis=1)
        return out

    def masses_block(self, low: np.ndarray, high: np.ndarray) -> np.ndarray:
        estimator = self.estimator
        self._count(low.shape[0])
        out = np.empty(
            (low.shape[0], estimator.sample_size, estimator.dimensions),
            dtype=np.float64,
        )
        for j in range(estimator.dimensions):
            out[:, :, j] = self._column_masses(j, low[:, j], high[:, j])
        return out

    def gradient_block(
        self,
        low: np.ndarray,
        high: np.ndarray,
        dimension_masses: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        # The gradient's dmass terms are bandwidth-derivative factors the
        # column cache does not cover; the mass factors, however, can be
        # served from it when no precomputed tensor was provided.
        estimator = self.estimator
        self._count(low.shape[0])
        if dimension_masses is None:
            dimension_masses = self.masses_block(low, high)
        return estimator._gradient_block(low, high, dimension_masses)
