"""Grid/CDF backend: sublinear range selectivities from precomputed tables.

The binned route of Andrzejewski et al. ("Density Estimations for
Approximate Query Processing on SIMD Architectures", PAPERS.md) breaks
the O(sample x queries) wall of the paper's evaluation model: instead of
touching every sample row per query, the sample is **snapped to a fixed
per-dimension grid at build time** and range selectivities are answered
from precomputed per-dimension kernel-CDF tables.

Build (lazy, per ``(bandwidth_epoch, sample_epoch)``):

* per dimension ``j``, lay ``G`` knots over the sample's range padded by
  ``padding * h_j`` on both sides (so the kernel CDF saturates to 0/1 at
  the edges),
* snap each sample coordinate to its nearest knot — an ``(G,)`` weight
  vector ``w_j`` per dimension (O(s d) digitise, done once),
* tabulate the *smoothed marginal CDF* at every knot::

      T_j(x_k) = sum_g w_jg * F((x_k - v_jg) / h_j)

  one ``(G, G)`` kernel-CDF matrix product per dimension — O(G^2 d)
  kernel evaluations total, independent of the sample size.

Query (O(d) per query — no sample rows touched):

* per dimension, the marginal interval mass is a table lookup with
  linear interpolation, ``T_j(u_j) - T_j(l_j)``,
* the selectivity estimate is the product of the per-dimension masses —
  the Eq. (13) product form evaluated on the *smoothed marginals*
  instead of per sample point.

Accuracy contract (the ``grid`` row of the README backends table):

* **zero-width dimensions are exact**: ``T_j(u) - T_j(l) == 0.0``
  bit-for-bit when ``u == l``, matching the reference backend's exactly-
  zero interval mass — degenerate and point queries agree exactly;
* snapping and interpolation each contribute O(step) error per
  dimension (``step = span_j / (grid_size - 1)``), driven to any budget
  by ``grid_size``;
* factoring the joint sum-of-products into a product of marginal sums
  additionally assumes cross-dimension independence *of the sample*.
  On independent dimensions the residual is sampling-level; on
  correlated data it is the measured Q-error axis of
  ``run_backend_scaling`` — the price of O(d) queries, exactly the
  speed/accuracy trade the bench reports.

Only the selectivity path is approximated.  Per-point contributions,
mass tensors and bandwidth gradients (the tuning paths, which need the
exact per-row terms) delegate to the reference chunked numpy evaluation
inherited from :class:`~repro.core.backends.numpy_backend.NumpyBackend`.

Correctness of table reuse mirrors :class:`~repro.core.backends.cache.
CachedBackend`: tables are keyed on the estimator's
``(bandwidth_epoch, sample_epoch)`` pair — a stale table can never be
*consulted* because its key no longer matches — and
:meth:`GridBackend.invalidate` additionally drops the dead generation
eagerly (``bandwidth`` setter, ``replace_rows`` and ``restore()`` all
bump epochs and notify).
"""

from __future__ import annotations

from time import perf_counter
from typing import List, Optional, Tuple

import numpy as np

from .numpy_backend import NumpyBackend

__all__ = ["GridBackend"]


class GridBackend(NumpyBackend):
    """Per-dimension kernel-CDF tables over a grid-snapped sample.

    Parameters
    ----------
    grid_size:
        Knots per dimension (``G``).  Build cost is O(G^2) kernel-CDF
        evaluations per dimension; table memory is ``2 * 8 * G`` bytes
        per dimension.  Larger grids shrink the snapping/interpolation
        error linearly.
    padding:
        Edge padding in bandwidth units.  8 covers the Gaussian tail to
        ~1e-15 and every compactly supported kernel outright.
    """

    name = "grid"

    def __init__(self, grid_size: int = 1024, padding: float = 8.0) -> None:
        super().__init__()
        if grid_size < 2:
            raise ValueError("grid_size must be at least 2")
        if padding <= 0.0:
            raise ValueError("padding must be positive")
        self.grid_size = int(grid_size)
        self.padding = float(padding)
        self._knots: List[np.ndarray] = []
        self._tables: List[np.ndarray] = []
        self._table_key: Optional[Tuple[int, int]] = None
        self.last_build_seconds = 0.0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def table_epochs(self) -> Optional[Tuple[int, int]]:
        """``(bandwidth_epoch, sample_epoch)`` the tables were built for.

        ``None`` while no tables exist (never built, or eagerly dropped
        by :meth:`invalidate`).  When set, it always equals the bound
        estimator's current epoch pair at query time — the invariant the
        invalidation property tests pin down.
        """
        return self._table_key

    @property
    def table_nbytes(self) -> int:
        """Resident bytes of the knot + CDF tables."""
        return sum(t.nbytes for t in self._tables) + sum(
            k.nbytes for k in self._knots
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def invalidate(self, reason: str) -> None:
        super().invalidate(reason)
        # Epoch-keyed tables already guarantee a stale generation is
        # never consulted; dropping eagerly frees its memory now.
        self._knots = []
        self._tables = []
        self._table_key = None

    def warm(
        self,
        low: Optional[np.ndarray] = None,
        high: Optional[np.ndarray] = None,
    ) -> bool:
        """Build the CDF tables for the current epochs ahead of traffic.

        The tables cover the whole sample range, so the forecast region
        is irrelevant; a no-op when the current generation's tables
        already exist.
        """
        del low, high
        self._ensure_tables()
        return True

    # ------------------------------------------------------------------
    # Table construction
    # ------------------------------------------------------------------
    def _ensure_tables(self) -> None:
        estimator = self.estimator
        key = (estimator.bandwidth_epoch, estimator.sample_epoch)
        if self._table_key == key:
            return
        started = perf_counter()
        sample = estimator._sample
        bandwidth = estimator._bandwidth
        knots: List[np.ndarray] = []
        tables: List[np.ndarray] = []
        size = self.grid_size
        for j in range(estimator.dimensions):
            column = sample[:, j]
            h = float(bandwidth[j])
            lo = float(column.min()) - self.padding * h
            hi = float(column.max()) + self.padding * h
            if hi <= lo:  # pragma: no cover - padding > 0 prevents this
                hi = lo + h
            axis = np.linspace(lo, hi, size)
            # Snap the sample to the grid: nearest-knot weights.
            step = (hi - lo) / (size - 1)
            cells = np.clip(
                np.rint((column - lo) / step).astype(np.intp), 0, size - 1
            )
            weights = np.bincount(cells, minlength=size).astype(np.float64)
            weights /= float(column.shape[0])
            # T_j(knot_k) = sum_g w_g F((knot_k - knot_g) / h); one
            # (G, G) CDF matrix contracted against the weight vector.
            occupied = np.flatnonzero(weights)
            z = (axis[:, None] - axis[None, occupied]) / h
            table = estimator.kernels[j].cdf(z) @ weights[occupied]
            # The CDF is monotone in theory; enforce it so interpolated
            # interval masses can never go (slightly) negative.
            np.maximum.accumulate(table, out=table)
            np.clip(table, 0.0, 1.0, out=table)
            knots.append(axis)
            tables.append(table)
        self._knots = knots
        self._tables = tables
        self._table_key = key
        self.last_build_seconds = perf_counter() - started
        self.stats.builds += 1
        registry = self._registry()
        if registry is not None and registry.enabled:
            labels = {"backend": self.name}
            registry.histogram("backend.build_seconds", labels).observe(
                self.last_build_seconds
            )
            registry.gauge("backend.table_bytes", labels).set(
                float(self.table_nbytes)
            )
            registry.counter("backend.builds", labels).inc()

    # ------------------------------------------------------------------
    # Block primitives
    # ------------------------------------------------------------------
    def selectivity_block(
        self, low: np.ndarray, high: np.ndarray
    ) -> np.ndarray:
        self._count(low.shape[0])
        self._count_rows_touched(0)  # the whole point: no rows touched
        self._ensure_tables()
        out = np.ones(low.shape[0], dtype=np.float64)
        for j in range(low.shape[1]):
            axis = self._knots[j]
            table = self._tables[j]
            mass = np.interp(high[:, j], axis, table) - np.interp(
                low[:, j], axis, table
            )
            # Monotone tables keep mass >= 0 up to interpolation
            # rounding; clip defensively so products stay in [0, 1].
            np.clip(mass, 0.0, 1.0, out=mass)
            out *= mass
        return out
