"""Hashing-based estimator: bucket importance sampling with an (ε, δ) knob.

The second sublinear route of ROADMAP item 2, after Charikar &
Siminelakis ("Hashing-Based-Estimators for Kernel Density in High
Dimensions", PAPERS.md): instead of scanning all ``s`` rows per query,
hash the sample into spatial buckets once, then answer each query from
the buckets that can matter plus a small importance sample of the rest.

Build (lazy, per ``sample_epoch`` — the bucket geometry depends only on
the sample, not the bandwidth):

* quantise every row to a coarse per-dimension cell id (``cells_per_dim``
  cells over the sample's range) — the hash,
* group rows by cell: a ``(c, d)`` matrix of occupied cell bounds plus a
  permutation that makes each bucket's rows a contiguous slice.

Query — for the range ``[l, u]`` with bandwidths ``h``:

* expand the box by ``tail_radius * h_j`` per dimension and select the
  buckets whose cells intersect it (vectorised bound comparisons over
  the ``c`` occupied cells; no kernel math).  Rows in those buckets are
  the **near stratum** and are evaluated exactly.
* every far row lies outside the expanded box in at least one
  dimension, so its contribution is at most ``B = F(-tail_radius)``
  (symmetric kernel CDF tail; *exactly zero* for compactly supported
  kernels like Epanechnikov with ``tail_radius >= 1``).  The far
  stratum is handled by certified importance sampling against the
  per-query error budget ``t = max(epsilon * S_near, epsilon * floor)``
  (``S_near`` = the exact near partial selectivity — a lower bound on
  the estimate — so ``epsilon`` acts as a *relative* error knob):

  - if the worst case ``(n_far / s) * B <= t``, the stratum is skipped
    outright (a deterministic bound, no sampling, no rows touched);
  - else draw ``m = ceil(B^2 (n_far/s)^2 ln(2/δ) / (2 t^2))`` far rows
    uniformly *with replacement* (rejection sampling against the near
    set, so no O(s) index materialisation per query) — Hoeffding over
    the iid draws gives ``P(|error| > t) <= δ`` — and add the unbiased
    term ``(n_far / s) * mean(sampled contributions)``;
  - if that ``m`` is not actually sublinear (``m >= n_far``), evaluate
    the far stratum exactly instead.

Rows touched per query (near + sampled + fallback rows) feed the
``backend.rows_touched`` counter, so the sublinearity claim is a
measurement, not an assertion.

Fallback: below ``exact_threshold`` sample rows the bucket machinery
cannot pay for itself; the whole block delegates to the reference
chunked evaluation (inherited from :class:`~repro.core.backends.
numpy_backend.NumpyBackend`), which is also what the non-selectivity
primitives (contributions, masses, gradients — the tuning paths) always
use.
"""

from __future__ import annotations

import math
from time import perf_counter
from typing import Optional

import numpy as np

from .numpy_backend import NumpyBackend

__all__ = ["HashingBackend"]


class _BucketIndex:
    """Rows grouped by coarse spatial cell; buckets are contiguous slices."""

    def __init__(self, sample: np.ndarray, cells_per_dim: int) -> None:
        s, d = sample.shape
        low = sample.min(axis=0)
        high = sample.max(axis=0)
        span = high - low
        span[span == 0.0] = 1.0  # constant column: everything in cell 0
        step = span / cells_per_dim
        cells = np.clip(
            ((sample - low) / step).astype(np.intp), 0, cells_per_dim - 1
        )
        # Group rows by cell id: unique occupied cells + a permutation
        # making each bucket a contiguous index slice.
        unique, inverse = np.unique(cells, axis=0, return_inverse=True)
        self.order = np.argsort(inverse, kind="stable")
        sorted_inverse = inverse[self.order]
        self.starts = np.searchsorted(
            sorted_inverse, np.arange(unique.shape[0] + 1)
        )
        #: Geometric bounds of each occupied cell, (c, d) each.
        self.cell_low = low + unique * step
        self.cell_high = self.cell_low + step
        self.buckets = unique.shape[0]

    def near_rows(self, low: np.ndarray, high: np.ndarray) -> np.ndarray:
        """Row indices whose cell intersects ``[low, high]`` (1-D bounds)."""
        mask = np.all(
            (self.cell_low <= high) & (self.cell_high >= low), axis=1
        )
        hits = np.flatnonzero(mask)
        if hits.size == 0:
            return np.empty(0, dtype=np.intp)
        # Vectorised multi-range gather of the hit buckets' contiguous
        # slices (a python-level concatenate over thousands of tiny
        # buckets would dominate the whole query).
        begins = self.starts[hits]
        lengths = self.starts[hits + 1] - begins
        total = int(lengths.sum())
        within = np.arange(total) - np.repeat(
            np.cumsum(lengths) - lengths, lengths
        )
        return self.order[np.repeat(begins, lengths) + within]

    @property
    def nbytes(self) -> int:
        return (
            self.order.nbytes
            + self.starts.nbytes
            + self.cell_low.nbytes
            + self.cell_high.nbytes
        )


class HashingBackend(NumpyBackend):
    """LSH-bucket importance sampling for the selectivity hot path.

    Parameters
    ----------
    epsilon:
        Relative-error knob: the far-stratum error is certified below
        ``epsilon * max(S_near, floor)`` with probability ``1 - delta``
        (``S_near`` = the exactly evaluated near mass).
    delta:
        Failure probability of the Hoeffding certificate.
    tail_radius:
        Near/far split distance in bandwidth units.  The far-row
        contribution bound is ``F(-tail_radius)``: 4 keeps the Gaussian
        bound at ~3e-5 (far sampling rarely triggers); smaller radii
        shrink the near stratum and lean on the sampler instead.  Any
        value >= 1 makes compact kernels (Epanechnikov) exact.
    cells_per_dim:
        Hash resolution per dimension.  More cells tighten the near
        stratum but grow the per-query bucket scan (O(occupied cells)).
    exact_threshold:
        Sample sizes at or below this delegate to the reference
        evaluation outright.
    seed:
        Seed of the far-stratum sampler (deterministic by default).
    """

    name = "hashing"

    def __init__(
        self,
        epsilon: float = 0.05,
        delta: float = 1e-3,
        tail_radius: float = 4.0,
        cells_per_dim: int = 16,
        exact_threshold: int = 4096,
        seed: Optional[int] = 0,
        selectivity_floor: float = 1e-4,
    ) -> None:
        super().__init__()
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must lie in (0, 1)")
        if not 0.0 < delta < 1.0:
            raise ValueError("delta must lie in (0, 1)")
        if tail_radius <= 0.0:
            raise ValueError("tail_radius must be positive")
        if cells_per_dim < 1:
            raise ValueError("cells_per_dim must be at least 1")
        if exact_threshold < 0:
            raise ValueError("exact_threshold must be non-negative")
        if selectivity_floor <= 0.0:
            raise ValueError("selectivity_floor must be positive")
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.tail_radius = float(tail_radius)
        self.cells_per_dim = int(cells_per_dim)
        self.exact_threshold = int(exact_threshold)
        self.selectivity_floor = float(selectivity_floor)
        self._rng = np.random.default_rng(seed)
        self._index: Optional[_BucketIndex] = None
        self._index_epoch: Optional[int] = None
        self.last_build_seconds = 0.0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def table_nbytes(self) -> int:
        """Resident bytes of the bucket index."""
        return self._index.nbytes if self._index is not None else 0

    @property
    def index_epoch(self) -> Optional[int]:
        """``sample_epoch`` the bucket index was built for (``None`` = none)."""
        return self._index_epoch

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def invalidate(self, reason: str) -> None:
        super().invalidate(reason)
        if reason == "sample":
            # Bucket geometry depends only on the sample; bandwidth
            # updates only move the per-query expansion radius.
            self._index = None
            self._index_epoch = None

    def warm(self, low=None, high=None) -> bool:
        """Build the bucket index for the current sample epoch eagerly.

        The index depends only on the sample, not the query region; a
        no-op when the current epoch's index already exists.
        """
        del low, high
        self._ensure_index()
        return True

    # ------------------------------------------------------------------
    # Index construction
    # ------------------------------------------------------------------
    def _ensure_index(self) -> _BucketIndex:
        estimator = self.estimator
        epoch = estimator.sample_epoch
        if self._index is None or self._index_epoch != epoch:
            started = perf_counter()
            self._index = _BucketIndex(estimator._sample, self.cells_per_dim)
            self._index_epoch = epoch
            self.last_build_seconds = perf_counter() - started
            self.stats.builds += 1
            registry = self._registry()
            if registry is not None and registry.enabled:
                labels = {"backend": self.name}
                registry.histogram(
                    "backend.build_seconds", labels
                ).observe(self.last_build_seconds)
                registry.gauge("backend.table_bytes", labels).set(
                    float(self._index.nbytes)
                )
                registry.counter("backend.builds", labels).inc()
        return self._index

    # ------------------------------------------------------------------
    # Per-row contributions on an index subset
    # ------------------------------------------------------------------
    def _subset_contributions(self, rows: np.ndarray, low, high) -> np.ndarray:
        """Exact Eq. (13) contributions of ``rows`` for 1-D bounds."""
        estimator = self.estimator
        out: Optional[np.ndarray] = None
        subset = estimator._sample[rows]
        for j in range(estimator.dimensions):
            mass = estimator.kernels[j].interval_mass(
                low[j], high[j], subset[:, j], estimator._bandwidth[j]
            )
            out = mass if out is None else np.multiply(out, mass, out=out)
        assert out is not None
        return out

    # ------------------------------------------------------------------
    # Far-stratum sampling
    # ------------------------------------------------------------------
    @staticmethod
    def _far_rows(s: int, near: np.ndarray) -> np.ndarray:
        """All far row indices (exact fallback; the only O(s) path)."""
        mask = np.ones(s, dtype=bool)
        mask[near] = False
        return np.flatnonzero(mask)

    def _sample_far(
        self, s: int, near: np.ndarray, n_far: int, m: int
    ) -> np.ndarray:
        """``m`` iid uniform draws from the far stratum, O(m) expected.

        Rejection sampling against the (sorted) near set: draw uniform
        row ids, drop the near hits, repeat.  Falls back to exact
        materialisation when the far stratum is a small minority and
        rejection would thrash.
        """
        if n_far < s // 2:
            far = self._far_rows(s, near)
            return self._rng.choice(far, size=m, replace=True)
        near_sorted = np.sort(near)
        accepted: list = []
        remaining = m
        while remaining > 0:
            batch = int(remaining * s / n_far * 1.2) + 16
            draws = self._rng.integers(0, s, size=batch)
            positions = np.searchsorted(near_sorted, draws)
            positions = np.minimum(positions, near_sorted.size - 1)
            keep = (
                draws[near_sorted[positions] != draws]
                if near_sorted.size
                else draws
            )
            accepted.append(keep[:remaining])
            remaining -= min(keep.size, remaining)
        return np.concatenate(accepted)

    # ------------------------------------------------------------------
    # Block primitives
    # ------------------------------------------------------------------
    def selectivity_block(
        self, low: np.ndarray, high: np.ndarray
    ) -> np.ndarray:
        estimator = self.estimator
        s = estimator.sample_size
        if s <= self.exact_threshold:
            # Reference path (which accounts its own rows touched).
            return super().selectivity_block(low, high)
        self._count(low.shape[0])
        index = self._ensure_index()
        expand = self.tail_radius * estimator._bandwidth
        #: Worst-case contribution of a row outside the expanded box in
        #: >= 1 dimension: that dimension's interval mass is capped by
        #: the CDF tail, every other factor by 1.
        tail_bound = max(
            float(kernel.cdf(np.float64(-self.tail_radius)))
            for kernel in estimator.kernels
        )
        log_term = math.log(2.0 / self.delta)
        out = np.empty(low.shape[0], dtype=np.float64)
        touched = 0
        for q in range(low.shape[0]):
            near = index.near_rows(low[q] - expand, high[q] + expand)
            near_contrib = self._subset_contributions(near, low[q], high[q])
            s_near = float(near_contrib.sum()) / s
            touched += near.size
            n_far = s - near.size
            estimate = s_near
            if n_far > 0 and tail_bound > 0.0:
                budget = self.epsilon * max(s_near, self.selectivity_floor)
                far_fraction = n_far / s
                if far_fraction * tail_bound > budget:
                    m = math.ceil(
                        (tail_bound * far_fraction) ** 2
                        * log_term
                        / (2.0 * budget * budget)
                    )
                    if m >= n_far:
                        chosen = self._far_rows(s, near)  # go exact
                    else:
                        chosen = self._sample_far(s, near, n_far, m)
                    far_contrib = self._subset_contributions(
                        chosen, low[q], high[q]
                    )
                    estimate += far_fraction * float(far_contrib.mean())
                    touched += chosen.size
                # else: skipped outright — the deterministic bound
                # (n_far / s) * tail_bound already fits the budget.
            out[q] = min(estimate, 1.0)
        self._count_rows_touched(touched)
        return out
