"""The reference single-thread numpy backend.

This is the seed evaluation strategy, factored behind the
:class:`~repro.core.backends.base.ExecutionBackend` contract: chunked
``(b, s)`` whole-array numpy blocks, sized by the chunk-budget policy of
:mod:`repro.core.chunking` so the working set stays cache-resident.  It
delegates to the estimator's reference block helpers, so its results are
bitwise identical to the seed per-query loop (same factors, same
multiplication order, same reductions).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import ExecutionBackend

__all__ = ["NumpyBackend"]


class NumpyBackend(ExecutionBackend):
    """Inline chunked numpy evaluation (the default backend)."""

    name = "numpy"

    def contribution_block(
        self, low: np.ndarray, high: np.ndarray
    ) -> np.ndarray:
        estimator = self.estimator
        self._count(low.shape[0])
        out = np.empty(
            (low.shape[0], estimator.sample_size), dtype=np.float64
        )
        chunk = estimator._batch_chunk()
        for start in range(0, low.shape[0], chunk):
            stop = min(low.shape[0], start + chunk)
            out[start:stop] = estimator._contribution_block(
                low[start:stop], high[start:stop]
            )
        return out

    def selectivity_block(
        self, low: np.ndarray, high: np.ndarray
    ) -> np.ndarray:
        estimator = self.estimator
        self._count(low.shape[0])
        self._count_rows_touched(low.shape[0] * estimator.sample_size)
        out = np.empty(low.shape[0], dtype=np.float64)
        chunk = estimator._batch_chunk()
        for start in range(0, low.shape[0], chunk):
            stop = min(low.shape[0], start + chunk)
            out[start:stop] = estimator._contribution_block(
                low[start:stop], high[start:stop]
            ).mean(axis=1)
        return out

    def masses_block(self, low: np.ndarray, high: np.ndarray) -> np.ndarray:
        estimator = self.estimator
        self._count(low.shape[0])
        return estimator._masses_block(low, high)

    def gradient_block(
        self,
        low: np.ndarray,
        high: np.ndarray,
        dimension_masses: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        estimator = self.estimator
        self._count(low.shape[0])
        return estimator._gradient_block(low, high, dimension_masses)
