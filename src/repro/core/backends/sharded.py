"""Sharded multi-core execution over shared-memory sample views.

This backend maps the paper's two-phase GPU choreography (Section 5.1:
one virtual thread per (point, dimension) term; Section 5.4: a parallel
reduction over the per-point contribution buffer) onto host cores:

* the sample is published once into a ``multiprocessing.shared_memory``
  segment (the analogue of the one-time device upload of Section 5.2);
  worker processes attach zero-copy numpy views of it,
* each evaluation splits the sample into contiguous *row shards*; every
  worker computes its shard's per-query partial contribution sums /
  mass slabs / gradient term sums (phase one — the "local" evaluation),
* the host reduces the per-shard partials exactly like the paper's
  estimate+sum kernel pair (phase two — the global reduction).

Per-element math is identical to the reference numpy backend (the same
Eq. (13) factors in the same multiplication order); only the reduction
tree over the sample axis differs, which bounds the divergence far below
the 1e-12 equivalence budget.

In-place sample updates (Karma replacements) are write-through: the host
rewrites the shared segment before the next evaluation, so workers never
see stale rows and the pool never restarts.

Execution is fault-tolerant (see :mod:`repro.faults`): each shard runs
under a per-dispatch timeout with bounded retries and exponential
backoff+jitter (:class:`~repro.faults.retry.RetryPolicy`); a crashed or
hung worker pool is *resurrected* — segment and pool rebuilt, the sample
re-published, and only the unfinished shards re-dispatched.  The backend
guards the whole sharded path with a
:class:`~repro.faults.breaker.CircuitBreaker`: when even the retry
budget cannot save an execution it answers inline (numerically
identical) and periodically probes the pool until sharded execution is
healthy again.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_all_start_methods, get_context, shared_memory
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from ...faults.breaker import CircuitBreaker, export_breaker_metrics
from ...faults.injector import FaultInjector, InjectedFault
from ...faults.plan import WorkerFault, apply_worker_fault
from ...faults.retry import RetryPolicy
from ...obs.metrics import get_registry
from ...obs.spans import SpanContext, current_span_context
from ..chunking import get_chunk_budget
from .base import ExecutionBackend

__all__ = [
    "ShardExecutionError",
    "ShardedBackend",
    "ShardedSampleExecutor",
    "default_shard_count",
]

#: Environment override for the multiprocessing start method.
START_METHOD_ENV = "REPRO_MP_START_METHOD"


def default_shard_count() -> int:
    """One shard per available core (affinity-aware where possible)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def _start_method() -> str:
    method = os.environ.get(START_METHOD_ENV)
    available = get_all_start_methods()
    if method:
        if method not in available:
            raise ValueError(
                f"{START_METHOD_ENV}={method!r} is not available here "
                f"(choices: {', '.join(available)})"
            )
        return method
    # fork attaches workers in milliseconds; spawn is the portable fallback.
    return "fork" if "fork" in available else "spawn"


# ----------------------------------------------------------------------
# Worker-process plumbing
# ----------------------------------------------------------------------
_WORKER_SHM: Optional[shared_memory.SharedMemory] = None
_WORKER_SAMPLE: Optional[np.ndarray] = None


def _attach_worker(shm_name: str, shape: Tuple[int, ...], dtype: str) -> None:
    """Pool initializer: map the shared sample segment read-only-by-convention."""
    global _WORKER_SHM, _WORKER_SAMPLE
    _WORKER_SHM = shared_memory.SharedMemory(name=shm_name)
    _WORKER_SAMPLE = np.ndarray(shape, dtype=np.dtype(dtype), buffer=_WORKER_SHM.buf)


def _run_shard(
    fn: Callable,
    start: int,
    stop: int,
    payload,
    fault: Optional[WorkerFault] = None,
) -> np.ndarray:
    """Generic worker entry: run a shard function over [start, stop)."""
    assert _WORKER_SAMPLE is not None, "worker sample segment not attached"
    apply_worker_fault(fault)
    return fn(_WORKER_SAMPLE, start, stop, payload)


def _run_shard_traced(
    fn: Callable,
    start: int,
    stop: int,
    payload,
    context: SpanContext,
    index: int,
    fault: Optional[WorkerFault] = None,
):
    """Traced worker entry: run a shard and report its span by value.

    Workers hold no registry; the host's :class:`SpanContext` arrives in
    the task arguments and the worker returns ``(result, path, seconds)``
    for the host to fold into its registry (see module docstring of
    :mod:`repro.obs.spans`).
    """
    assert _WORKER_SAMPLE is not None, "worker sample segment not attached"
    apply_worker_fault(fault)
    path = context.child(f"shard[{index}]")
    started = time.perf_counter()
    result = fn(_WORKER_SAMPLE, start, stop, payload)
    return result, path, time.perf_counter() - started


def _fold_contribution_block(shard, low, high, bandwidth, kernels):
    """``(b, shard)`` contribution block for one query chunk (Eq. 13)."""
    block = None
    for j in range(low.shape[1]):
        masses = kernels[j].interval_mass(
            low[:, j, None], high[:, j, None], shard[None, :, j], bandwidth[j]
        )
        block = masses if block is None else np.multiply(block, masses, out=block)
    return block


def _shard_contribution_sums(sample, start, stop, payload):
    """Phase one of estimate+sum: per-query partial contribution sums."""
    low, high, bandwidth, kernels, budget = payload
    shard = sample[start:stop]
    b, d = low.shape
    out = np.empty(b, dtype=np.float64)
    chunk = max(1, budget // max(1, shard.shape[0] * d))
    for qs in range(0, b, chunk):
        qe = min(b, qs + chunk)
        block = _fold_contribution_block(
            shard, low[qs:qe], high[qs:qe], bandwidth, kernels
        )
        out[qs:qe] = block.sum(axis=1)
    return out


def _shard_contribution_slab(sample, start, stop, payload):
    """``(b, shard)`` contribution slab (for contributions_batch)."""
    low, high, bandwidth, kernels, budget = payload
    shard = sample[start:stop]
    b, d = low.shape
    out = np.empty((b, shard.shape[0]), dtype=np.float64)
    chunk = max(1, budget // max(1, shard.shape[0] * d))
    for qs in range(0, b, chunk):
        qe = min(b, qs + chunk)
        out[qs:qe] = _fold_contribution_block(
            shard, low[qs:qe], high[qs:qe], bandwidth, kernels
        )
    return out


def _shard_masses_slab(sample, start, stop, payload):
    """``(b, shard, d)`` per-dimension mass slab."""
    low, high, bandwidth, kernels, _budget = payload
    shard = sample[start:stop]
    b, d = low.shape
    out = np.empty((b, shard.shape[0], d), dtype=np.float64)
    for j in range(d):
        out[:, :, j] = kernels[j].interval_mass(
            low[:, j, None], high[:, j, None], shard[None, :, j], bandwidth[j]
        )
    return out


def _shard_gradient_sums(sample, start, stop, payload):
    """``(b, d)`` partial sums of the Eq. (17) per-point gradient terms."""
    low, high, bandwidth, kernels, budget = payload
    shard = sample[start:stop]
    b, d = low.shape
    s_shard = shard.shape[0]
    out = np.empty((b, d), dtype=np.float64)
    chunk = max(1, budget // max(1, s_shard * d))
    for qs in range(0, b, chunk):
        qe = min(b, qs + chunk)
        m = qe - qs
        masses = np.empty((m, s_shard, d), dtype=np.float64)
        for j in range(d):
            masses[:, :, j] = kernels[j].interval_mass(
                low[qs:qe, j, None],
                high[qs:qe, j, None],
                shard[None, :, j],
                bandwidth[j],
            )
        # Zero-safe leave-one-dimension-out products (prefix/suffix),
        # the same scheme as the reference gradient.
        prefix = np.ones((m, s_shard, d + 1), dtype=np.float64)
        suffix = np.ones((m, s_shard, d + 1), dtype=np.float64)
        for j in range(d):
            prefix[:, :, j + 1] = prefix[:, :, j] * masses[:, :, j]
        for j in range(d - 1, -1, -1):
            suffix[:, :, j] = suffix[:, :, j + 1] * masses[:, :, j]
        for i in range(d):
            dmass = kernels[i].interval_mass_grad(
                low[qs:qe, i, None],
                high[qs:qe, i, None],
                shard[None, :, i],
                bandwidth[i],
            )
            others = prefix[:, :, i] * suffix[:, :, i + 1]
            out[qs:qe, i] = (dmass * others).sum(axis=1)
    return out


# ----------------------------------------------------------------------
# Host-side executor
# ----------------------------------------------------------------------
def _release(shm: Optional[shared_memory.SharedMemory],
             pool: Optional[ProcessPoolExecutor]) -> None:
    if pool is not None:
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:  # pragma: no cover - interpreter shutdown
            pass
    if shm is not None:
        try:
            shm.close()
            shm.unlink()
        except Exception:  # pragma: no cover - already unlinked
            pass


class ShardExecutionError(RuntimeError):
    """Sharded execution failed even after its whole retry budget.

    Raised by :meth:`ShardedSampleExecutor.run` with the last
    infrastructure failure (broken pool, shard timeout, injected detach)
    as ``__cause__``.  Genuine worker exceptions — the shard *function*
    raising — are never wrapped: they surface as-is, first shard first.
    """


class ShardedSampleExecutor:
    """Owns the shared-memory sample segment and the worker pool.

    Generic on purpose: callers hand it any module-level shard function
    ``fn(sample, start, stop, payload)``, so both the core estimator and
    the simulated device layer can shard their evaluation through one
    piece of infrastructure.

    Fault tolerance (``retry``, a :class:`~repro.faults.retry.RetryPolicy`):

    * every shard dispatch runs under ``retry.shard_timeout`` seconds;
    * an infrastructure failure (worker SIGKILL → ``BrokenProcessPool``,
      a shard timeout, a detached segment) tears the suspect pool down
      (hung workers are killed), waits out the policy's backoff+jitter,
      rebuilds segment and pool, re-publishes the sample, and
      re-dispatches *only the unfinished shards* — completed shard
      results are kept across resurrections;
    * after ``retry.max_attempts`` rounds the last infrastructure error
      is raised wrapped in :class:`ShardExecutionError`;
    * genuine worker exceptions (the shard function raising) are not
      retried: outstanding futures are cancelled and the first failing
      shard's exception surfaces unchanged.

    Recovery/fault counters are kept as plain attributes
    (``retry_count``, ``timeout_count``, ``resurrection_count``,
    ``republication_count``) and mirrored into the ambient metrics
    registry when one is enabled (``executor.retries`` /
    ``executor.timeouts`` / ``executor.resurrections`` /
    ``executor.republications``).
    """

    def __init__(
        self,
        shards: Optional[int] = None,
        max_workers: Optional[int] = None,
        start_method: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultInjector] = None,
        verify_publication: bool = True,
    ) -> None:
        if shards is not None and shards < 1:
            raise ValueError("shards must be at least 1")
        self.shards = shards or default_shard_count()
        self.max_workers = max_workers or min(
            self.shards, default_shard_count()
        )
        self.retry = retry if retry is not None else RetryPolicy()
        self.faults = faults
        #: Compare the published segment against the host sample before
        #: each run and re-publish on divergence (an O(s*d) memcmp —
        #: negligible next to the O(q*s*d) evaluation it protects).
        #: Turns external segment corruption into a self-healed
        #: republication instead of silently wrong estimates.
        self.verify_publication = verify_publication
        self.retry_count = 0
        self.timeout_count = 0
        self.resurrection_count = 0
        self.republication_count = 0
        self._start_method = start_method
        self._shm: Optional[shared_memory.SharedMemory] = None
        self._view: Optional[np.ndarray] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._dirty = False
        self._finalizer = None
        #: Guards the run-generation bookkeeping below (see :meth:`resize`).
        self._run_cv = threading.Condition()
        #: Runs currently inside :meth:`_run_attempts`.
        self._active_runs = 0
        #: Completed-run counter; ``resize`` waits on it so a topology
        #: change never races a batch that is mid-flight.
        self.run_generation = 0

    # -- lifecycle -----------------------------------------------------
    def ensure(self, sample: np.ndarray) -> None:
        """Publish (or refresh) ``sample`` into the shared segment."""
        if (
            self._view is not None
            and self._view.shape == sample.shape
            and self._view.dtype == sample.dtype
        ):
            if self._dirty:
                np.copyto(self._view, sample)
                self._dirty = False
            elif self.verify_publication and not np.array_equal(
                self._view, sample
            ):
                # The segment diverged without the host marking it dirty
                # — external corruption.  Repair and count it.
                np.copyto(self._view, sample)
                self.republication_count += 1
                registry = get_registry()
                if registry.enabled:
                    registry.counter("executor.republications").inc()
            return
        self.close()
        shm = shared_memory.SharedMemory(create=True, size=sample.nbytes)
        view = None
        try:
            view = np.ndarray(
                sample.shape, dtype=sample.dtype, buffer=shm.buf
            )
            np.copyto(view, sample)
            method = self._start_method or _start_method()
            pool = ProcessPoolExecutor(
                max_workers=self.max_workers,
                mp_context=get_context(method),
                initializer=_attach_worker,
                initargs=(shm.name, sample.shape, sample.dtype.str),
            )
        except BaseException:
            # Pool startup can fail after the segment exists (bad start
            # method, fork limits); without this the segment would leak
            # until interpreter exit — or past it, under /dev/shm.
            view = None  # release the buffer export before closing
            shm.close()
            shm.unlink()
            raise
        self._shm, self._view, self._pool = shm, view, pool
        self._dirty = False
        self._finalizer = weakref.finalize(self, _release, shm, pool)

    def mark_dirty(self) -> None:
        """The host sample changed; re-publish before the next run."""
        self._dirty = True

    def close(self) -> None:
        if self._finalizer is not None:
            self._finalizer()  # idempotent; runs _release once
            self._finalizer = None
        self._shm = self._view = self._pool = None

    def _resurrect(self) -> None:
        """Tear a suspect pool down hard; the next :meth:`ensure` rebuilds.

        The pool may contain a hung worker that a graceful
        ``shutdown(wait=True)`` would block on forever, so workers are
        SIGKILLed first — their shards are re-dispatched anyway.
        """
        pool = self._pool
        if pool is not None:
            processes = getattr(pool, "_processes", None) or {}
            for process in list(processes.values()):
                try:
                    process.kill()
                except Exception:  # pragma: no cover - already dead
                    pass
        self.close()
        self.resurrection_count += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("executor.resurrections").inc()

    # -- execution -----------------------------------------------------
    def shard_bounds(self, rows: int) -> List[Tuple[int, int]]:
        """Contiguous, near-equal row shards (empty shards dropped)."""
        n = min(self.shards, rows)
        bounds = [
            ((i * rows) // n, ((i + 1) * rows) // n) for i in range(n)
        ]
        return [(a, b) for a, b in bounds if b > a]

    def run(self, fn: Callable, sample: np.ndarray, payload) -> List[np.ndarray]:
        """Map ``fn`` over the row shards; results in shard order.

        Retries infrastructure failures per the executor's
        :class:`~repro.faults.retry.RetryPolicy`; see the class
        docstring for the full recovery ladder.
        """
        return self._run_attempts(fn, sample, payload, context=None)

    def run_traced(
        self,
        fn: Callable,
        sample: np.ndarray,
        payload,
        context: SpanContext,
    ) -> List[Tuple[np.ndarray, Tuple[str, ...], float]]:
        """Like :meth:`run`, returning ``(result, path, seconds)`` per shard.

        ``context`` is the host's span snapshot; each worker parents its
        timing on it so the host can fold shard spans into the registry.
        """
        return self._run_attempts(fn, sample, payload, context=context)

    def _submit(
        self,
        fn: Callable,
        index: int,
        bounds: Tuple[int, int],
        payload,
        context: Optional[SpanContext],
        fault: Optional[WorkerFault],
    ):
        start, stop = bounds
        assert self._pool is not None
        if context is None:
            return self._pool.submit(
                _run_shard, fn, start, stop, payload, fault
            )
        return self._pool.submit(
            _run_shard_traced, fn, start, stop, payload, context, index, fault
        )

    def _draw_shm_fault(self, attempt: int) -> Optional[BaseException]:
        """Host-side shm faults: corrupt the segment or detach it."""
        if self.faults is None:
            return None
        spec = self.faults.draw("shm", attempt=attempt)
        if spec is None:
            return None
        if spec.kind == "corrupt" and self._view is not None:
            self._view.reshape(-1)[:] = np.inf  # publication guard repairs
            return None
        if spec.kind == "detach":
            self._resurrect()
            return InjectedFault(
                "shared-memory segment detached (injected fault)"
            )
        return None

    def resize(
        self,
        shards: int,
        max_workers: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> int:
        """Change the shard count, never racing an in-flight batch.

        The method waits until every run that was inside
        :meth:`_run_attempts` when ``resize`` was called has completed
        (tracked by :attr:`run_generation`), then updates the topology
        while still holding the run lock — a run arriving during the
        mutation blocks on the same lock and sees the new topology
        atomically.  The worker pool is only torn down when the pool
        *width* actually changes; the next :meth:`ensure` rebuilds it at
        the new size.  Results are invariant to the shard count (within
        the documented 1e-12 reduction budget), so resizing is purely a
        capacity action.

        Returns the effective shard count.  Raises ``TimeoutError`` if
        the in-flight generation does not drain within ``timeout``
        seconds (``None`` waits indefinitely).
        """
        if shards < 1:
            raise ValueError("shards must be at least 1")
        with self._run_cv:
            target = self.run_generation + self._active_runs
            while self.run_generation < target:
                if not self._run_cv.wait(timeout=timeout):
                    raise TimeoutError(
                        "resize timed out waiting for in-flight batches"
                    )
            workers = max_workers or min(shards, default_shard_count())
            rebuild = workers != self.max_workers
            self.shards = shards
            self.max_workers = workers
            if rebuild:
                # Pool width changes need a rebuild; shard-count-only
                # changes reuse the live pool (shard_bounds re-splits).
                self.close()
            return self.shards

    def _run_attempts(
        self,
        fn: Callable,
        sample: np.ndarray,
        payload,
        context: Optional[SpanContext],
    ) -> List:
        with self._run_cv:
            self._active_runs += 1
        try:
            return self._run_attempts_inner(fn, sample, payload, context)
        finally:
            with self._run_cv:
                self._active_runs -= 1
                self.run_generation += 1
                self._run_cv.notify_all()

    def _run_attempts_inner(
        self,
        fn: Callable,
        sample: np.ndarray,
        payload,
        context: Optional[SpanContext],
    ) -> List:
        policy = self.retry
        registry = get_registry()
        bounds = self.shard_bounds(sample.shape[0])
        results: List = [None] * len(bounds)
        pending: Set[int] = set(range(len(bounds)))
        last_error: Optional[BaseException] = None
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                delay = policy.delay(attempt - 1)
                if delay > 0:
                    time.sleep(delay)
                self.retry_count += len(pending)
                if registry.enabled:
                    registry.counter("executor.retries").inc(len(pending))
            injected = self._draw_shm_fault(attempt)
            if injected is not None:
                last_error = injected
                continue
            # (Re)build segment + pool and re-publish the sample; also
            # repairs corrupted segments via the publication guard.
            self.ensure(sample)
            try:
                futures: Dict[int, object] = {
                    index: self._submit(
                        fn,
                        index,
                        bounds[index],
                        payload,
                        context,
                        self._worker_fault(index, attempt),
                    )
                    for index in sorted(pending)
                }
            except (BrokenProcessPool, RuntimeError, OSError) as error:
                last_error = error
                self._resurrect()
                continue
            infra_error = self._collect(futures, results, pending, policy)
            if infra_error is None and not pending:
                return results
            # Harvest shards that finished before the failure was seen,
            # cancel what never started, and tear the pool down.
            for index, future in futures.items():
                if index not in pending or not future.done():
                    continue
                if future.cancelled() or future.exception() is not None:
                    continue
                results[index] = future.result()
                pending.discard(index)
            for future in futures.values():
                future.cancel()
            last_error = infra_error
            self._resurrect()
        raise ShardExecutionError(
            f"sharded execution failed after {policy.max_attempts} "
            f"attempt(s); {len(pending)} shard(s) unfinished: {last_error}"
        ) from last_error

    def _worker_fault(
        self, index: int, attempt: int
    ) -> Optional[WorkerFault]:
        if self.faults is None:
            return None
        spec = self.faults.draw("shard", shard=index, attempt=attempt)
        return self.faults.worker_fault(spec)

    def _collect(
        self,
        futures: Dict[int, object],
        results: List,
        pending: Set[int],
        policy: RetryPolicy,
    ) -> Optional[BaseException]:
        """Collect futures in shard order; return the infra error, if any.

        Genuine worker exceptions are *raised* (first failing shard
        first), after cancelling every outstanding future so a retrying
        caller never races leftover tasks from this generation.
        """
        registry = get_registry()
        deadline = (
            None
            if policy.shard_timeout is None
            else time.monotonic() + policy.shard_timeout
        )
        for index in sorted(futures):
            future = futures[index]
            try:
                if deadline is None:
                    outcome = future.result()
                else:
                    outcome = future.result(
                        timeout=max(0.0, deadline - time.monotonic())
                    )
            except FutureTimeoutError:
                self.timeout_count += 1
                if registry.enabled:
                    registry.counter("executor.timeouts").inc()
                return TimeoutError(
                    f"shard {index} exceeded its {policy.shard_timeout:.3g}s "
                    "timeout"
                )
            except BrokenProcessPool as error:
                return error
            except BaseException:
                for other in futures.values():
                    other.cancel()
                raise
            results[index] = outcome
            pending.discard(index)
        return None


class ShardedBackend(ExecutionBackend):
    """Row-sharded evaluation on a process pool over shared memory.

    Parameters
    ----------
    shards:
        Number of row shards per evaluation (default: one per core).
        Results are invariant to the shard count within 1e-12.
    max_workers:
        Pool size (default ``min(shards, cores)``).
    start_method:
        Multiprocessing start method; defaults to ``fork`` where
        available (overridable via ``REPRO_MP_START_METHOD``).
    fallback_inline:
        When worker infrastructure is unavailable (no ``/dev/shm``,
        sandboxed fork) even after the retry budget, warn and evaluate
        inline instead of failing — the backend stays numerically
        correct either way.  The demotion is governed by ``breaker``,
        not a permanent latch: after the breaker's recovery window one
        probe re-attempts the sharded path, and a successful probe
        re-arms it.
    retry:
        :class:`~repro.faults.retry.RetryPolicy` for the executor
        (per-shard timeout, bounded retries, backoff+jitter).
    breaker:
        :class:`~repro.faults.breaker.CircuitBreaker` guarding the
        sharded path (default: open after one exhausted retry budget,
        probe again after 30 s).
    faults:
        Optional :class:`~repro.faults.injector.FaultInjector` for
        deterministic chaos testing.
    """

    name = "sharded"

    def __init__(
        self,
        shards: Optional[int] = None,
        max_workers: Optional[int] = None,
        start_method: Optional[str] = None,
        fallback_inline: bool = True,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        super().__init__()
        self.executor = ShardedSampleExecutor(
            shards=shards,
            max_workers=max_workers,
            start_method=start_method,
            retry=retry,
            faults=faults,
        )
        self._fallback_inline = fallback_inline
        self.breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker(failure_threshold=1, recovery_after=30.0)
        )
        self._breaker_exported = 0
        #: Per-shard wall-clock seconds of the most recent traced run
        #: (``None`` until a run happens with metrics enabled).
        self.last_shard_seconds: Optional[Tuple[float, ...]] = None

    @property
    def shards(self) -> int:
        return self.executor.shards

    def resize(
        self, shards: int, max_workers: Optional[int] = None
    ) -> int:
        """Autoscale the shard count (see :meth:`ShardedSampleExecutor.resize`).

        Safe against in-flight batches and bitwise-neutral per shard:
        per-element math is shard-local, so any fixed-shard run and any
        resize schedule agree within the backend's 1e-12 reduction
        budget (and bit-for-bit when the shard count at evaluation time
        matches).  Returns the effective shard count.
        """
        effective = self.executor.resize(shards, max_workers=max_workers)
        registry = self._registry()
        if registry is not None and registry.enabled:
            registry.gauge("backend.shards", {"backend": self.name}).set(
                float(effective)
            )
        return effective

    def warm(self, low=None, high=None) -> bool:
        """Pre-spin the worker pool and publish the sample segment.

        The first sharded evaluation otherwise pays pool start-up and
        the one-time sample publication; warming moves that cost ahead
        of the forecast spike.  Region bounds are irrelevant (workers
        map the whole sample).
        """
        del low, high
        if self._estimator is None:
            return False
        self.executor.ensure(self.estimator._sample)
        return True

    # -- lifecycle -----------------------------------------------------
    def invalidate(self, reason: str) -> None:
        super().invalidate(reason)
        if reason == "sample":
            self.executor.mark_dirty()
        # Bandwidth travels with every payload; nothing cached to drop.

    def close(self) -> None:
        self.executor.close()

    # -- evaluation ----------------------------------------------------
    def _payload(self, low: np.ndarray, high: np.ndarray):
        estimator = self.estimator
        return (
            np.ascontiguousarray(low),
            np.ascontiguousarray(high),
            estimator.bandwidth,
            estimator.kernels,
            get_chunk_budget(),
        )

    def _export_breaker(self) -> None:
        self._breaker_exported = export_breaker_metrics(
            self.breaker,
            self._registry(),
            {"component": "backend.sharded"},
            self._breaker_exported,
        )

    def _map(self, fn: Callable, low, high) -> List[np.ndarray]:
        """Run a shard function over the pool, inline when the breaker is open."""
        estimator = self.estimator
        sample = estimator._sample
        payload = self._payload(low, high)
        registry = self._registry()
        traced = registry is not None and registry.enabled
        if self.breaker.allow():
            try:
                if traced:
                    context = current_span_context()
                    records = self.executor.run_traced(
                        fn, sample, payload, context
                    )
                    outcome = self._fold_traced(registry, records)
                else:
                    outcome = self.executor.run(fn, sample, payload)
            except (OSError, ValueError, RuntimeError) as error:
                # Detach the dead infrastructure *before* falling back:
                # a broken pool would otherwise be happily reused by
                # ``ensure()`` (the shm view still matches the sample),
                # so a later half-open probe would fail forever.
                self.executor.close()
                self.breaker.record_failure()
                self._export_breaker()
                if not self._fallback_inline:
                    raise
                warnings.warn(
                    f"sharded backend falling back to inline evaluation: "
                    f"{error}",
                    RuntimeWarning,
                    stacklevel=3,
                )
            else:
                self.breaker.record_success()
                self._export_breaker()
                return outcome
        else:
            self._export_breaker()
        bounds = self.executor.shard_bounds(sample.shape[0])
        if traced:
            context = current_span_context()
            records = []
            for index, (start, stop) in enumerate(bounds):
                started = time.perf_counter()
                result = fn(sample, start, stop, payload)
                records.append(
                    (
                        result,
                        context.child(f"shard[{index}]"),
                        time.perf_counter() - started,
                    )
                )
            return self._fold_traced(registry, records)
        return [fn(sample, start, stop, payload) for start, stop in bounds]

    def _fold_traced(self, registry, records) -> List[np.ndarray]:
        """Record shard spans/metrics; return results in shard order."""
        results: List[np.ndarray] = []
        seconds: List[float] = []
        labels = {"backend": self.name}
        for result, path, shard_seconds in records:
            registry.record_span(path, shard_seconds, labels)
            registry.histogram("backend.shard_seconds", labels).observe(
                shard_seconds
            )
            results.append(result)
            seconds.append(shard_seconds)
        self.last_shard_seconds = tuple(seconds)
        return results

    def selectivity_block(
        self, low: np.ndarray, high: np.ndarray
    ) -> np.ndarray:
        self._count(low.shape[0])
        partials = self._map(_shard_contribution_sums, low, high)
        total = np.sum(np.stack(partials, axis=0), axis=0)
        return total / self.estimator.sample_size

    def contribution_block(
        self, low: np.ndarray, high: np.ndarray
    ) -> np.ndarray:
        self._count(low.shape[0])
        slabs = self._map(_shard_contribution_slab, low, high)
        return np.concatenate(slabs, axis=1)

    def masses_block(self, low: np.ndarray, high: np.ndarray) -> np.ndarray:
        self._count(low.shape[0])
        slabs = self._map(_shard_masses_slab, low, high)
        return np.concatenate(slabs, axis=1)

    def gradient_block(
        self,
        low: np.ndarray,
        high: np.ndarray,
        dimension_masses: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        # ``dimension_masses`` is a host-side reuse optimisation; shipping
        # the (q, s, d) tensor to workers would cost more than recomputing
        # the (bitwise-identical) masses shard-locally, so it is ignored.
        self._count(low.shape[0])
        partials = self._map(_shard_gradient_sums, low, high)
        total = np.sum(np.stack(partials, axis=0), axis=0)
        return total / self.estimator.sample_size
