"""Rule-based bandwidth selectors (Section 3.2).

These are the cheap, closed-form selectors that assume the data is
approximately normal.  Scott's rule (Eq. 3) is both the paper's
initialisation for the self-tuning estimators and the entire bandwidth
story of the *Heuristic* baseline.  Silverman's rule-of-thumb is provided
as a closely related variant.

Real data is rarely normal, which is why these rules tend to oversmooth —
the motivation for the feedback-driven optimisation in
:mod:`repro.core.optimize` and :mod:`repro.core.adaptive`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["scott_bandwidth", "silverman_bandwidth", "sample_std"]

#: Floor applied to degenerate (zero-variance) dimensions so the estimator
#: and the optimiser always start from a valid positive bandwidth.
MIN_BANDWIDTH = 1e-9


def sample_std(sample: np.ndarray) -> np.ndarray:
    """Per-dimension standard deviation of the sample.

    Computed via the shifted identity
    ``sigma^2 = E[(x - x_0)^2] - E[x - x_0]^2`` with ``x_0`` the first
    sample row.  The shift is free on the device (each work-item subtracts
    a constant before squaring) and the evaluation remains the paper's two
    *parallel* binary reductions — sums of the shifted values and of their
    squares (Section 5.2) — but, unlike the unshifted ``E[x^2] - E[x]^2``,
    it does not catastrophically cancel for data with a large common
    offset (e.g. all values near 1e8, where the naive identity collapses
    the variance to zero and Scott bandwidths to the floor).
    """
    sample = np.asarray(sample, dtype=np.float64)
    if sample.ndim != 2 or sample.shape[0] == 0:
        raise ValueError("sample must be a non-empty (s, d) array")
    shifted = sample - sample[0]
    mean = shifted.mean(axis=0)
    mean_sq = (shifted * shifted).mean(axis=0)
    variance = np.maximum(mean_sq - mean * mean, 0.0)
    return np.sqrt(variance)


def scott_bandwidth(sample: np.ndarray) -> np.ndarray:
    """Scott's rule (Eq. 3): ``h_i = s^(-1/(d+4)) * sigma_i``.

    Optimal under the (usually wrong) assumption that the underlying
    distribution is normal.  Zero-variance dimensions receive the floor
    :data:`MIN_BANDWIDTH` instead of an invalid zero bandwidth.
    """
    sample = np.asarray(sample, dtype=np.float64)
    s, d = sample.shape
    factor = s ** (-1.0 / (d + 4.0))
    return np.maximum(factor * sample_std(sample), MIN_BANDWIDTH)


def silverman_bandwidth(sample: np.ndarray) -> np.ndarray:
    """Silverman's rule-of-thumb, the classic variant of Scott's rule.

    ``h_i = (4 / (d + 2))^(1/(d+4)) * s^(-1/(d+4)) * sigma_i``
    """
    sample = np.asarray(sample, dtype=np.float64)
    s, d = sample.shape
    factor = (4.0 / (d + 2.0)) ** (1.0 / (d + 4.0)) * s ** (-1.0 / (d + 4.0))
    return np.maximum(factor * sample_std(sample), MIN_BANDWIDTH)
