"""Discrete-data support: an ordered-discrete kernel (Section 8).

The paper notes that real databases mix continuous and discrete
attributes, points at the mixed-variable KDE literature (Li & Racine
[27]), and observes that its own estimator already degrades gracefully:
on discrete attributes the bandwidth optimiser drives the (Gaussian)
bandwidth towards zero and the estimator effectively counts matching
tuples.  This module implements the proper statistical treatment for
*ordered* discrete attributes (integer codes): the Wang-van Ryzin
kernel

.. math::
    K_\\lambda(v, t) = \\begin{cases}
        1 - \\lambda & v = t \\\\
        \\frac{1}{2} (1 - \\lambda) \\lambda^{|v - t|} & v \\ne t
    \\end{cases}
    \\qquad \\lambda \\in (0, 1)

which sums to one over the integers and smooths geometrically with the
ordinal distance.

To plug into the rest of the library unchanged — the estimator, the
gradient machinery, the batch optimiser and the online learner all
assume a *positive real bandwidth* — the kernel reparameterises
``lambda = h / (1 + h)``: ``h -> 0`` recovers exact counting (the
degradation the paper describes) and ``h -> inf`` maximal smoothing.
All interval masses and their bandwidth derivatives are closed-form
geometric sums, so optimisation works exactly as for the Gaussian.

Mix kernels per dimension via the estimator's per-dimension kernel
support::

    est = KernelDensityEstimator(
        sample, bandwidth,
        kernel=["gaussian", "ordered_discrete", "gaussian"],
    )
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .kernels import Kernel, register_kernel

__all__ = ["OrderedDiscreteKernel", "encode_categories"]


def _lambda_of(bandwidth: Union[float, np.ndarray]) -> np.ndarray:
    """The reparameterisation ``lambda = h / (1 + h)`` into ``(0, 1)``."""
    h = np.asarray(bandwidth, dtype=np.float64)
    return h / (1.0 + h)


class OrderedDiscreteKernel(Kernel):
    """Wang-van Ryzin kernel over integer-coded ordered categories.

    Data values are rounded to the nearest integer; interval masses sum
    the kernel over the integers inside ``[low, high]`` in closed form.
    """

    name = "ordered_discrete"

    # -- standardised forms --------------------------------------------
    # pdf/cdf on the standardised axis are not meaningful for a discrete
    # kernel; interval_mass/interval_mass_grad below are the real API.
    def pdf(self, z: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError(
            "the ordered-discrete kernel has no continuous density; "
            "use interval_mass"
        )

    def cdf(self, z: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError(
            "the ordered-discrete kernel has no continuous CDF; "
            "use interval_mass"
        )

    # -- interval contributions ----------------------------------------
    def interval_mass(
        self,
        low: Union[float, np.ndarray],
        high: Union[float, np.ndarray],
        points: np.ndarray,
        bandwidth: Union[float, np.ndarray],
    ) -> np.ndarray:
        """Mass on the integers in ``[low, high]`` for centres ``points``.

        Closed form per centre ``t`` with ``q = lambda``, ``a = ceil(low)``,
        ``b = floor(high)``:

        * ``t`` inside ``[a, b]``:   ``1 - (q^{t-a+1} + q^{b-t+1}) / 2``
        * ``t < a``:                 ``(q^{a-t} - q^{b-t+1}) / 2``
        * ``t > b``:                 ``(q^{t-b} - q^{t-a+1}) / 2``
        """
        t = np.rint(np.asarray(points, dtype=np.float64))
        a = np.ceil(np.asarray(low, dtype=np.float64))
        b = np.floor(np.asarray(high, dtype=np.float64))
        q = _lambda_of(bandwidth)
        empty = b < a

        with np.errstate(invalid="ignore", over="ignore"):
            inside = (t >= a) & (t <= b)
            below = t < a
            mass_inside = 1.0 - 0.5 * (
                np.power(q, t - a + 1.0) + np.power(q, b - t + 1.0)
            )
            mass_below = 0.5 * (np.power(q, a - t) - np.power(q, b - t + 1.0))
            mass_above = 0.5 * (np.power(q, t - b) - np.power(q, t - a + 1.0))
        result = np.where(inside, mass_inside,
                          np.where(below, mass_below, mass_above))
        result = np.where(empty, 0.0, result)
        return np.clip(result, 0.0, 1.0)

    def interval_mass_grad(
        self,
        low: Union[float, np.ndarray],
        high: Union[float, np.ndarray],
        points: np.ndarray,
        bandwidth: Union[float, np.ndarray],
    ) -> np.ndarray:
        """Derivative of :meth:`interval_mass` with respect to ``h``.

        Differentiates the geometric closed forms in ``q`` and chains
        through ``dq/dh = 1 / (1 + h)^2``.
        """
        t = np.rint(np.asarray(points, dtype=np.float64))
        a = np.ceil(np.asarray(low, dtype=np.float64))
        b = np.floor(np.asarray(high, dtype=np.float64))
        h = np.asarray(bandwidth, dtype=np.float64)
        q = _lambda_of(h)
        dq_dh = 1.0 / ((1.0 + h) * (1.0 + h))
        empty = b < a

        def dpow(exponent: np.ndarray) -> np.ndarray:
            # d/dq q^e = e q^{e-1}; exponents here are always >= 1 when
            # the branch applies, so the power is well-defined at q -> 0.
            with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
                return exponent * np.power(q, exponent - 1.0)

        inside = (t >= a) & (t <= b)
        below = t < a
        grad_inside = -0.5 * (dpow(t - a + 1.0) + dpow(b - t + 1.0))
        grad_below = 0.5 * (dpow(a - t) - dpow(b - t + 1.0))
        grad_above = 0.5 * (dpow(t - b) - dpow(t - a + 1.0))
        result = np.where(inside, grad_inside,
                          np.where(below, grad_below, grad_above))
        result = np.where(empty, 0.0, result)
        return result * dq_dh


register_kernel(OrderedDiscreteKernel)


def encode_categories(values: np.ndarray) -> tuple:
    """Integer-encode an unordered categorical column.

    Returns ``(codes, categories)`` where ``codes`` is a float array of
    integer codes usable as an ordered-discrete estimator dimension and
    ``categories`` maps code -> original value.  Codes follow the sorted
    category order; for genuinely unordered data with many categories an
    unordered (Aitchison-Aitken) kernel would be preferable, but code
    order works well for the low-cardinality columns databases index.
    """
    values = np.asarray(values)
    categories, codes = np.unique(values, return_inverse=True)
    return codes.astype(np.float64), categories
