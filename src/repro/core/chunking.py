"""Chunk-budget policy for the memory-bounded evaluation paths.

The batched estimation kernels of :mod:`repro.core.estimator` never
materialise a full ``(q, s, d)`` intermediate: they walk the query batch
in chunks sized so each per-dimension ``(b, s)`` float64 block stays
cache-resident.  Historically the chunk budgets were hard-coded module
constants (``131_072`` elements for the batch paths, ``4_000_000`` for
:meth:`~repro.core.estimator.KernelDensityEstimator.density`); this
module makes them a single tunable policy so execution backends and
benchmarks can adjust chunking without editing source.

Resolution order for the batch budget:

1. an explicit :func:`set_chunk_budget` call,
2. the ``REPRO_CHUNK_BUDGET`` environment variable (elements),
3. an L2-cache-derived default: ``l2_bytes // 16`` elements, i.e. two
   float64 ``(b, s)`` working blocks per L2 slice (the running product
   and the incoming per-dimension masses), read from sysfs on Linux and
   falling back to a 2 MiB L2 (which yields the historical ``131_072``).

The density budget scales proportionally (the historical ratio of the
two constants, ``x32``) unless overridden explicitly.

Chunk sizes never change results — every batched path computes each
query row independently and reduces along the sample axis only — so this
is purely a performance knob.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = [
    "DENSITY_BUDGET_RATIO",
    "default_chunk_budget",
    "detect_l2_cache_bytes",
    "get_chunk_budget",
    "get_density_chunk_budget",
    "set_chunk_budget",
]

#: Environment override (batch budget, in ``(b, s, d)`` float64 elements).
ENV_VAR = "REPRO_CHUNK_BUDGET"

#: Historical ratio between the ``density()`` chunk budget (4_000_000)
#: and the batch budget (131_072), kept so one knob scales both paths.
DENSITY_BUDGET_RATIO = 32

#: Fallback L2 size when the platform exposes no cache topology.
_FALLBACK_L2_BYTES = 2 * 1024 * 1024

#: Clamp for derived defaults, so exotic cache reports cannot produce
#: degenerate (chunk == 1) or memory-hostile budgets.
_MIN_BUDGET = 16_384
_MAX_BUDGET = 8_388_608

_override: Optional[int] = None


def detect_l2_cache_bytes() -> Optional[int]:
    """Best-effort L2 data-cache size in bytes (``None`` when unknown)."""
    base = "/sys/devices/system/cpu/cpu0/cache"
    try:
        indexes = sorted(os.listdir(base))
    except OSError:
        return None
    for index in indexes:
        if not index.startswith("index"):
            continue
        try:
            with open(os.path.join(base, index, "level")) as fh:
                level = fh.read().strip()
            if level != "2":
                continue
            with open(os.path.join(base, index, "size")) as fh:
                size = fh.read().strip()
        except OSError:
            continue
        try:
            if size.endswith("K"):
                return int(size[:-1]) * 1024
            if size.endswith("M"):
                return int(size[:-1]) * 1024 * 1024
            return int(size)
        except ValueError:
            continue
    return None


def default_chunk_budget() -> int:
    """The L2-derived (or fallback) batch chunk budget, in elements."""
    l2 = detect_l2_cache_bytes() or _FALLBACK_L2_BYTES
    return int(min(_MAX_BUDGET, max(_MIN_BUDGET, l2 // 16)))


def get_chunk_budget() -> int:
    """Current batch chunk budget (``(b, s, d)`` elements per chunk)."""
    if _override is not None:
        return _override
    env = os.environ.get(ENV_VAR)
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"{ENV_VAR} must be a positive integer, got {env!r}"
            )
        if value <= 0:
            raise ValueError(f"{ENV_VAR} must be positive, got {value}")
        return value
    return default_chunk_budget()


def get_density_chunk_budget() -> int:
    """Chunk budget for ``density()``'s ``(n, s, d)`` intermediates."""
    return get_chunk_budget() * DENSITY_BUDGET_RATIO


def set_chunk_budget(elements: Optional[int]) -> None:
    """Override the chunk budget process-wide; ``None`` restores defaults.

    The value is the soft cap on the batched paths' per-chunk
    ``(b, s, d)`` float64 element count; the ``density()`` budget scales
    with it by :data:`DENSITY_BUDGET_RATIO`.
    """
    global _override
    if elements is None:
        _override = None
        return
    elements = int(elements)
    if elements <= 0:
        raise ValueError("chunk budget must be a positive element count")
    _override = elements
