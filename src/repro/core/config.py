"""Configuration dataclasses for the self-tuning estimator.

Defaults reproduce the constants reported in the paper: the adaptive
learner's parameters come from Section 4.1 / Listing 1 (mini-batch size 10,
smoothing 0.9, learning rates in ``[1e-6, 50]``, factors 1.2 / 0.5 — the
RMSprop suggestions of Tieleman & Hinton), the Karma parameters from
Section 4.2 (saturation ``K_max = 4``), and logarithmic bandwidth updates
are on by default per Section 5.5 (improvements in 68% of experiments).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["AdaptiveConfig", "KarmaConfig", "SelfTuningConfig"]


@dataclass(frozen=True)
class AdaptiveConfig:
    """Parameters of the online RMSprop bandwidth learner (Listing 1)."""

    #: Mini-batch size N: gradients averaged per model update.
    batch_size: int = 10
    #: Smoothing rate alpha of the running gradient-magnitude average.
    smoothing: float = 0.9
    #: Smallest allowed per-dimension learning rate (lambda_min).
    learning_rate_min: float = 1e-6
    #: Largest allowed per-dimension learning rate (lambda_max).
    learning_rate_max: float = 50.0
    #: Multiplicative increase on consistent gradient direction (lambda_inc).
    learning_rate_increase: float = 1.2
    #: Multiplicative decrease on direction change (lambda_dec).
    learning_rate_decrease: float = 0.5
    #: Initial per-dimension learning rate.
    initial_learning_rate: float = 1.0
    #: Update log(h) instead of h (Appendix D).  Removes the positivity
    #: safeguard, which only applies to linear-space updates.
    log_updates: bool = True
    #: Trust region for logarithmic updates: the bandwidth changes by at
    #: most a factor of exp(max_log_step) per mini-batch.  This is the
    #: log-space analogue of the linear-space positivity safeguard
    #: ("at most half the current value towards zero").
    max_log_step: float = 0.7
    #: Numerical floor inside the RMS normalisation.
    epsilon: float = 1e-8

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if not 0.0 <= self.smoothing < 1.0:
            raise ValueError("smoothing must lie in [0, 1)")
        if self.learning_rate_min <= 0:
            raise ValueError("learning_rate_min must be positive")
        if self.learning_rate_max < self.learning_rate_min:
            raise ValueError("learning_rate_max must be >= learning_rate_min")
        if self.learning_rate_increase <= 1.0:
            raise ValueError("learning_rate_increase must exceed 1")
        if not 0.0 < self.learning_rate_decrease < 1.0:
            raise ValueError("learning_rate_decrease must lie in (0, 1)")
        if not (
            self.learning_rate_min
            <= self.initial_learning_rate
            <= self.learning_rate_max
        ):
            raise ValueError("initial_learning_rate outside the allowed range")
        if self.max_log_step <= 0:
            raise ValueError("max_log_step must be positive")
        if self.epsilon <= 0:
            raise ValueError("epsilon must be positive")


@dataclass(frozen=True)
class KarmaConfig:
    """Parameters of Karma-based sample maintenance (Section 4.2)."""

    #: Saturation constant K_max of Eq. (8); the paper found 4 works well.
    k_max: float = 4.0
    #: Cumulative-karma threshold below which a point is declared outdated.
    threshold: float = -2.0
    #: Enable the empty-region replacement shortcut of Appendix E.
    empty_region_shortcut: bool = True

    def __post_init__(self) -> None:
        if self.threshold >= self.k_max:
            raise ValueError("threshold must lie below k_max")


@dataclass(frozen=True)
class SelfTuningConfig:
    """Top-level configuration of :class:`repro.core.model.SelfTuningKDE`."""

    kernel: str = "gaussian"
    #: Loss driving both the adaptive updates and the karma scores.
    loss: str = "squared"
    adaptive: AdaptiveConfig = field(default_factory=AdaptiveConfig)
    karma: KarmaConfig = field(default_factory=KarmaConfig)
    #: Enable the online bandwidth learner.
    adapt_bandwidth: bool = True
    #: Enable karma-based sample maintenance.
    maintain_sample: bool = True
    #: Enable reservoir sampling for inserts.
    reservoir_inserts: bool = True
