"""The multivariate KDE range-selectivity estimator (Eqs. 1, 2 and 13).

A :class:`KernelDensityEstimator` holds a data sample, a per-dimension
(diagonal) bandwidth vector and a product kernel.  The selectivity of a
hyper-rectangular query region is the average over the sample of each
point's *individual probability mass contribution* — the closed form of
Appendix B:

.. math::
    \\hat p_H^{(i)}(\\Omega) = \\prod_{j=1}^{d}
        \\left[ F\\left(\\frac{u_j - t_j^{(i)}}{h_j}\\right)
              - F\\left(\\frac{l_j - t_j^{(i)}}{h_j}\\right) \\right]

with ``F`` the kernel CDF (for the Gaussian this is exactly Eq. (13),
``F(z) = (1 + erf(z / sqrt(2))) / 2``).

The per-point contributions are first-class citizens here because the
self-tuning machinery needs them: the Karma maintenance of Section 4.2
re-derives leave-one-out estimates from them (Eq. 6), and the paper's GPU
implementation explicitly retains the contribution buffer between the
estimate and the feedback step (Section 5.4).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from ..geometry import Box
from .kernels import Kernel, get_kernel

__all__ = ["KernelDensityEstimator"]


class KernelDensityEstimator:
    """Product-kernel density model over a data sample.

    Parameters
    ----------
    sample:
        ``(s, d)`` array of sampled tuples.  A copy is stored; the sample
        is mutable through :meth:`replace_points` (sample maintenance).
    bandwidth:
        Per-dimension bandwidth vector ``(d,)``; all entries must be
        strictly positive (the constraint of optimisation problem (5)).
    kernel:
        Kernel name or instance; defaults to the Gaussian of Eq. (9).
    """

    def __init__(
        self,
        sample: np.ndarray,
        bandwidth: Union[Sequence[float], np.ndarray],
        kernel: Union[str, Kernel, Sequence[Union[str, Kernel]]] = "gaussian",
    ) -> None:
        sample = np.array(sample, dtype=np.float64, copy=True)
        if sample.ndim != 2:
            raise ValueError("sample must be a two-dimensional (s, d) array")
        if sample.shape[0] == 0:
            raise ValueError("sample must contain at least one point")
        if not np.all(np.isfinite(sample)):
            raise ValueError("sample contains non-finite values")
        self._sample = sample
        if isinstance(kernel, (str, Kernel)):
            self._kernels = tuple([get_kernel(kernel)] * sample.shape[1])
        else:
            kernels = tuple(get_kernel(k) for k in kernel)
            if len(kernels) != sample.shape[1]:
                raise ValueError(
                    f"need one kernel per dimension ({sample.shape[1]}), "
                    f"got {len(kernels)}"
                )
            self._kernels = kernels
        self._bandwidth = np.empty(sample.shape[1], dtype=np.float64)
        self.bandwidth = bandwidth  # runs validation

    # ------------------------------------------------------------------
    # Attributes
    # ------------------------------------------------------------------
    @property
    def sample(self) -> np.ndarray:
        """The underlying sample (read-only view)."""
        view = self._sample.view()
        view.flags.writeable = False
        return view

    @property
    def sample_size(self) -> int:
        return self._sample.shape[0]

    @property
    def dimensions(self) -> int:
        return self._sample.shape[1]

    @property
    def kernel(self) -> Kernel:
        """The shared kernel (raises for mixed per-dimension kernels)."""
        first = self._kernels[0]
        if any(k is not first for k in self._kernels):
            raise ValueError(
                "estimator uses mixed per-dimension kernels; use kernel_for()"
            )
        return first

    @property
    def kernels(self) -> tuple:
        """Per-dimension kernel tuple (mixed-data support, Section 8)."""
        return self._kernels

    def kernel_for(self, dimension: int) -> Kernel:
        """The kernel applied along ``dimension``."""
        return self._kernels[dimension]

    @property
    def bandwidth(self) -> np.ndarray:
        """Per-dimension bandwidth vector (copy)."""
        return self._bandwidth.copy()

    @bandwidth.setter
    def bandwidth(self, value: Union[Sequence[float], np.ndarray]) -> None:
        value = np.asarray(value, dtype=np.float64)
        if value.ndim == 0:
            value = np.full(self.dimensions, float(value))
        if value.shape != (self.dimensions,):
            raise ValueError(
                f"bandwidth must have shape ({self.dimensions},), got {value.shape}"
            )
        if np.any(~np.isfinite(value)) or np.any(value <= 0.0):
            raise ValueError("bandwidth entries must be positive and finite")
        self._bandwidth = value.copy()

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def _check_query(self, query: Box) -> None:
        if query.dimensions != self.dimensions:
            raise ValueError(
                f"query has {query.dimensions} dimensions, "
                f"estimator has {self.dimensions}"
            )

    def contributions(self, query: Box) -> np.ndarray:
        """Per-point probability mass contributions ``p_H^(i)(query)``.

        Returns an ``(s,)`` vector with entries in ``[0, 1]``; the
        selectivity estimate is its mean (Eq. 2).
        """
        self._check_query(query)
        result = np.ones(self.sample_size, dtype=np.float64)
        for j in range(self.dimensions):
            result *= self._kernels[j].interval_mass(
                query.low[j], query.high[j], self._sample[:, j], self._bandwidth[j]
            )
        return result

    def selectivity(self, query: Box) -> float:
        """Selectivity estimate for ``query``: mean per-point contribution."""
        return float(self.contributions(query).mean())

    def selectivity_many(self, queries: Sequence[Box]) -> np.ndarray:
        """Selectivity estimates for a sequence of queries."""
        return np.array([self.selectivity(q) for q in queries], dtype=np.float64)

    def density(self, points: np.ndarray) -> np.ndarray:
        """Pointwise density estimate ``p_hat(x)`` of Eq. (1).

        Not used for selectivity estimation itself (which integrates the
        density) but handy for diagnostics, plotting and tests.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[1] != self.dimensions:
            raise ValueError("points have the wrong dimensionality")
        h = self._bandwidth
        # (n, s, d) standardised distances; evaluated chunk-wise to bound memory.
        out = np.empty(points.shape[0], dtype=np.float64)
        norm = float(np.prod(h)) * self.sample_size
        chunk = max(1, int(4_000_000 / max(1, self.sample_size * self.dimensions)))
        for start in range(0, points.shape[0], chunk):
            block = points[start : start + chunk]
            z = (block[:, None, :] - self._sample[None, :, :]) / h
            k = np.ones(z.shape[:2], dtype=np.float64)
            for j in range(self.dimensions):
                k *= self._kernels[j].pdf(z[:, :, j])
            out[start : start + chunk] = k.sum(axis=1) / norm
        return out

    # ------------------------------------------------------------------
    # Gradient (Eq. 15-17)
    # ------------------------------------------------------------------
    def selectivity_gradient(
        self, query: Box, dimension_masses: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Gradient ``d p_hat(query) / d h`` — the closed form of Eq. (17).

        Parameters
        ----------
        query:
            The query region.
        dimension_masses:
            Optional precomputed ``(s, d)`` matrix of per-dimension interval
            masses (see :meth:`dimension_masses`); pass it when computing
            both the estimate and the gradient for the same query to avoid
            recomputing the erf terms.
        """
        self._check_query(query)
        if dimension_masses is None:
            dimension_masses = self.dimension_masses(query)
        s, d = dimension_masses.shape
        grad = np.empty(d, dtype=np.float64)
        # Product over all dimensions except i, computed stably even when
        # individual factors are zero (prefix/suffix products).
        prefix = np.ones((s, d + 1), dtype=np.float64)
        suffix = np.ones((s, d + 1), dtype=np.float64)
        for j in range(d):
            prefix[:, j + 1] = prefix[:, j] * dimension_masses[:, j]
        for j in range(d - 1, -1, -1):
            suffix[:, j] = suffix[:, j + 1] * dimension_masses[:, j]
        for i in range(d):
            others = prefix[:, i] * suffix[:, i + 1]
            dmass = self._kernels[i].interval_mass_grad(
                query.low[i], query.high[i], self._sample[:, i], self._bandwidth[i]
            )
            grad[i] = float((dmass * others).mean())
        return grad

    def dimension_masses(self, query: Box) -> np.ndarray:
        """``(s, d)`` matrix of per-dimension interval masses for ``query``.

        Row products give :meth:`contributions`; the matrix is shared
        between the estimate and gradient computations (mirroring the
        retained temporary buffer of Section 5.4).
        """
        self._check_query(query)
        masses = np.empty((self.sample_size, self.dimensions), dtype=np.float64)
        for j in range(self.dimensions):
            masses[:, j] = self._kernels[j].interval_mass(
                query.low[j], query.high[j], self._sample[:, j], self._bandwidth[j]
            )
        return masses

    # ------------------------------------------------------------------
    # Sample maintenance hooks
    # ------------------------------------------------------------------
    def replace_points(self, indices: np.ndarray, rows: np.ndarray) -> None:
        """Overwrite sample points in place (single-transfer row updates).

        This mirrors the paper's row-major device buffer, where replacing a
        sample point is one PCIe write (Section 5.1).
        """
        indices = np.asarray(indices, dtype=np.intp)
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        if rows.shape != (indices.size, self.dimensions):
            raise ValueError(
                f"rows must have shape ({indices.size}, {self.dimensions})"
            )
        if indices.size and (
            indices.min() < 0 or indices.max() >= self.sample_size
        ):
            raise IndexError("replacement index out of range")
        self._sample[indices] = rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KernelDensityEstimator(s={self.sample_size}, d={self.dimensions}, "
            f"kernel={self._kernels[0].name!r})"
        )
