"""The multivariate KDE range-selectivity estimator (Eqs. 1, 2 and 13).

A :class:`KernelDensityEstimator` holds a data sample, a per-dimension
(diagonal) bandwidth vector and a product kernel.  The selectivity of a
hyper-rectangular query region is the average over the sample of each
point's *individual probability mass contribution* — the closed form of
Appendix B:

.. math::
    \\hat p_H^{(i)}(\\Omega) = \\prod_{j=1}^{d}
        \\left[ F\\left(\\frac{u_j - t_j^{(i)}}{h_j}\\right)
              - F\\left(\\frac{l_j - t_j^{(i)}}{h_j}\\right) \\right]

with ``F`` the kernel CDF (for the Gaussian this is exactly Eq. (13),
``F(z) = (1 + erf(z / sqrt(2))) / 2``).

The per-point contributions are first-class citizens here because the
self-tuning machinery needs them: the Karma maintenance of Section 4.2
re-derives leave-one-out estimates from them (Eq. 6), and the paper's GPU
implementation explicitly retains the contribution buffer between the
estimate and the feedback step (Section 5.4).
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence, Union

import numpy as np

from ..geometry import Box, QueryBatch
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.spans import span
from ..obs.trace import EstimationTrace
from . import chunking
from .backends import ExecutionBackend, resolve_backend
from .kernels import Kernel, get_kernel
from .state import ModelState

__all__ = ["KernelDensityEstimator"]

#: Legacy override for the per-chunk ``(b, s, d)`` element cap of the
#: batched evaluation paths.  ``None`` (the default) defers to the
#: tunable policy of :mod:`repro.core.chunking` (env override +
#: L2-cache-derived default); setting an integer here pins the budget
#: for this module, which tests use to force tiny chunks.
_BATCH_ELEMENT_BUDGET: Optional[int] = None


class KernelDensityEstimator:
    """Product-kernel density model over a data sample.

    Parameters
    ----------
    sample:
        ``(s, d)`` array of sampled tuples.  A copy is stored; the sample
        is mutable through :meth:`replace_rows` (sample maintenance).
    bandwidth:
        Per-dimension bandwidth vector ``(d,)``; all entries must be
        strictly positive (the constraint of optimisation problem (5)).
    kernel:
        Kernel name or instance; defaults to the Gaussian of Eq. (9).
    backend:
        Execution backend for the batched evaluation paths: a registry
        name (``"numpy"``, ``"sharded"``, ``"cached"``, ``"grid"``,
        ``"hashing"``), a configured
        :class:`~repro.core.backends.ExecutionBackend` instance, or
        ``None`` for the default single-thread numpy strategy.  The
        exact backends (numpy/sharded/cached) are numerically
        equivalent within 1e-12 — the knob only changes how the work
        is scheduled; the sublinear pair (grid/hashing) trades a
        documented, bounded error for per-query cost that no longer
        scales with the sample (see their class docstrings).
    metrics:
        Metrics registry the estimation entry points report into (see
        :mod:`repro.obs`).  ``None`` (the default) defers to the
        process-wide registry *at call time*, so
        :func:`repro.obs.enable_metrics` instruments existing models;
        pass a registry to scope this model's signals explicitly.
    """

    #: Display name used by the evaluation harness reports.
    name = "KDE"

    def __init__(
        self,
        sample: np.ndarray,
        bandwidth: Union[Sequence[float], np.ndarray],
        kernel: Union[str, Kernel, Sequence[Union[str, Kernel]]] = "gaussian",
        backend: Union[str, ExecutionBackend, None] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        sample = np.array(sample, dtype=np.float64, copy=True)
        if sample.ndim != 2:
            raise ValueError("sample must be a two-dimensional (s, d) array")
        if sample.shape[0] == 0:
            raise ValueError("sample must contain at least one point")
        if not np.all(np.isfinite(sample)):
            raise ValueError("sample contains non-finite values")
        self._sample = sample
        if isinstance(kernel, (str, Kernel)):
            self._kernels = tuple([get_kernel(kernel)] * sample.shape[1])
        else:
            kernels = tuple(get_kernel(k) for k in kernel)
            if len(kernels) != sample.shape[1]:
                raise ValueError(
                    f"need one kernel per dimension ({sample.shape[1]}), "
                    f"got {len(kernels)}"
                )
            self._kernels = kernels
        self._bandwidth_epoch = 0
        self._sample_epoch = 0
        self._metrics = metrics
        self._backend: Optional[ExecutionBackend] = None
        self._bandwidth = np.empty(sample.shape[1], dtype=np.float64)
        self.bandwidth = bandwidth  # runs validation
        self._backend = resolve_backend(backend).bind(self)

    # ------------------------------------------------------------------
    # Attributes
    # ------------------------------------------------------------------
    @property
    def sample(self) -> np.ndarray:
        """The underlying sample (read-only view)."""
        view = self._sample.view()
        view.flags.writeable = False
        return view

    @property
    def sample_size(self) -> int:
        return self._sample.shape[0]

    @property
    def dimensions(self) -> int:
        return self._sample.shape[1]

    @property
    def kernel(self) -> Kernel:
        """The shared kernel (raises for mixed per-dimension kernels)."""
        first = self._kernels[0]
        if any(k is not first for k in self._kernels):
            raise ValueError(
                "estimator uses mixed per-dimension kernels; use kernel_for()"
            )
        return first

    @property
    def kernels(self) -> tuple:
        """Per-dimension kernel tuple (mixed-data support, Section 8)."""
        return self._kernels

    def kernel_for(self, dimension: int) -> Kernel:
        """The kernel applied along ``dimension``."""
        return self._kernels[dimension]

    @property
    def bandwidth(self) -> np.ndarray:
        """Per-dimension bandwidth vector (copy)."""
        return self._bandwidth.copy()

    @bandwidth.setter
    def bandwidth(self, value: Union[Sequence[float], np.ndarray]) -> None:
        value = np.asarray(value, dtype=np.float64)
        if value.ndim == 0:
            value = np.full(self.dimensions, float(value))
        if value.shape != (self.dimensions,):
            raise ValueError(
                f"bandwidth must have shape ({self.dimensions},), got {value.shape}"
            )
        if np.any(~np.isfinite(value)) or np.any(value <= 0.0):
            raise ValueError("bandwidth entries must be positive and finite")
        self._bandwidth = value.copy()
        self._bandwidth_epoch += 1
        if self._backend is not None:
            self._backend.invalidate("bandwidth")

    # ------------------------------------------------------------------
    # Execution backend & epochs
    # ------------------------------------------------------------------
    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend serving the batched evaluation paths."""
        assert self._backend is not None
        return self._backend

    @backend.setter
    def backend(self, value: Union[str, ExecutionBackend, None]) -> None:
        """Swap the execution backend (closing the previous one)."""
        new = resolve_backend(value).bind(self)
        old = self._backend
        self._backend = new
        if old is not None and old is not new:
            old.close()

    @property
    def obs(self) -> MetricsRegistry:
        """The metrics registry this model reports into.

        Resolves the process-wide registry dynamically when no registry
        was injected at construction, so enabling metrics after the model
        exists still instruments it.
        """
        return self._metrics if self._metrics is not None else get_registry()

    @property
    def bandwidth_epoch(self) -> int:
        """Monotone counter bumped on every bandwidth replacement.

        Backends key derived state (e.g. cached CDF terms) on the epoch
        pair so entries from superseded model states can never be
        returned.
        """
        return self._bandwidth_epoch

    @property
    def sample_epoch(self) -> int:
        """Monotone counter bumped on every in-place sample rewrite."""
        return self._sample_epoch

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def _check_query(self, query: Box) -> None:
        if query.dimensions != self.dimensions:
            raise ValueError(
                f"query has {query.dimensions} dimensions, "
                f"estimator has {self.dimensions}"
            )

    def contributions(self, query: Box) -> np.ndarray:
        """Per-point probability mass contributions ``p_H^(i)(query)``.

        Returns an ``(s,)`` vector with entries in ``[0, 1]``; the
        selectivity estimate is its mean (Eq. 2).
        """
        self._check_query(query)
        result = np.ones(self.sample_size, dtype=np.float64)
        for j in range(self.dimensions):
            result *= self._kernels[j].interval_mass(
                query.low[j], query.high[j], self._sample[:, j], self._bandwidth[j]
            )
        return result

    def selectivity(self, query: Box) -> float:
        """Selectivity estimate for ``query``: mean per-point contribution."""
        registry = self.obs
        if not registry.enabled:
            return float(self.contributions(query).mean())
        backend_name = self.backend.name
        snapshot = self._cache_snapshot()
        with span("estimate", registry, backend=backend_name):
            value = float(self.contributions(query).mean())
        self._emit_traces(
            registry,
            (value,),
            snapshot,
            QueryBatch(query.low[None, :], query.high[None, :]),
        )
        return value

    # ------------------------------------------------------------------
    # Estimator-protocol facade (the harness's three-call protocol)
    # ------------------------------------------------------------------
    def estimate(self, query: Box) -> float:
        """Selectivity estimate — the estimator-protocol spelling.

        Makes the plain KDE model satisfy the
        :class:`~repro.baselines.base.SelectivityEstimator` protocol, so
        the same harness code drives it and every baseline.
        """
        return self.selectivity(query)

    def feedback(self, query: Box, true_selectivity: float) -> None:
        """True-selectivity feedback — a no-op for the static model.

        The plain KDE model does not tune itself; the self-tuning
        subclasses/facades (:class:`~repro.core.model.SelfTuningKDE`)
        override the loop with their learning machinery.  Validation
        still applies, so miswired feedback fails loudly.
        """
        if not 0.0 <= true_selectivity <= 1.0:
            raise ValueError("true selectivity must lie in [0, 1]")

    def selectivity_many(
        self, queries: Union[QueryBatch, Sequence[Box]]
    ) -> np.ndarray:
        """Selectivity estimates for a sequence of queries (batched).

        :class:`~repro.geometry.QueryBatch` instances are dispatched
        directly (no list round-trip); box sequences are stacked once.
        Dimensionality is validated *before* dispatch, so a batch of the
        wrong dimensionality fails loudly instead of silently producing
        empty or nonsense results.
        """
        if not isinstance(queries, QueryBatch):
            queries = list(queries)
            if not queries:
                return np.empty(0, dtype=np.float64)
            queries = QueryBatch.from_boxes(queries)
        self._check_batch(queries)
        return self.selectivity_batch(queries)

    def estimate_many(
        self, queries: Union[QueryBatch, Sequence[Box]]
    ) -> np.ndarray:
        """Batched estimates — the estimator-protocol spelling.

        Alias of :meth:`selectivity_many`, mirroring how
        :meth:`estimate` aliases :meth:`selectivity`: the evaluation
        harness drives every model through the same
        ``estimate_many``/``feedback_many`` surface.
        """
        return self.selectivity_many(queries)

    def feedback_many(
        self,
        queries: Union[QueryBatch, Sequence[Box]],
        true_selectivities: Sequence[float],
    ) -> None:
        """Batched feedback — validation only, like :meth:`feedback`.

        The static model learns nothing, but the batch is still checked
        (one truth per query, truths in ``[0, 1]``) so a miswired
        harness fails loudly here exactly as it would on the tuning
        models.  Empty batches are a no-op.
        """
        queries = (
            list(queries) if not isinstance(queries, QueryBatch) else queries
        )
        truths = np.asarray(list(true_selectivities), dtype=np.float64)
        if truths.shape != (len(queries),):
            raise ValueError(
                "need exactly one true selectivity per query, got "
                f"{len(queries)} queries and {truths.size} values"
            )
        if truths.size and (truths.min() < 0.0 or truths.max() > 1.0):
            raise ValueError("true selectivities must lie in [0, 1]")

    def memory_bytes(self) -> int:
        """Model footprint for §6.2 budget accounting.

        A KDE model is essentially its sample: ``s × d`` values at the
        4-byte single precision the paper's device buffers use
        (Section 5.1) — the same accounting as the baseline wrappers.
        """
        return self.sample_size * self.dimensions * 4

    # ------------------------------------------------------------------
    # Batched estimation
    # ------------------------------------------------------------------
    def _check_batch(
        self, queries: Union[QueryBatch, Sequence[Box]]
    ) -> QueryBatch:
        batch = QueryBatch.coerce(queries)
        if batch.dimensions != self.dimensions:
            raise ValueError(
                f"query batch has {batch.dimensions} dimensions, "
                f"estimator has {self.dimensions}"
            )
        return batch

    def _uses_batch_fast_path(self) -> bool:
        """Whether the vectorised batch kernels apply to this instance.

        The fast path inlines the fixed-bandwidth mass/gradient formulas;
        subclasses overriding the per-query methods (e.g. the variable-
        bandwidth model) automatically fall back to query-at-a-time loops
        that delegate to their own overrides.
        """
        cls = type(self)
        return (
            cls.dimension_masses is KernelDensityEstimator.dimension_masses
            and cls.contributions is KernelDensityEstimator.contributions
            and cls.selectivity_gradient
            is KernelDensityEstimator.selectivity_gradient
        )

    def _batch_chunk(self) -> int:
        budget = (
            _BATCH_ELEMENT_BUDGET
            if _BATCH_ELEMENT_BUDGET is not None
            else chunking.get_chunk_budget()
        )
        return max(1, budget // max(1, self.sample_size * self.dimensions))

    def _masses_block(
        self, low_block: np.ndarray, high_block: np.ndarray
    ) -> np.ndarray:
        """``(b, s, d)`` per-dimension interval masses for a bound block."""
        b = low_block.shape[0]
        masses = np.empty(
            (b, self.sample_size, self.dimensions), dtype=np.float64
        )
        for j in range(self.dimensions):
            masses[:, :, j] = self._kernels[j].interval_mass(
                low_block[:, j, None],
                high_block[:, j, None],
                self._sample[None, :, j],
                self._bandwidth[j],
            )
        return masses

    def _contribution_block(
        self, low_block: np.ndarray, high_block: np.ndarray
    ) -> np.ndarray:
        """``(b, s)`` per-point contributions for a bound block.

        Accumulates the per-dimension mass product without materialising
        the ``(b, s, d)`` tensor: each dimension's ``(b, s)`` mass block
        is folded into the running product as soon as it is computed.
        The result is bitwise identical to reducing the tensor of
        :meth:`_masses_block` (same factors, same multiplication order),
        but the working set stays at two cache-sized blocks.
        """
        block: Optional[np.ndarray] = None
        for j in range(self.dimensions):
            masses = self._kernels[j].interval_mass(
                low_block[:, j, None],
                high_block[:, j, None],
                self._sample[None, :, j],
                self._bandwidth[j],
            )
            block = masses if block is None else np.multiply(
                block, masses, out=block
            )
        assert block is not None
        return block

    def dimension_masses_batch(
        self, queries: Union[QueryBatch, Sequence[Box]]
    ) -> np.ndarray:
        """``(q, s, d)`` per-dimension interval masses for a whole batch.

        The batched counterpart of :meth:`dimension_masses`: the tensor is
        what the paper's batched device kernel materialises once per batch
        and shares between the estimate and gradient stages (Section 5.4).
        """
        batch = self._check_batch(queries)
        if not self._uses_batch_fast_path():
            return np.stack([self.dimension_masses(box) for box in batch])
        return self.backend.masses_block(batch.low, batch.high)

    def contributions_batch(
        self, queries: Union[QueryBatch, Sequence[Box]]
    ) -> np.ndarray:
        """``(q, s)`` per-point contributions, one row per query.

        Row means give :meth:`selectivity_batch`; computed in query chunks
        so the transient ``(b, s, d)`` mass tensor stays memory-bounded.
        """
        batch = self._check_batch(queries)
        if not self._uses_batch_fast_path():
            return np.stack([self.contributions(box) for box in batch])
        return self.backend.contribution_block(batch.low, batch.high)

    def selectivity_batch(
        self, queries: Union[QueryBatch, Sequence[Box]]
    ) -> np.ndarray:
        """``(q,)`` selectivity estimates for a whole batch of queries.

        Numerically equivalent to calling :meth:`selectivity` per query
        (the per-element operations and their order are identical), but
        evaluated in chunked ``(b, s)`` numpy blocks: the Python-level
        per-query overhead is paid once per batch rather than ``q`` times.
        """
        batch = self._check_batch(queries)
        if not self._uses_batch_fast_path():
            return np.array(
                [self.selectivity(box) for box in batch], dtype=np.float64
            )
        registry = self.obs
        if not registry.enabled:
            return self.backend.selectivity_block(batch.low, batch.high)
        backend_name = self.backend.name
        snapshot = self._cache_snapshot()
        with span(
            "estimate_batch", registry, backend=backend_name
        ) as batch_span:
            estimates = self.backend.selectivity_block(batch.low, batch.high)
        registry.counter(
            "estimator.queries", {"backend": backend_name}
        ).inc(len(batch))
        registry.histogram(
            "estimator.batch_seconds", {"backend": backend_name}
        ).observe(batch_span.seconds)
        self._emit_traces(registry, estimates, snapshot, batch)
        return estimates

    # ------------------------------------------------------------------
    # Observability plumbing
    # ------------------------------------------------------------------
    def _cache_snapshot(self):
        """``(hits, misses)`` of the backend's cache counters right now."""
        stats = self.backend.stats
        return stats.cache_hits, stats.cache_misses

    def _emit_traces(
        self, registry, estimates, cache_snapshot, batch=None
    ) -> None:
        """Record one :class:`~repro.obs.trace.EstimationTrace` per query.

        Cache hit/miss counts are the *evaluation's* delta against
        ``cache_snapshot``; queries evaluated in the same batch share it
        (per-query attribution inside one fused block is meaningless).
        Per-shard worker seconds, when the sharded backend just ran,
        likewise describe the whole evaluation.  ``batch`` (when given)
        supplies the per-query box bounds so drift detectors can follow
        the predicate region.
        """
        stats = self.backend.stats
        hits = stats.cache_hits - cache_snapshot[0]
        misses = stats.cache_misses - cache_snapshot[1]
        shard_seconds = getattr(self.backend, "last_shard_seconds", None)
        backend_name = self.backend.name
        for index, value in enumerate(estimates):
            low = high = None
            if batch is not None:
                low = tuple(float(v) for v in batch.low[index])
                high = tuple(float(v) for v in batch.high[index])
            registry.record_trace(
                EstimationTrace(
                    query_id=registry.next_query_id(),
                    predicted=float(value),
                    backend=backend_name,
                    bandwidth_epoch=self._bandwidth_epoch,
                    sample_epoch=self._sample_epoch,
                    cache_hits=hits,
                    cache_misses=misses,
                    shard_seconds=shard_seconds,
                    query_low=low,
                    query_high=high,
                )
            )

    def selectivity_gradient_batch(
        self,
        queries: Union[QueryBatch, Sequence[Box]],
        dimension_masses: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``(q, d)`` bandwidth gradients, one row per query (Eq. 17).

        Parameters
        ----------
        queries:
            The query batch.
        dimension_masses:
            Optional precomputed ``(q, s, d)`` tensor from
            :meth:`dimension_masses_batch`; pass it when computing both
            the estimates and the gradients for the same batch so the erf
            terms are evaluated once (the retained buffer of Section 5.4).
        """
        batch = self._check_batch(queries)
        if not self._uses_batch_fast_path():
            rows = []
            for index, box in enumerate(batch):
                masses = (
                    dimension_masses[index]
                    if dimension_masses is not None
                    else None
                )
                rows.append(self.selectivity_gradient(box, masses))
            return np.stack(rows)
        return self.backend.gradient_block(
            batch.low, batch.high, dimension_masses
        )

    def _gradient_block(
        self,
        low: np.ndarray,
        high: np.ndarray,
        dimension_masses: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Reference ``(q, d)`` gradient evaluation over raw bound arrays.

        The chunked whole-array implementation behind the fast path;
        backends delegate here (``numpy``) or reproduce the same math on
        their own schedule (``sharded``).
        """
        s, d = self.sample_size, self.dimensions
        out = np.empty((low.shape[0], d), dtype=np.float64)
        chunk = self._batch_chunk()
        for start in range(0, low.shape[0], chunk):
            stop = min(low.shape[0], start + chunk)
            low_block = low[start:stop]
            high_block = high[start:stop]
            if dimension_masses is not None:
                masses = dimension_masses[start:stop]
            else:
                masses = self._masses_block(low_block, high_block)
            b = stop - start
            # Zero-safe leave-one-dimension-out products via prefix/suffix
            # (the same scheme as the per-query gradient).
            prefix = np.ones((b, s, d + 1), dtype=np.float64)
            suffix = np.ones((b, s, d + 1), dtype=np.float64)
            for j in range(d):
                prefix[:, :, j + 1] = prefix[:, :, j] * masses[:, :, j]
            for j in range(d - 1, -1, -1):
                suffix[:, :, j] = suffix[:, :, j + 1] * masses[:, :, j]
            for i in range(d):
                dmass = self._kernels[i].interval_mass_grad(
                    low_block[:, i, None],
                    high_block[:, i, None],
                    self._sample[None, :, i],
                    self._bandwidth[i],
                )
                others = prefix[:, :, i] * suffix[:, :, i + 1]
                out[start:stop, i] = (dmass * others).mean(axis=1)
        return out

    def density(self, points: np.ndarray) -> np.ndarray:
        """Pointwise density estimate ``p_hat(x)`` of Eq. (1).

        Not used for selectivity estimation itself (which integrates the
        density) but handy for diagnostics, plotting and tests.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[1] != self.dimensions:
            raise ValueError("points have the wrong dimensionality")
        h = self._bandwidth
        # (n, s, d) standardised distances; evaluated chunk-wise to bound memory.
        out = np.empty(points.shape[0], dtype=np.float64)
        norm = float(np.prod(h)) * self.sample_size
        budget = chunking.get_density_chunk_budget()
        chunk = max(1, budget // max(1, self.sample_size * self.dimensions))
        for start in range(0, points.shape[0], chunk):
            block = points[start : start + chunk]
            z = (block[:, None, :] - self._sample[None, :, :]) / h
            k = np.ones(z.shape[:2], dtype=np.float64)
            for j in range(self.dimensions):
                k *= self._kernels[j].pdf(z[:, :, j])
            out[start : start + chunk] = k.sum(axis=1) / norm
        return out

    # ------------------------------------------------------------------
    # Gradient (Eq. 15-17)
    # ------------------------------------------------------------------
    def selectivity_gradient(
        self, query: Box, dimension_masses: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Gradient ``d p_hat(query) / d h`` — the closed form of Eq. (17).

        Parameters
        ----------
        query:
            The query region.
        dimension_masses:
            Optional precomputed ``(s, d)`` matrix of per-dimension interval
            masses (see :meth:`dimension_masses`); pass it when computing
            both the estimate and the gradient for the same query to avoid
            recomputing the erf terms.
        """
        self._check_query(query)
        if dimension_masses is None:
            dimension_masses = self.dimension_masses(query)
        s, d = dimension_masses.shape
        grad = np.empty(d, dtype=np.float64)
        # Product over all dimensions except i, computed stably even when
        # individual factors are zero (prefix/suffix products).
        prefix = np.ones((s, d + 1), dtype=np.float64)
        suffix = np.ones((s, d + 1), dtype=np.float64)
        for j in range(d):
            prefix[:, j + 1] = prefix[:, j] * dimension_masses[:, j]
        for j in range(d - 1, -1, -1):
            suffix[:, j] = suffix[:, j + 1] * dimension_masses[:, j]
        for i in range(d):
            others = prefix[:, i] * suffix[:, i + 1]
            dmass = self._kernels[i].interval_mass_grad(
                query.low[i], query.high[i], self._sample[:, i], self._bandwidth[i]
            )
            grad[i] = float((dmass * others).mean())
        return grad

    def dimension_masses(self, query: Box) -> np.ndarray:
        """``(s, d)`` matrix of per-dimension interval masses for ``query``.

        Row products give :meth:`contributions`; the matrix is shared
        between the estimate and gradient computations (mirroring the
        retained temporary buffer of Section 5.4).
        """
        self._check_query(query)
        masses = np.empty((self.sample_size, self.dimensions), dtype=np.float64)
        for j in range(self.dimensions):
            masses[:, j] = self._kernels[j].interval_mass(
                query.low[j], query.high[j], self._sample[:, j], self._bandwidth[j]
            )
        return masses

    # ------------------------------------------------------------------
    # Sample maintenance hooks
    # ------------------------------------------------------------------
    def replace_rows(self, indices: np.ndarray, rows: np.ndarray) -> None:
        """Overwrite sample rows in place (single-transfer row updates).

        This mirrors the paper's row-major device buffer, where replacing a
        sample point is one PCIe write (Section 5.1).  The device-resident
        estimator exposes the same operation under the same name.
        """
        indices = np.asarray(indices, dtype=np.intp)
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        if rows.shape != (indices.size, self.dimensions):
            raise ValueError(
                f"rows must have shape ({indices.size}, {self.dimensions})"
            )
        if indices.size and (
            indices.min() < 0 or indices.max() >= self.sample_size
        ):
            raise IndexError("replacement index out of range")
        self._sample[indices] = rows
        self._sample_epoch += 1
        if self._backend is not None:
            self._backend.invalidate("sample")

    def replace_points(self, indices: np.ndarray, rows: np.ndarray) -> None:
        """Deprecated alias of :meth:`replace_rows` (pre-1.1 spelling)."""
        warnings.warn(
            "KernelDensityEstimator.replace_points is deprecated; "
            "use replace_rows",
            DeprecationWarning,
            stacklevel=2,
        )
        self.replace_rows(indices, rows)

    # ------------------------------------------------------------------
    # State snapshot / restore (the state/engine split)
    # ------------------------------------------------------------------
    def snapshot(self) -> ModelState:
        """Immutable :class:`~repro.core.state.ModelState` of this model.

        The snapshot owns copies of the sample and bandwidth, so later
        mutation of this estimator (tuning, row replacement) can never
        reach through it — the invariant snapshot-isolated serving
        (:mod:`repro.serve`) builds on.
        """
        self._require_named_kernels()
        return ModelState(
            kind="kde",
            sample=self._sample,
            bandwidth=self._bandwidth,
            kernels=tuple(k.name for k in self._kernels),
            bandwidth_epoch=self._bandwidth_epoch,
            sample_epoch=self._sample_epoch,
        )

    def restore(self, state: ModelState) -> None:
        """Adopt a snapshot's sample, bandwidth and kernels in place.

        Estimates after ``restore`` are bit-identical to estimates at
        snapshot time.  The epoch counters are *not* rewound: they jump
        past both the snapshot's and the current values, so backend
        caches keyed on ``(bandwidth_epoch, sample_epoch)`` can never
        alias entries from a superseded lineage.
        """
        if state.dimensions != self.dimensions:
            raise ValueError(
                f"state has {state.dimensions} dimensions, "
                f"estimator has {self.dimensions}"
            )
        self._sample = np.array(state.sample, dtype=np.float64, copy=True)
        self._kernels = tuple(get_kernel(name) for name in state.kernels)
        self._bandwidth = np.array(
            state.bandwidth, dtype=np.float64, copy=True
        )
        self._bandwidth_epoch = (
            max(self._bandwidth_epoch, state.bandwidth_epoch) + 1
        )
        self._sample_epoch = max(self._sample_epoch, state.sample_epoch) + 1
        if self._backend is not None:
            self._backend.invalidate("sample")
            self._backend.invalidate("bandwidth")

    @classmethod
    def from_state(
        cls,
        state: ModelState,
        backend: Union[str, ExecutionBackend, None] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> "KernelDensityEstimator":
        """Construct a fresh estimator from a snapshot (warm start).

        Accepts snapshots of any kind — a ``"self_tuning"`` or
        ``"device"`` snapshot yields the static KDE over the same
        sample/bandwidth/kernels (what snapshot-isolated serving reads).
        """
        estimator = cls(
            np.asarray(state.sample, dtype=np.float64),
            state.bandwidth,
            kernel=[get_kernel(name) for name in state.kernels],
            backend=backend,
            metrics=metrics,
        )
        estimator._bandwidth_epoch = state.bandwidth_epoch
        estimator._sample_epoch = state.sample_epoch
        return estimator

    def _require_named_kernels(self) -> None:
        """Snapshots resolve kernels by registry name at restore time."""
        for kernel in self._kernels:
            try:
                registered = get_kernel(kernel.name)
            except ValueError:
                registered = None
            if registered is not kernel:
                raise ValueError(
                    f"kernel {kernel!r} is not registered under its name "
                    f"{kernel.name!r}; register it (see "
                    "repro.core.kernels.register_kernel) before snapshotting"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KernelDensityEstimator(s={self.sample_size}, d={self.dimensions}, "
            f"kernel={self._kernels[0].name!r})"
        )
