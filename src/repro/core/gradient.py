"""Chain-rule assembly of the loss gradient (Appendix C, Eq. 14).

The gradient of the training objective with respect to the bandwidth
factors into a loss-dependent scalar and a model-dependent vector:

.. math::
    \\frac{\\partial \\mathcal{L}}{\\partial h_i}
    = \\underbrace{\\frac{\\partial \\mathcal{L}}
                        {\\partial \\hat p_H(\\Omega)}}_{\\text{loss}}
      \\cdot
      \\underbrace{\\frac{\\partial \\hat p_H(\\Omega)}
                        {\\partial h_i}}_{\\text{estimator, Eq. 17}}

This module combines the two factors, averages them over training
workloads (objective (5)), and applies the logarithmic reparameterisation
of Appendix D when requested (``dL/d log h = dL/dh * h``, Eq. 18).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple, Union

import numpy as np

from ..geometry import Box, QueryBatch
from .estimator import KernelDensityEstimator
from .losses import Loss, get_loss

__all__ = [
    "QueryFeedback",
    "loss_and_gradient",
    "workload_loss_and_gradient",
    "to_log_space_gradient",
]


@dataclass(frozen=True)
class QueryFeedback:
    """A single piece of query feedback: the region and its true selectivity.

    This is exactly what the database hands back to the estimator after a
    query finishes (Figure 3, step 7).
    """

    query: Box
    selectivity: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.selectivity <= 1.0:
            raise ValueError(
                f"true selectivity must lie in [0, 1], got {self.selectivity}"
            )


def loss_and_gradient(
    estimator: KernelDensityEstimator,
    feedback: QueryFeedback,
    loss: Union[str, Loss],
    log_space: bool = False,
) -> Tuple[float, np.ndarray, float]:
    """Loss value and bandwidth gradient for one observed query.

    Returns ``(loss_value, gradient, estimate)`` where ``gradient`` has one
    entry per dimension.  With ``log_space=True`` the gradient is with
    respect to ``log h`` (Appendix D).
    """
    loss = get_loss(loss)
    masses = estimator.dimension_masses(feedback.query)
    estimate = float(np.prod(masses, axis=1).mean())
    model_grad = estimator.selectivity_gradient(feedback.query, masses)
    loss_value = float(loss.value(estimate, feedback.selectivity))
    loss_derivative = float(loss.derivative(estimate, feedback.selectivity))
    gradient = loss_derivative * model_grad
    if log_space:
        gradient = to_log_space_gradient(gradient, estimator.bandwidth)
    return loss_value, gradient, estimate


#: Soft cap on the intermediate (queries x sample x dims) tensor size used
#: by the vectorised workload gradient; larger workloads are chunked.
_BATCH_ELEMENT_BUDGET = 20_000_000


def workload_loss_and_gradient(
    estimator: KernelDensityEstimator,
    workload: Sequence[QueryFeedback],
    loss: Union[str, Loss],
    log_space: bool = False,
) -> Tuple[float, np.ndarray]:
    """Average loss and gradient over a training workload (objective (5)).

    This is the function the batch optimiser hands to the numerical
    solver: for a candidate bandwidth it reports the mean training error
    and its gradient across all collected queries.  The heavy lifting is
    the batched evaluation engine of the estimator
    (:meth:`~repro.core.estimator.KernelDensityEstimator.dimension_masses_batch`
    and friends, mirroring the paper's device kernel that assigns one
    thread per training query, Section 5.3); this wrapper only chunks the
    workload to bound the intermediate tensor size and folds in the loss.
    Subclasses overriding the per-query mass/gradient methods (e.g. the
    variable-bandwidth model) are handled by the engine's own fallback.
    """
    if not workload:
        raise ValueError("workload must contain at least one query")
    loss = get_loss(loss)
    s = estimator.sample_size
    d = estimator.dimensions
    q = len(workload)
    batch = QueryBatch.from_boxes([fb.query for fb in workload])
    truths = np.array([fb.selectivity for fb in workload])
    bandwidth = estimator.bandwidth

    chunk = max(1, _BATCH_ELEMENT_BUDGET // max(1, s * (d + 1)))
    total_loss = 0.0
    total_grad = np.zeros(d, dtype=np.float64)
    for start in range(0, q, chunk):
        stop = min(q, start + chunk)
        sub = batch[start:stop]
        truth_block = truths[start:stop]

        # One (b, s, d) mass tensor shared between estimate and gradient
        # (the retained buffer of Section 5.4).
        masses = estimator.dimension_masses_batch(sub)
        estimates = np.prod(masses, axis=2).mean(axis=1)  # (b,)
        model_grads = estimator.selectivity_gradient_batch(sub, masses)

        loss_values = np.asarray(loss.value(estimates, truth_block))
        loss_derivs = np.asarray(loss.derivative(estimates, truth_block))
        total_loss += float(loss_values.sum())
        total_grad += (loss_derivs[:, None] * model_grads).sum(axis=0)

    if log_space:
        total_grad = to_log_space_gradient(total_grad, bandwidth)
    return total_loss / q, total_grad / q


def to_log_space_gradient(
    gradient: np.ndarray, bandwidth: np.ndarray
) -> np.ndarray:
    """Reparameterise a bandwidth gradient to log-bandwidth space (Eq. 18).

    ``dL/d(log h_i) = dL/dh_i * h_i``.  Updating ``log h`` keeps the
    bandwidth positive by construction and — per Section 5.5 — improved
    estimates in 68% of the paper's experiments.
    """
    gradient = np.asarray(gradient, dtype=np.float64)
    bandwidth = np.asarray(bandwidth, dtype=np.float64)
    if gradient.shape != bandwidth.shape:
        raise ValueError("gradient and bandwidth shapes differ")
    return gradient * bandwidth
