"""Join selectivity estimation with KDE models (Section 8, future work).

The paper sketches two routes to join cardinalities and this module
implements both:

1. **PK-FK joins** — "build the estimator based on a sample collected
   directly from the join result".  :mod:`repro.db.join` materialises
   such samples; any :class:`~repro.core.estimator.KernelDensityEstimator`
   over them then answers post-join range predicates directly.

2. **Theta joins via a joint integral** — "express join selectivities by
   a joint integral over the two estimators".  For Gaussian product
   kernels the integral has a closed form.  With ``X`` drawn from model
   ``R`` (kernel centred at ``t_i``, bandwidth ``h``) and ``Y`` from
   model ``S`` (centre ``u_j``, bandwidth ``g``), the difference on a
   join-key dimension is again normal:

   .. math::
       X_k - Y_k \\sim \\mathcal{N}(t_{ik} - u_{jk},\\; h_k^2 + g_k^2)

   so the *band join* ``|R.a - S.b| <= eps`` (with equality the
   ``eps -> 0`` limit) integrates to differences of normal CDFs, summed
   over all sample-point pairs — an :math:`O(s_R \\cdot s_S)` kernel that
   parallelises exactly like the paper's range kernels.

The equality-join *density* :math:`\\int p_R(x) p_S(x)\\,dx` is also
provided: it is the factor by which the true join size exceeds the
independence (cross-product-scaled) estimate on a discretised domain,
and the quantity the paper's joint-integral formulation reduces to.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple, Union

import numpy as np

from .chunking import get_density_chunk_budget
from .estimator import KernelDensityEstimator
from .kernels import GaussianKernel

__all__ = [
    "band_join_selectivity",
    "equi_join_density",
    "independence_band_join_selectivity",
]


def _check_join_inputs(
    left: KernelDensityEstimator,
    right: KernelDensityEstimator,
    left_keys: Sequence[int],
    right_keys: Sequence[int],
) -> Tuple[np.ndarray, np.ndarray]:
    left_keys = np.asarray(left_keys, dtype=np.intp)
    right_keys = np.asarray(right_keys, dtype=np.intp)
    if left_keys.size == 0 or left_keys.size != right_keys.size:
        raise ValueError("join requires equal, non-empty key column lists")
    if left_keys.min() < 0 or left_keys.max() >= left.dimensions:
        raise ValueError("left key column out of range")
    if right_keys.min() < 0 or right_keys.max() >= right.dimensions:
        raise ValueError("right key column out of range")
    if not isinstance(left.kernel, GaussianKernel) or not isinstance(
        right.kernel, GaussianKernel
    ):
        raise ValueError(
            "closed-form join integrals require Gaussian kernels"
        )
    return left_keys, right_keys


def band_join_selectivity(
    left: KernelDensityEstimator,
    right: KernelDensityEstimator,
    left_keys: Sequence[int],
    right_keys: Sequence[int],
    epsilon: Union[float, Sequence[float]],
) -> float:
    """Selectivity of ``|R.a_k - S.b_k| <= eps_k`` for all key pairs.

    Returns the estimated fraction of the cross product ``R x S``
    satisfying the band predicate; multiply by ``|R| * |S|`` for the
    join cardinality.

    Parameters
    ----------
    left, right:
        KDE models of the two relations (Gaussian kernels).
    left_keys, right_keys:
        Join-key column indices, positionally paired.
    epsilon:
        Band half-width, scalar or one per key pair.  Must be positive —
        use :func:`equi_join_density` for the equality limit.
    """
    left_keys, right_keys = _check_join_inputs(
        left, right, left_keys, right_keys
    )
    epsilon = np.broadcast_to(
        np.asarray(epsilon, dtype=np.float64), left_keys.shape
    )
    if np.any(epsilon <= 0):
        raise ValueError("epsilon must be positive (see equi_join_density)")

    t = left.sample[:, left_keys]      # (s_R, k)
    u = right.sample[:, right_keys]    # (s_S, k)
    h = left.bandwidth[left_keys]
    g = right.bandwidth[right_keys]
    sigma = np.sqrt(h * h + g * g)     # per-key difference std

    s_r, s_s = t.shape[0], u.shape[0]
    kernel = GaussianKernel()
    total = 0.0
    # Pairwise work per chunk rides the L2-derived density budget — the
    # same policy (set_chunk_budget / REPRO_CHUNK_BUDGET) as every other
    # O(n*m) hot path; its default matches the historical 4M-pair budget.
    chunk = max(1, get_density_chunk_budget() // max(1, s_s))
    for start in range(0, s_r, chunk):
        block = t[start : start + chunk]           # (b, k)
        pair = np.ones((block.shape[0], s_s), dtype=np.float64)
        for k in range(left_keys.size):
            delta = block[:, k, None] - u[None, :, k]
            z_high = (epsilon[k] - delta) / sigma[k]
            z_low = (-epsilon[k] - delta) / sigma[k]
            pair *= kernel.cdf(z_high) - kernel.cdf(z_low)
        total += float(pair.sum())
    return total / (s_r * s_s)


def equi_join_density(
    left: KernelDensityEstimator,
    right: KernelDensityEstimator,
    left_keys: Sequence[int],
    right_keys: Sequence[int],
) -> float:
    """The joint integral ``\\int p_R(x) p_S(x) dx`` over the join keys.

    This is the equality limit of the band join: the expected *density*
    of matches per unit of key volume.  On a domain discretised with
    resolution ``w`` per key dimension the equi-join selectivity is
    approximately ``equi_join_density(...) * prod(w)``, which is also
    what :func:`band_join_selectivity` converges to for small bands.

    Closed form for Gaussian product kernels: the integral of the
    product of two normals is a normal density at the centre difference,

    .. math::
        \\int \\mathcal{N}(x; t, h^2) \\mathcal{N}(x; u, g^2) dx
        = \\mathcal{N}(t - u;\\, 0,\\, h^2 + g^2)
    """
    left_keys, right_keys = _check_join_inputs(
        left, right, left_keys, right_keys
    )
    t = left.sample[:, left_keys]
    u = right.sample[:, right_keys]
    h = left.bandwidth[left_keys]
    g = right.bandwidth[right_keys]
    variance = h * h + g * g

    s_r, s_s = t.shape[0], u.shape[0]
    log_norm = -0.5 * left_keys.size * math.log(2.0 * math.pi) - 0.5 * float(
        np.log(variance).sum()
    )
    total = 0.0
    # Same L2-derived pair budget as band_join_selectivity above.
    chunk = max(1, get_density_chunk_budget() // max(1, s_s))
    for start in range(0, s_r, chunk):
        block = t[start : start + chunk]
        exponent = np.zeros((block.shape[0], s_s), dtype=np.float64)
        for k in range(left_keys.size):
            delta = block[:, k, None] - u[None, :, k]
            exponent -= delta * delta / (2.0 * variance[k])
        total += float(np.exp(exponent + log_norm).sum())
    return total / (s_r * s_s)


def independence_band_join_selectivity(
    left_values: np.ndarray,
    right_values: np.ndarray,
    epsilon: float,
    buckets: int = 64,
) -> float:
    """Histogram-based band-join baseline under independence per bucket.

    The classic system approach a KDE join competes with: bucketise both
    key columns, assume uniformity within buckets, and integrate the
    band predicate bucket-against-bucket.  One-dimensional keys only —
    the baseline for the join experiments.
    """
    left_values = np.asarray(left_values, dtype=np.float64).reshape(-1)
    right_values = np.asarray(right_values, dtype=np.float64).reshape(-1)
    if left_values.size == 0 or right_values.size == 0:
        raise ValueError("key columns must be non-empty")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    lo = min(left_values.min(), right_values.min())
    hi = max(left_values.max(), right_values.max())
    if hi <= lo:
        hi = lo + 1.0
    edges = np.linspace(lo, hi, buckets + 1)
    left_fracs, _ = np.histogram(left_values, bins=edges)
    right_fracs, _ = np.histogram(right_values, bins=edges)
    left_fracs = left_fracs / left_values.size
    right_fracs = right_fracs / right_values.size

    # Probability that |X - Y| <= eps with X uniform in bucket i and Y
    # uniform in bucket j, computed by quadrature over X.
    centers = (edges[:-1] + edges[1:]) / 2.0
    width = edges[1] - edges[0]
    grid = np.linspace(-0.5, 0.5, 9) * width
    total = 0.0
    for i in range(buckets):
        if left_fracs[i] == 0.0:
            continue
        xs = centers[i] + grid                     # (9,)
        # For each Y-bucket j: P(|x - Y| <= eps) for Y ~ U(bucket j).
        overlap_low = np.maximum(edges[:-1], xs[:, None] - epsilon)
        overlap_high = np.minimum(edges[1:], xs[:, None] + epsilon)
        prob = np.clip(overlap_high - overlap_low, 0.0, None) / width
        total += left_fracs[i] * float((prob.mean(axis=0) * right_fracs).sum())
    return total
