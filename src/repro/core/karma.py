"""Karma-based sample maintenance (Section 4.2, Appendix E).

Under deletions and updates the data sample backing the estimator goes
stale.  Traditional sample maintenance would stream every database change
to the device; the paper instead piggybacks on query feedback: for every
query it asks, per sample point, *"would the estimate have been better
without this point?"* via the leave-one-out estimate of Eq. (6)

.. math::
    \\hat p_H^{-(i)}(\\Omega)
    = \\frac{\\hat p_H(\\Omega) \\cdot s - \\hat p_H^{(i)}(\\Omega)}{s - 1}

and scores each point with the Karma of Eq. (7) — the loss change caused
by the point's presence.  Cumulative Karma (Eq. 8) saturates at ``K_max``
so long-lived points cannot bank unlimited goodwill; points whose
cumulative Karma sinks below a threshold are declared outdated and
replaced with fresh rows.

The module also implements the Appendix E shortcut: when a query returns
*zero* tuples, every sample point provably inside the region is stale and
can be replaced immediately.  Membership is certified from the probability
contributions alone via the bound of Eq. (20), avoiding a scan of the
sample coordinates.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from ..geometry import Box
from .config import KarmaConfig
from .kernels import Kernel, get_kernel
from .losses import Loss, get_loss

__all__ = ["KarmaTracker", "leave_one_out_estimates", "certified_inside_mask"]


def leave_one_out_estimates(
    contributions: np.ndarray, estimate: Optional[float] = None
) -> np.ndarray:
    """Leave-one-out estimates ``p_hat^{-(i)}`` of Eq. (6) for all points.

    Parameters
    ----------
    contributions:
        Per-point contributions ``p_hat^{(i)}`` for the query.
    estimate:
        The full estimate (their mean); recomputed when omitted.
    """
    contributions = np.asarray(contributions, dtype=np.float64)
    s = contributions.shape[0]
    if s < 2:
        raise ValueError("leave-one-out requires at least two sample points")
    if estimate is None:
        estimate = float(contributions.mean())
    return (estimate * s - contributions) / (s - 1)


def certified_inside_mask(
    contributions: np.ndarray,
    query: Box,
    bandwidth: np.ndarray,
    kernel: Union[str, Kernel, Sequence[Union[str, Kernel]]] = "gaussian",
) -> np.ndarray:
    """Certify sample points as inside ``query`` from contributions alone.

    Implements the bound of Eqs. (19)-(20): the largest contribution any
    point *outside* the region can produce is the centre-point maximum with
    one dimension degraded to its boundary value.  Any contribution
    strictly above that bound must come from a point within the region.

    Returns a boolean mask; ``True`` entries are guaranteed to lie inside
    the region (the certificate is sound but not complete — interior
    points near the boundary may be missed).
    """
    if isinstance(kernel, (str, Kernel)):
        kernels = [get_kernel(kernel)] * query.dimensions
    else:
        kernels = [get_kernel(k) for k in kernel]
        if len(kernels) != query.dimensions:
            raise ValueError("need one kernel per query dimension")
    contributions = np.asarray(contributions, dtype=np.float64)
    bandwidth = np.asarray(bandwidth, dtype=np.float64)
    if bandwidth.shape != (query.dimensions,):
        raise ValueError("bandwidth / query dimensionality mismatch")

    center = query.center
    center_masses = np.array(
        [
            kernels[j].interval_mass(
                query.low[j], query.high[j], center[j], bandwidth[j]
            )
            for j in range(query.dimensions)
        ],
        dtype=np.float64,
    )
    boundary_masses = np.array(
        [
            kernels[j].interval_mass(
                query.low[j], query.high[j], query.low[j], bandwidth[j]
            )
            for j in range(query.dimensions)
        ],
        dtype=np.float64,
    )
    max_inside = float(np.prod(center_masses))
    if max_inside <= 0.0:
        # The region is too narrow for the current bandwidth to certify
        # anything; fall back to certifying nothing.
        return np.zeros_like(contributions, dtype=bool)
    # Degrade each dimension in turn to its boundary value; the loosest of
    # those products bounds the contribution of any outside point.
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = np.where(
            center_masses > 0.0, boundary_masses / center_masses, 0.0
        )
    outside_bound = max_inside * float(ratios.max())
    return contributions > outside_bound


class KarmaTracker:
    """Tracks cumulative per-point Karma and flags outdated sample points.

    Parameters
    ----------
    sample_size:
        Number of points in the estimator's sample.
    loss:
        Error metric used for the Karma scores (normally the same loss the
        adaptive learner minimises).
    config:
        Saturation constant, replacement threshold and shortcut toggle.
    """

    def __init__(
        self,
        sample_size: int,
        loss: Union[str, Loss] = "squared",
        config: Optional[KarmaConfig] = None,
    ) -> None:
        if sample_size < 2:
            raise ValueError("karma tracking requires at least two points")
        self.config = config or KarmaConfig()
        self.loss = get_loss(loss)
        self._karma = np.zeros(sample_size, dtype=np.float64)
        self._replacements = 0
        self._queries_observed = 0

    # ------------------------------------------------------------------
    @property
    def karma(self) -> np.ndarray:
        """Current cumulative Karma scores (copy)."""
        return self._karma.copy()

    @property
    def sample_size(self) -> int:
        return self._karma.shape[0]

    @property
    def replacements(self) -> int:
        """Total number of points flagged for replacement so far."""
        return self._replacements

    @property
    def queries_observed(self) -> int:
        return self._queries_observed

    # ------------------------------------------------------------------
    def update(
        self,
        contributions: np.ndarray,
        true_selectivity: float,
        query: Optional[Box] = None,
        bandwidth: Optional[np.ndarray] = None,
        kernel: Union[str, Kernel, Sequence[Union[str, Kernel]]] = "gaussian",
    ) -> np.ndarray:
        """Score one query's feedback; returns indices of outdated points.

        Parameters
        ----------
        contributions:
            Per-point contributions retained from the estimate (Fig. 3).
        true_selectivity:
            Feedback from the database.
        query, bandwidth, kernel:
            Required only for the Appendix E empty-result shortcut; when
            omitted (or when the shortcut is disabled) only the Karma
            threshold triggers replacements.

        The caller is responsible for actually replacing the returned
        indices in the sample and then calling :meth:`reset`.
        """
        contributions = np.asarray(contributions, dtype=np.float64)
        if contributions.shape != (self.sample_size,):
            raise ValueError(
                f"expected {self.sample_size} contributions, "
                f"got {contributions.shape}"
            )
        if not 0.0 <= true_selectivity <= 1.0:
            raise ValueError("true selectivity must lie in [0, 1]")
        self._queries_observed += 1

        estimate = float(contributions.mean())
        loo = leave_one_out_estimates(contributions, estimate)
        karma_delta = self.loss.value(loo, true_selectivity) - self.loss.value(
            estimate, true_selectivity
        )
        self._karma = np.minimum(self._karma + karma_delta, self.config.k_max)

        outdated = self._karma < self.config.threshold
        if (
            self.config.empty_region_shortcut
            and true_selectivity == 0.0
            and query is not None
            and bandwidth is not None
        ):
            outdated |= certified_inside_mask(
                contributions, query, bandwidth, kernel
            )
        indices = np.flatnonzero(outdated)
        self._replacements += indices.size
        return indices

    # ------------------------------------------------------------------
    # State snapshot / restore
    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """Complete tracker state (scores + counters) as a dict."""
        return {
            "karma": self._karma.copy(),
            "replacements": int(self._replacements),
            "queries_observed": int(self._queries_observed),
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`get_state`.

        The score vector's length may differ from the current one (a
        checkpoint carries its own sample size); the tracker adopts it.
        """
        karma = np.array(state["karma"], dtype=np.float64, copy=True)
        if karma.ndim != 1 or karma.shape[0] < 2:
            raise ValueError("karma state must be a (s >= 2,) vector")
        self._karma = karma
        self._replacements = int(state["replacements"])
        self._queries_observed = int(state["queries_observed"])

    def reset(self, indices: np.ndarray) -> None:
        """Reset Karma of freshly replaced points to zero."""
        indices = np.asarray(indices, dtype=np.intp)
        if indices.size and (
            indices.min() < 0 or indices.max() >= self.sample_size
        ):
            raise IndexError("karma reset index out of range")
        self._karma[indices] = 0.0
