"""Kernel functions for multivariate product-kernel density estimation.

The estimator of the paper (Eq. 1) builds a *product kernel*: the
``d``-dimensional kernel factors into ``d`` one-dimensional kernels, one per
attribute, each scaled by its own bandwidth ``h_j`` (the diagonal-bandwidth
simplification of Section 3.1.3).  Integrating the estimator over a
hyper-rectangular query region therefore reduces to a product of
one-dimensional interval integrals (Appendix B), which in turn reduce to
differences of the kernel's cumulative distribution function.

Each kernel here exposes exactly the three quantities the rest of the
library needs:

``cdf(z)``
    One-dimensional CDF of the standardised kernel.
``interval_mass(low, high, points, bandwidth)``
    Per-dimension probability contribution
    ``F((u - t) / h) - F((l - t) / h)`` — Eq. (13)'s per-dimension factor.
``interval_mass_grad(low, high, points, bandwidth)``
    Partial derivative of that factor with respect to the bandwidth ``h``
    — the per-dimension building block of the gradient Eq. (17).

The Gaussian kernel is the paper's primary choice (Eq. 9); the
Epanechnikov kernel is the alternative discussed in Section 3.1.2 and
Appendix A.
"""

from __future__ import annotations

import math
from typing import Dict, Type, Union

import numpy as np
from scipy.special import erf

__all__ = [
    "Kernel",
    "GaussianKernel",
    "EpanechnikovKernel",
    "get_kernel",
    "register_kernel",
]

_SQRT2 = math.sqrt(2.0)
_INV_SQRT_2PI = 1.0 / math.sqrt(2.0 * math.pi)


class Kernel:
    """Base class for one-dimensional symmetric kernel functions.

    Subclasses implement :meth:`pdf` and :meth:`cdf` for the standardised
    (bandwidth-one, zero-centred) kernel; the interval-mass helpers are
    shared and derive everything else from those two functions plus the
    closed-form bandwidth derivative.
    """

    #: Registry name, set by subclasses.
    name: str = ""

    # -- standardised kernel -------------------------------------------
    def pdf(self, z: np.ndarray) -> np.ndarray:
        """Density of the standardised kernel at ``z``."""
        raise NotImplementedError

    def cdf(self, z: np.ndarray) -> np.ndarray:
        """CDF of the standardised kernel at ``z``."""
        raise NotImplementedError

    # -- interval contributions ----------------------------------------
    def interval_mass(
        self,
        low: Union[float, np.ndarray],
        high: Union[float, np.ndarray],
        points: np.ndarray,
        bandwidth: Union[float, np.ndarray],
    ) -> np.ndarray:
        """Probability mass a kernel centred at ``points`` puts on [low, high].

        All arguments broadcast; the usual call uses scalar bounds, a vector
        of per-point coordinates and a scalar bandwidth, returning one value
        per point.
        """
        points = np.asarray(points, dtype=np.float64)
        z_high = (high - points) / bandwidth
        z_low = (low - points) / bandwidth
        return self.cdf(z_high) - self.cdf(z_low)

    def interval_mass_grad(
        self,
        low: Union[float, np.ndarray],
        high: Union[float, np.ndarray],
        points: np.ndarray,
        bandwidth: Union[float, np.ndarray],
    ) -> np.ndarray:
        """Derivative of :meth:`interval_mass` with respect to ``bandwidth``.

        With ``F`` the standardised CDF and ``f`` its density,

        .. math::
            \\frac{\\partial}{\\partial h}
            \\left[ F\\left(\\frac{u-t}{h}\\right)
                  - F\\left(\\frac{l-t}{h}\\right) \\right]
            = \\frac{(l-t) f\\left(\\frac{l-t}{h}\\right)
                   - (u-t) f\\left(\\frac{u-t}{h}\\right)}{h^2}

        which is exactly the bracketed factor of Eq. (17) for the Gaussian.
        """
        points = np.asarray(points, dtype=np.float64)
        du = high - points
        dl = low - points
        h2 = bandwidth * bandwidth
        return (dl * self.pdf(dl / bandwidth) - du * self.pdf(du / bandwidth)) / h2


class GaussianKernel(Kernel):
    """The standard normal kernel of Eq. (9).

    Continuously differentiable with unbounded support; the paper's default
    because its interval integral has the clean erf closed form of Eq. (13).
    """

    name = "gaussian"

    def pdf(self, z: np.ndarray) -> np.ndarray:
        z = np.asarray(z, dtype=np.float64)
        return _INV_SQRT_2PI * np.exp(-0.5 * z * z)

    def cdf(self, z: np.ndarray) -> np.ndarray:
        z = np.asarray(z, dtype=np.float64)
        return 0.5 * (1.0 + erf(z / _SQRT2))


class EpanechnikovKernel(Kernel):
    """The Epanechnikov kernel ``K(z) = 3/4 (1 - z^2)`` on ``[-1, 1]``.

    Mean-square-error optimal among all kernels and cheap to evaluate, but
    only piecewise differentiable at the support boundary (Appendix A notes
    the limited support makes derivations more cumbersome; the formulas
    below handle the clipping explicitly).
    """

    name = "epanechnikov"

    def pdf(self, z: np.ndarray) -> np.ndarray:
        z = np.asarray(z, dtype=np.float64)
        inside = np.abs(z) <= 1.0
        return np.where(inside, 0.75 * (1.0 - z * z), 0.0)

    def cdf(self, z: np.ndarray) -> np.ndarray:
        z = np.asarray(z, dtype=np.float64)
        zc = np.clip(z, -1.0, 1.0)
        return (3.0 * zc - zc ** 3 + 2.0) / 4.0


_REGISTRY: Dict[str, Kernel] = {}


def register_kernel(kernel_cls: Type[Kernel]) -> Type[Kernel]:
    """Register a kernel class under its ``name`` for lookup by string."""
    if not kernel_cls.name:
        raise ValueError("kernel classes must define a non-empty name")
    _REGISTRY[kernel_cls.name] = kernel_cls()
    return kernel_cls


register_kernel(GaussianKernel)
register_kernel(EpanechnikovKernel)


def get_kernel(kernel: Union[str, Kernel]) -> Kernel:
    """Resolve a kernel instance from a name or pass an instance through."""
    if isinstance(kernel, Kernel):
        return kernel
    try:
        return _REGISTRY[kernel]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown kernel {kernel!r}; known kernels: {known}")
