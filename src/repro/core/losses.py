"""Loss functions for feedback-driven bandwidth optimisation.

Appendix C.1 of the paper lists the differentiable error metrics the
bandwidth optimiser can target.  Each loss knows its value and its partial
derivative with respect to the *estimated* selectivity — the first factor
of the chain-rule gradient in Eq. (14):

.. math::
    \\frac{\\partial \\mathcal{L}}{\\partial h_i}
    = \\frac{\\partial \\mathcal{L}}{\\partial \\hat p_H(\\Omega)}
      \\cdot \\frac{\\partial \\hat p_H(\\Omega)}{\\partial h_i}

Every method is fully vectorised: ``estimated`` and ``actual`` may be
scalars or same-shaped arrays of selectivities in ``[0, 1]``.
"""

from __future__ import annotations

from typing import Dict, Union

import numpy as np

__all__ = [
    "Loss",
    "SquaredLoss",
    "AbsoluteLoss",
    "RelativeLoss",
    "SquaredRelativeLoss",
    "SquaredQLoss",
    "get_loss",
    "register_loss",
]

ArrayLike = Union[float, np.ndarray]

#: Default smoothing constant preventing division by zero for the relative
#: and Q-error metrics (the paper's lambda; footnote 6).
DEFAULT_SMOOTHING = 1e-5


class Loss:
    """Base class: a differentiable error metric on (estimated, actual)."""

    name: str = ""

    def value(self, estimated: ArrayLike, actual: ArrayLike) -> np.ndarray:
        """Loss value; broadcasts over array inputs."""
        raise NotImplementedError

    def derivative(self, estimated: ArrayLike, actual: ArrayLike) -> np.ndarray:
        """Partial derivative of :meth:`value` w.r.t. ``estimated``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SquaredLoss(Loss):
    """Quadratic (L2) error: ``(p_hat - p)^2``."""

    name = "squared"

    def value(self, estimated: ArrayLike, actual: ArrayLike) -> np.ndarray:
        diff = np.asarray(estimated, dtype=np.float64) - actual
        return diff * diff

    def derivative(self, estimated: ArrayLike, actual: ArrayLike) -> np.ndarray:
        return 2.0 * (np.asarray(estimated, dtype=np.float64) - actual)


class AbsoluteLoss(Loss):
    """Absolute (L1) error: ``|p_hat - p|``.

    The derivative is the sign of the residual (zero at equality), exactly
    as listed in Appendix C.1.
    """

    name = "absolute"

    def value(self, estimated: ArrayLike, actual: ArrayLike) -> np.ndarray:
        return np.abs(np.asarray(estimated, dtype=np.float64) - actual)

    def derivative(self, estimated: ArrayLike, actual: ArrayLike) -> np.ndarray:
        return np.sign(np.asarray(estimated, dtype=np.float64) - actual)


class RelativeLoss(Loss):
    """Relative error ``|p_hat - p| / (lambda + p)``."""

    name = "relative"

    def __init__(self, smoothing: float = DEFAULT_SMOOTHING) -> None:
        if smoothing <= 0:
            raise ValueError("smoothing constant must be positive")
        self.smoothing = smoothing

    def value(self, estimated: ArrayLike, actual: ArrayLike) -> np.ndarray:
        actual = np.asarray(actual, dtype=np.float64)
        diff = np.abs(np.asarray(estimated, dtype=np.float64) - actual)
        return diff / (self.smoothing + actual)

    def derivative(self, estimated: ArrayLike, actual: ArrayLike) -> np.ndarray:
        actual = np.asarray(actual, dtype=np.float64)
        sign = np.sign(np.asarray(estimated, dtype=np.float64) - actual)
        return sign / (self.smoothing + actual)


class SquaredRelativeLoss(Loss):
    """Squared relative error ``((p_hat - p) / (lambda + p))^2``."""

    name = "squared_relative"

    def __init__(self, smoothing: float = DEFAULT_SMOOTHING) -> None:
        if smoothing <= 0:
            raise ValueError("smoothing constant must be positive")
        self.smoothing = smoothing

    def value(self, estimated: ArrayLike, actual: ArrayLike) -> np.ndarray:
        actual = np.asarray(actual, dtype=np.float64)
        ratio = (np.asarray(estimated, dtype=np.float64) - actual) / (
            self.smoothing + actual
        )
        return ratio * ratio

    def derivative(self, estimated: ArrayLike, actual: ArrayLike) -> np.ndarray:
        actual = np.asarray(actual, dtype=np.float64)
        denom = self.smoothing + actual
        return 2.0 * (np.asarray(estimated, dtype=np.float64) - actual) / (denom * denom)


class SquaredQLoss(Loss):
    """Squared Q-error ``(log(lambda + p_hat) - log(lambda + p))^2``.

    This is the log-space factor-error metric of Moerkotte et al. [31],
    which penalises over- and under-estimation symmetrically in the
    multiplicative sense.
    """

    name = "squared_q"

    def __init__(self, smoothing: float = DEFAULT_SMOOTHING) -> None:
        if smoothing <= 0:
            raise ValueError("smoothing constant must be positive")
        self.smoothing = smoothing

    def value(self, estimated: ArrayLike, actual: ArrayLike) -> np.ndarray:
        est = np.asarray(estimated, dtype=np.float64)
        diff = np.log(self.smoothing + est) - np.log(
            self.smoothing + np.asarray(actual, dtype=np.float64)
        )
        return diff * diff

    def derivative(self, estimated: ArrayLike, actual: ArrayLike) -> np.ndarray:
        est = np.asarray(estimated, dtype=np.float64)
        diff = np.log(self.smoothing + est) - np.log(
            self.smoothing + np.asarray(actual, dtype=np.float64)
        )
        return 2.0 * diff / (self.smoothing + est)


_REGISTRY: Dict[str, Loss] = {}


def register_loss(loss: Loss) -> Loss:
    """Register a loss instance for lookup by its ``name``."""
    if not loss.name:
        raise ValueError("losses must define a non-empty name")
    _REGISTRY[loss.name] = loss
    return loss


for _loss in (
    SquaredLoss(),
    AbsoluteLoss(),
    RelativeLoss(),
    SquaredRelativeLoss(),
    SquaredQLoss(),
):
    register_loss(_loss)


def get_loss(loss: Union[str, Loss]) -> Loss:
    """Resolve a loss instance from a name or pass an instance through."""
    if isinstance(loss, Loss):
        return loss
    try:
        return _REGISTRY[loss]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown loss {loss!r}; known losses: {known}")
