"""The self-tuning KDE selectivity estimator facade (Sections 3-5, Fig. 3).

:class:`SelfTuningKDE` wires together every component of the paper's
estimator around the query-feedback loop of Figure 3:

1. ``estimate(query)`` computes the selectivity and *retains* the
   per-point contribution buffer (Section 5.4) plus the model-dependent
   gradient factor, which the paper computes on the device while the
   database executes the query (Section 5.5).
2. ``feedback(query, true_selectivity)`` closes the loop: it assembles the
   full loss gradient (Eq. 14), feeds it to the mini-batch RMSprop learner
   (Listing 1), updates the per-point Karma scores (Eq. 7-8), and replaces
   outdated sample points with fresh rows from the row source.
3. ``on_insert(row)`` keeps the sample representative under insertions via
   reservoir sampling.

The facade is deliberately independent of any concrete database: anything
satisfying the :class:`RowSource` protocol (the in-memory table of
:mod:`repro.db`, or a plain array-backed source) can back it.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional, Protocol, Union

import numpy as np

from ..geometry import Box, QueryBatch
from .adaptive import RMSpropTuner
from .bandwidth import scott_bandwidth
from .config import AdaptiveConfig, KarmaConfig, SelfTuningConfig
from .estimator import KernelDensityEstimator
from .gradient import to_log_space_gradient
from .karma import KarmaTracker
from .losses import get_loss
from .reservoir import ReservoirSampler
from .state import ModelState, generator_from_state, generator_state

__all__ = ["RowSource", "ArrayRowSource", "SelfTuningKDE"]


def _config_to_dict(config: SelfTuningConfig) -> dict:
    """Serialise a :class:`SelfTuningConfig` to a plain (JSON-able) dict."""
    return {
        "kernel": config.kernel,
        "loss": config.loss,
        "adaptive": asdict(config.adaptive),
        "karma": asdict(config.karma),
        "adapt_bandwidth": config.adapt_bandwidth,
        "maintain_sample": config.maintain_sample,
        "reservoir_inserts": config.reservoir_inserts,
    }


def _config_from_dict(data: dict) -> SelfTuningConfig:
    """Rebuild a :class:`SelfTuningConfig` from its serialised dict."""
    return SelfTuningConfig(
        kernel=data["kernel"],
        loss=data["loss"],
        adaptive=AdaptiveConfig(**data["adaptive"]),
        karma=KarmaConfig(**data["karma"]),
        adapt_bandwidth=data["adapt_bandwidth"],
        maintain_sample=data["maintain_sample"],
        reservoir_inserts=data["reservoir_inserts"],
    )


class RowSource(Protocol):
    """Anything that can hand out fresh random rows for sample maintenance."""

    def sample_rows(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Return ``(count, d)`` random rows of the current population."""
        ...  # pragma: no cover - protocol


class ArrayRowSource:
    """A :class:`RowSource` over a plain in-memory array of rows."""

    def __init__(self, rows: np.ndarray) -> None:
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[0] == 0:
            raise ValueError("rows must be a non-empty (n, d) array")
        self._rows = rows

    def sample_rows(self, count: int, rng: np.random.Generator) -> np.ndarray:
        indices = rng.integers(self._rows.shape[0], size=count)
        return self._rows[indices]


@dataclass
class _PendingQuery:
    """Retained state between ``estimate`` and ``feedback`` (Fig. 3)."""

    query: Box
    contributions: np.ndarray
    estimate: float
    model_gradient: np.ndarray


class SelfTuningKDE:
    """Self-tuning KDE selectivity estimator with feedback-driven tuning.

    Parameters
    ----------
    sample:
        Initial ``(s, d)`` random sample of the relation (what ANALYZE
        collects in Section 5.2).
    config:
        Component configuration; defaults reproduce the paper's constants.
    row_source:
        Source of replacement rows for Karma maintenance.  When omitted,
        Karma still scores points but replacements are skipped.
    population_size:
        Cardinality of the relation at construction time (seeds the
        reservoir counter).
    bandwidth:
        Initial bandwidth; defaults to Scott's rule (Eq. 3), matching the
        initialisation of both *Heuristic* and *Adaptive*.
    seed:
        Seed for replacement sampling and reservoir decisions — an int,
        a :class:`numpy.random.SeedSequence`, or ``None`` for fresh OS
        entropy.  The model spawns *independent* child sequences for the
        replacement RNG and the reservoir from one parent sequence, so a
        seeded run replays deterministically end to end and two models
        seeded differently can never collide on derived streams (the
        former ``seed + 1`` scheme left the reservoir unseeded when
        ``seed=None`` and collided across adjacent seeds).
    backend:
        Execution backend for the batched evaluation paths (see
        :mod:`repro.core.backends`); forwarded to the underlying
        :class:`KernelDensityEstimator`.
    metrics:
        Metrics registry (see :mod:`repro.obs`); forwarded to the
        underlying :class:`KernelDensityEstimator`.  ``None`` defers to
        the process-wide registry at call time.
    """

    def __init__(
        self,
        sample: np.ndarray,
        config: Optional[SelfTuningConfig] = None,
        row_source: Optional[RowSource] = None,
        population_size: Optional[int] = None,
        bandwidth: Optional[np.ndarray] = None,
        seed: Union[None, int, np.random.SeedSequence] = None,
        backend=None,
        metrics=None,
    ) -> None:
        sample = np.asarray(sample, dtype=np.float64)
        self.config = config or SelfTuningConfig()
        if bandwidth is None:
            bandwidth = scott_bandwidth(sample)
        self._estimator = KernelDensityEstimator(
            sample, bandwidth, self.config.kernel, backend=backend,
            metrics=metrics,
        )
        self._loss = get_loss(self.config.loss)
        # One parent SeedSequence feeds independent spawned children to
        # the replacement RNG and the reservoir: deterministic replay for
        # any int seed, independent streams always (even for seed=None,
        # where the parent draws fresh OS entropy).
        if isinstance(seed, np.random.SeedSequence):
            seed_sequence = seed
        else:
            seed_sequence = np.random.SeedSequence(seed)
        replacement_seq, reservoir_seq = seed_sequence.spawn(2)
        self._rng = np.random.default_rng(replacement_seq)
        self._row_source = row_source
        self._tuner = RMSpropTuner(
            self._estimator.dimensions, self.config.adaptive
        )
        self._karma = KarmaTracker(
            self._estimator.sample_size, self._loss, self.config.karma
        )
        self._reservoir = ReservoirSampler(
            self._estimator.sample_size,
            population_size
            if population_size is not None
            else self._estimator.sample_size,
            seed=reservoir_seq,
        )
        self._pending: Optional[_PendingQuery] = None
        self._points_replaced = 0
        self._feedback_count = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def estimator(self) -> KernelDensityEstimator:
        """The underlying KDE model."""
        return self._estimator

    @property
    def bandwidth(self) -> np.ndarray:
        return self._estimator.bandwidth

    @bandwidth.setter
    def bandwidth(self, value: np.ndarray) -> None:
        self._estimator.bandwidth = value

    @property
    def backend(self):
        """The estimator's execution backend (see :mod:`repro.core.backends`)."""
        return self._estimator.backend

    @backend.setter
    def backend(self, value) -> None:
        self._estimator.backend = value

    @property
    def obs(self):
        """The metrics registry the underlying estimator reports into."""
        return self._estimator.obs

    @property
    def bandwidth_epoch(self) -> int:
        """Bandwidth generation of the underlying estimator."""
        return self._estimator.bandwidth_epoch

    @property
    def sample_epoch(self) -> int:
        """Sample generation of the underlying estimator."""
        return self._estimator.sample_epoch

    @property
    def sample_size(self) -> int:
        return self._estimator.sample_size

    @property
    def dimensions(self) -> int:
        return self._estimator.dimensions

    @property
    def points_replaced(self) -> int:
        """Sample points replaced by Karma maintenance so far."""
        return self._points_replaced

    @property
    def feedback_count(self) -> int:
        return self._feedback_count

    @property
    def tuner(self) -> RMSpropTuner:
        return self._tuner

    @property
    def karma_tracker(self) -> KarmaTracker:
        return self._karma

    @property
    def reservoir(self) -> ReservoirSampler:
        return self._reservoir

    # ------------------------------------------------------------------
    # The feedback loop
    # ------------------------------------------------------------------
    def estimate(self, query: Box) -> float:
        """Selectivity estimate; retains buffers for the feedback step."""
        masses = self._estimator.dimension_masses(query)
        contributions = np.prod(masses, axis=1)
        estimate = float(contributions.mean())
        model_gradient = (
            self._estimator.selectivity_gradient(query, masses)
            if self.config.adapt_bandwidth
            else np.zeros(self.dimensions)
        )
        self._pending = _PendingQuery(
            query=query,
            contributions=contributions,
            estimate=estimate,
            model_gradient=model_gradient,
        )
        return estimate

    def feedback(self, query: Box, true_selectivity: float) -> None:
        """Process true-selectivity feedback for the most recent estimate.

        If ``query`` does not match the retained pending query (or there is
        none), the buffers are recomputed — semantics identical, just
        without the saved work.
        """
        if not 0.0 <= true_selectivity <= 1.0:
            raise ValueError("true selectivity must lie in [0, 1]")
        pending = self._pending
        if pending is None or pending.query != query:
            self.estimate(query)
            pending = self._pending
        assert pending is not None
        self._pending = None
        self._feedback_count += 1

        if self.config.adapt_bandwidth:
            self._adapt_bandwidth(pending, true_selectivity)
        if self.config.maintain_sample:
            self._maintain_sample(pending, true_selectivity)

    # ------------------------------------------------------------------
    # Batched feedback (the batched query-evaluation engine)
    # ------------------------------------------------------------------
    def estimate_batch(self, queries) -> np.ndarray:
        """``(q,)`` selectivity estimates for a whole batch of queries.

        Unlike :meth:`estimate`, no per-query buffers are retained — the
        batched path is meant for throughput serving where feedback (if
        any) arrives as a batch through :meth:`feedback_batch`, which
        recomputes what it needs.
        """
        return self._estimator.selectivity_batch(queries)

    def estimate_many(self, queries) -> np.ndarray:
        """Batched estimates — the estimator-protocol spelling.

        Same numerics as :meth:`estimate_batch`, but tolerant of plain
        box sequences *including empty ones* (``QueryBatch`` requires at
        least one query), so harnesses can drive every model through one
        ``estimate_many``/``feedback_many`` surface.
        """
        if not isinstance(queries, QueryBatch):
            queries = list(queries)
            if not queries:
                return np.empty(0, dtype=np.float64)
        return self.estimate_batch(queries)

    def feedback_many(self, queries, true_selectivities) -> None:
        """Batched feedback — the estimator-protocol spelling.

        Forwards to :meth:`feedback_batch` (numerically equivalent to
        the query-by-query loop); an empty batch is a no-op.
        """
        if not isinstance(queries, QueryBatch):
            queries = list(queries)
            truths = list(true_selectivities)
            if len(queries) != len(truths):
                raise ValueError(
                    "need exactly one true selectivity per query, got "
                    f"{len(queries)} queries and {len(truths)} values"
                )
            if not queries:
                return
            true_selectivities = truths
        self.feedback_batch(queries, true_selectivities)

    def memory_bytes(self) -> int:
        """Model footprint for §6.2 budget accounting (sample bytes)."""
        return self._estimator.memory_bytes()

    def feedback_batch(self, queries, true_selectivities) -> None:
        """Process a whole batch of (query, true selectivity) feedback.

        Numerically equivalent to calling ``estimate``/``feedback`` per
        query in order: the batch is consumed in segments whose length
        never crosses a mini-batch boundary of the RMSprop tuner, so every
        gradient is computed (and log-scaled) against the exact bandwidth
        the looped path would have used; a Karma replacement mid-segment
        truncates the segment so later queries see the refreshed sample.
        Only the per-query Python/dispatch overhead is batched away.
        """
        batch = QueryBatch.coerce(queries)
        if batch.dimensions != self.dimensions:
            raise ValueError("query batch dimensionality mismatch")
        truths = np.asarray(true_selectivities, dtype=np.float64).reshape(-1)
        if truths.shape[0] != len(batch):
            raise ValueError(
                f"need one true selectivity per query ({len(batch)}), "
                f"got {truths.shape[0]}"
            )
        if np.any(truths < 0.0) or np.any(truths > 1.0):
            raise ValueError("true selectivities must lie in [0, 1]")
        self._pending = None
        adapt = self.config.adapt_bandwidth
        maintain = self.config.maintain_sample
        start = 0
        while start < len(batch):
            room = self._tuner.batch_room if adapt else len(batch) - start
            stop = min(len(batch), start + room)
            sub = batch[start:stop]
            masses = self._estimator.dimension_masses_batch(sub)
            contributions = np.prod(masses, axis=2)  # (m, s)
            estimates = contributions.mean(axis=1)
            gradients = None
            if adapt:
                model_grads = self._estimator.selectivity_gradient_batch(
                    sub, masses
                )
                loss_derivs = np.asarray(
                    self._loss.derivative(estimates, truths[start:stop])
                )
                gradients = loss_derivs[:, None] * model_grads
                if self.config.adaptive.log_updates:
                    gradients = gradients * self._estimator.bandwidth

            # Mirror the looped order exactly.  Within a segment the tuner
            # only updates after the *last* gradient, so Karma for queries
            # 0..m-2 runs against the pre-update bandwidth, the gradients
            # are then fed in one batched accumulation (sums commute), and
            # Karma for the final query sees any freshly updated bandwidth
            # — precisely the per-query interleaving.
            m = stop - start
            consumed = m
            if maintain:
                consumed = self._maintain_batch_prefix(
                    sub, contributions, truths[start:stop], m - 1
                )
            if adapt and consumed > 0:
                updated = self._tuner.observe_batch(
                    gradients[:consumed], self._estimator.bandwidth
                )
                if updated is not None:
                    self._estimator.bandwidth = updated
            if maintain and consumed == m:
                self._maintain_batch_prefix(
                    sub[m - 1 : m], contributions[m - 1 :], truths[stop - 1 :stop], 1
                )
            self._feedback_count += consumed
            start += consumed

    def _maintain_batch_prefix(
        self,
        sub: QueryBatch,
        contributions: np.ndarray,
        truths: np.ndarray,
        count: int,
    ) -> int:
        """Run Karma maintenance for the first ``count`` queries of a segment.

        Returns how many queries of the segment were consumed: a
        replacement at query ``k`` refreshes the sample, invalidating the
        remaining precomputed contributions, so the caller re-evaluates
        from ``k + 1`` (matching the looped semantics where query ``k+1``
        is estimated against the post-replacement sample).
        """
        for k in range(count):
            indices = self._karma.update(
                contributions[k],
                float(truths[k]),
                query=sub.box(k),
                bandwidth=self._estimator.bandwidth,
                kernel=self._estimator.kernels,
            )
            if indices.size == 0 or self._row_source is None:
                continue
            rows = self._row_source.sample_rows(indices.size, self._rng)
            rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
            if rows.shape[0] < indices.size:
                indices = indices[: rows.shape[0]]
            self._estimator.replace_rows(indices, rows[: indices.size])
            self._karma.reset(indices)
            self._points_replaced += indices.size
            return k + 1
        return len(contributions)

    def _adapt_bandwidth(
        self, pending: _PendingQuery, true_selectivity: float
    ) -> None:
        loss_derivative = float(
            self._loss.derivative(pending.estimate, true_selectivity)
        )
        gradient = loss_derivative * pending.model_gradient
        if self.config.adaptive.log_updates:
            gradient = to_log_space_gradient(
                gradient, self._estimator.bandwidth
            )
        updated = self._tuner.observe(gradient, self._estimator.bandwidth)
        if updated is not None:
            self._estimator.bandwidth = updated

    def _maintain_sample(
        self, pending: _PendingQuery, true_selectivity: float
    ) -> None:
        indices = self._karma.update(
            pending.contributions,
            true_selectivity,
            query=pending.query,
            bandwidth=self._estimator.bandwidth,
            kernel=self._estimator.kernels,
        )
        if indices.size == 0 or self._row_source is None:
            return
        rows = self._row_source.sample_rows(indices.size, self._rng)
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        if rows.shape[0] < indices.size:
            # Source could not provide enough rows (tiny relation); replace
            # as many points as we received fresh rows for.
            indices = indices[: rows.shape[0]]
        self._estimator.replace_rows(indices, rows[: indices.size])
        self._karma.reset(indices)
        self._points_replaced += indices.size

    # ------------------------------------------------------------------
    # Insert maintenance (reservoir sampling)
    # ------------------------------------------------------------------
    def on_insert(self, row: np.ndarray) -> bool:
        """Notify the estimator of a newly inserted tuple.

        Returns ``True`` when the tuple entered the sample (one simulated
        PCIe transfer), ``False`` when it was rejected host-side.
        """
        if not self.config.reservoir_inserts:
            self._reservoir.population_size += 1
            return False
        slot = self._reservoir.on_insert()
        if slot is None:
            return False
        row = np.asarray(row, dtype=np.float64).reshape(1, -1)
        self._estimator.replace_rows(np.array([slot]), row)
        self._karma.reset(np.array([slot]))
        return True

    def on_delete(self) -> None:
        """Notify the estimator of a deleted tuple.

        Deletions are handled lazily by Karma maintenance (Section 4.2);
        the only bookkeeping is the population counter that drives future
        reservoir acceptance probabilities.
        """
        if self._reservoir.population_size > 0:
            self._reservoir.population_size -= 1

    # ------------------------------------------------------------------
    # State snapshot / restore (the state/engine split)
    # ------------------------------------------------------------------
    def snapshot(self) -> ModelState:
        """Immutable :class:`~repro.core.state.ModelState` of this model.

        Captures everything the feedback loop depends on: the sample and
        bandwidth, the RMSprop tuner accumulators, Karma scores,
        reservoir counters and the replacement RNG's bit-generator state
        — so a restored model replays estimate *and* feedback behaviour
        bit-identically.  The transient estimate→feedback buffer
        (Fig. 3's retained contributions) is deliberately excluded: it is
        derived state the feedback path recomputes on demand.
        """
        self._estimator._require_named_kernels()
        return ModelState(
            kind="self_tuning",
            sample=self._estimator._sample,
            bandwidth=self._estimator._bandwidth,
            kernels=tuple(k.name for k in self._estimator.kernels),
            bandwidth_epoch=self._estimator.bandwidth_epoch,
            sample_epoch=self._estimator.sample_epoch,
            config=_config_to_dict(self.config),
            tuner=self._tuner.get_state(),
            karma=self._karma.get_state(),
            reservoir=self._reservoir.get_state(),
            rng_state=generator_state(self._rng),
            counters={
                "points_replaced": self._points_replaced,
                "feedback_count": self._feedback_count,
            },
        )

    def restore(self, state: ModelState) -> None:
        """Adopt a snapshot in place: model, learner, maintenance, RNG."""
        if state.kind != "self_tuning":
            raise ValueError(
                f"cannot restore a {state.kind!r} state into SelfTuningKDE"
            )
        if state.tuner is None or state.karma is None:
            raise ValueError("self_tuning state is missing component state")
        if state.config is not None:
            self.config = _config_from_dict(state.config)
            self._loss = get_loss(self.config.loss)
        self._estimator.restore(state)
        self._tuner = RMSpropTuner(state.dimensions, self.config.adaptive)
        self._tuner.set_state(state.tuner)
        self._karma = KarmaTracker(
            state.sample_size, self._loss, self.config.karma
        )
        self._karma.set_state(state.karma)
        if state.reservoir is not None:
            self._reservoir.set_state(state.reservoir)
        if state.rng_state is not None:
            self._rng = generator_from_state(state.rng_state)
        counters = state.counters or {}
        self._points_replaced = int(counters.get("points_replaced", 0))
        self._feedback_count = int(counters.get("feedback_count", 0))
        self._pending = None

    @classmethod
    def from_state(
        cls,
        state: ModelState,
        row_source: Optional[RowSource] = None,
        backend=None,
        metrics=None,
    ) -> "SelfTuningKDE":
        """Construct a model from a snapshot (checkpoint warm start).

        ``row_source`` is runtime wiring, not model state — supply the
        current table (or leave ``None`` to disable replacements).
        """
        if state.kind != "self_tuning":
            raise ValueError(
                f"cannot build SelfTuningKDE from a {state.kind!r} state"
            )
        config = (
            _config_from_dict(state.config)
            if state.config is not None
            else SelfTuningConfig()
        )
        model = cls(
            np.asarray(state.sample, dtype=np.float64),
            config=config,
            row_source=row_source,
            bandwidth=state.bandwidth,
            backend=backend,
            metrics=metrics,
        )
        model.restore(state)
        return model

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SelfTuningKDE(s={self.sample_size}, d={self.dimensions}, "
            f"feedback={self._feedback_count}, replaced={self._points_replaced})"
        )
