"""Batch bandwidth optimisation over query feedback (Section 3.3/3.4).

Solves the constrained optimisation problem (5): find the positive
diagonal bandwidth minimising the average loss between the estimator and
the observed true selectivities of a training workload.

The paper plugs the closed-form gradient into NLopt, running MLSL (a
multi-level single-linkage multistart global method) followed by L-BFGS-B
for local refinement.  NLopt is not available offline, so we preserve the
same two-phase structure with a bounded multistart driving
``scipy.optimize.minimize(method="L-BFGS-B")``:

1.  *Global phase* — evaluate the objective at Scott's rule plus a set of
    stratified random restarts in log-bandwidth space, locally optimising
    each with a small iteration budget.
2.  *Local phase* — refine the best candidate with a full-budget L-BFGS-B
    run.

All optimisation happens in log-bandwidth space: the positivity constraint
becomes box bounds, and the problem is much better conditioned because
bandwidths naturally live on a multiplicative scale (Appendix D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np
from scipy import optimize as _sciopt

from .bandwidth import MIN_BANDWIDTH, scott_bandwidth
from .estimator import KernelDensityEstimator
from .gradient import QueryFeedback, workload_loss_and_gradient
from .kernels import Kernel
from .losses import Loss, get_loss

__all__ = ["BandwidthOptimizer", "OptimizationResult", "optimize_bandwidth"]


@dataclass
class OptimizationResult:
    """Outcome of a batch bandwidth optimisation run."""

    #: The optimal bandwidth found.
    bandwidth: np.ndarray
    #: Training loss at :attr:`bandwidth`.
    loss: float
    #: Training loss at the initial (Scott) bandwidth, for reference.
    initial_loss: float
    #: Number of objective evaluations across all phases.
    evaluations: int
    #: Number of restart points examined in the global phase.
    starts: int
    #: Loss at each restart after its short local polish (diagnostics).
    start_losses: list = field(default_factory=list)

    @property
    def improvement(self) -> float:
        """Relative loss reduction versus the initial bandwidth."""
        if self.initial_loss == 0.0:
            return 0.0
        return 1.0 - self.loss / self.initial_loss


class BandwidthOptimizer:
    """Two-phase (global multistart + L-BFGS-B) bandwidth optimiser.

    Parameters
    ----------
    loss:
        Error metric to minimise (Appendix C.1); name or instance.
    starts:
        Number of restart points in the global phase (1 = pure local
        optimisation from Scott's rule).
    bounds_factor:
        Search bounds are ``[h_ref / bounds_factor, h_ref * bounds_factor]``
        per dimension around the reference (Scott) bandwidth.
    global_maxiter / local_maxiter:
        L-BFGS-B iteration budgets for the polish of each restart and for
        the final refinement.
    seed:
        Seed for the restart sampler; runs are deterministic given a seed.
    """

    def __init__(
        self,
        loss: Union[str, Loss] = "squared",
        starts: int = 8,
        bounds_factor: float = 1e4,
        global_maxiter: int = 15,
        local_maxiter: int = 200,
        seed: Optional[int] = None,
    ) -> None:
        if starts < 1:
            raise ValueError("starts must be at least 1")
        if bounds_factor <= 1.0:
            raise ValueError("bounds_factor must exceed 1")
        self.loss = get_loss(loss)
        self.starts = starts
        self.bounds_factor = bounds_factor
        self.global_maxiter = global_maxiter
        self.local_maxiter = local_maxiter
        self.seed = seed

    # ------------------------------------------------------------------
    def optimize(
        self,
        sample: np.ndarray,
        workload: Sequence[QueryFeedback],
        kernel: Union[str, Kernel] = "gaussian",
        initial_bandwidth: Optional[np.ndarray] = None,
    ) -> OptimizationResult:
        """Solve problem (5) for the given sample and training workload."""
        if not workload:
            raise ValueError("cannot optimise over an empty workload")
        sample = np.asarray(sample, dtype=np.float64)
        reference = (
            np.asarray(initial_bandwidth, dtype=np.float64)
            if initial_bandwidth is not None
            else scott_bandwidth(sample)
        )
        reference = np.maximum(reference, MIN_BANDWIDTH)
        estimator = KernelDensityEstimator(sample, reference, kernel)

        log_ref = np.log(reference)
        log_span = np.log(self.bounds_factor)
        lower = log_ref - log_span
        upper = log_ref + log_span
        bounds = list(zip(lower, upper))

        evaluations = 0

        def objective(log_h: np.ndarray):
            nonlocal evaluations
            evaluations += 1
            estimator.bandwidth = np.exp(np.clip(log_h, lower, upper))
            value, grad = workload_loss_and_gradient(
                estimator, workload, self.loss, log_space=True
            )
            return value, grad

        initial_loss, _ = objective(log_ref)

        rng = np.random.default_rng(self.seed)
        start_points = self._restart_points(log_ref, lower, upper, rng)

        # Global phase: short local polish from every restart point.
        candidates = []
        start_losses = []
        for point in start_points:
            result = _sciopt.minimize(
                objective,
                point,
                jac=True,
                method="L-BFGS-B",
                bounds=bounds,
                options={"maxiter": self.global_maxiter},
            )
            candidates.append(result.x)
            start_losses.append(float(result.fun))

        # Local phase: full-budget refinement of the best candidate.
        best = candidates[int(np.argmin(start_losses))]
        final = _sciopt.minimize(
            objective,
            best,
            jac=True,
            method="L-BFGS-B",
            bounds=bounds,
            options={"maxiter": self.local_maxiter},
        )

        final_loss = float(final.fun)
        final_bandwidth = np.exp(np.clip(final.x, lower, upper))
        # Never return something worse than the initial bandwidth: the
        # initial point is itself a feasible solution of problem (5).
        if final_loss > initial_loss:
            final_bandwidth = reference
            final_loss = initial_loss
        return OptimizationResult(
            bandwidth=final_bandwidth,
            loss=final_loss,
            initial_loss=initial_loss,
            evaluations=evaluations,
            starts=len(start_points),
            start_losses=start_losses,
        )

    # ------------------------------------------------------------------
    def _restart_points(
        self,
        log_ref: np.ndarray,
        lower: np.ndarray,
        upper: np.ndarray,
        rng: np.random.Generator,
    ) -> list:
        """Restart points: the reference plus stratified random draws.

        Stratification mimics MLSL's space-covering start distribution: one
        draw per equal-probability stratum of the box in each coordinate
        (a Latin-hypercube pattern in log space).
        """
        points = [log_ref.copy()]
        extra = self.starts - 1
        if extra <= 0:
            return points
        d = log_ref.shape[0]
        # Classic Latin hypercube: per dimension an independent permutation
        # of the strata, jittered uniformly within each stratum.
        lhs = np.empty((extra, d))
        jitter = rng.random((extra, d))
        for j in range(d):
            lhs[:, j] = (rng.permutation(extra) + jitter[:, j]) / extra
        for row in lhs:
            points.append(lower + row * (upper - lower))
        return points


def optimize_bandwidth(
    sample: np.ndarray,
    workload: Sequence[QueryFeedback],
    loss: Union[str, Loss] = "squared",
    kernel: Union[str, Kernel] = "gaussian",
    starts: int = 8,
    seed: Optional[int] = None,
) -> OptimizationResult:
    """Convenience wrapper: optimise with default settings (Section 3.4)."""
    optimizer = BandwidthOptimizer(loss=loss, starts=starts, seed=seed)
    return optimizer.optimize(sample, workload, kernel=kernel)
