"""Reservoir sampling for insert-only maintenance (Section 4.2, [43]).

For pure insert workloads the paper keeps the device-resident sample
representative with Vitter's classic reservoir algorithm: the ``n``-th
inserted tuple enters the sample with probability ``s / n``, evicting a
uniformly random victim.  All randomness happens on the host; only tuples
that actually enter the sample cross the PCIe bus, which makes the scheme
transfer-optimal.

Two variants are provided:

* :class:`ReservoirSampler` — Algorithm R, one decision per insert.
* :class:`SkipReservoirSampler` — the skip-based formulation (in the
  spirit of Vitter's Algorithms X/Z): instead of flipping a coin per
  insert it draws the number of inserts to *skip* before the next
  acceptance, reducing per-insert work to a counter decrement.

Both produce uniform samples; the property-based tests verify this with a
chi-squared check.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .state import generator_from_state, generator_state

__all__ = ["ReservoirSampler", "SkipReservoirSampler"]

#: Seed spelling accepted by the samplers: anything
#: :func:`numpy.random.default_rng` takes, notably a
#: :class:`numpy.random.SeedSequence` spawned from a parent chain so the
#: reservoir's stream is derived (collision-free) rather than ad hoc.
SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


class ReservoirSampler:
    """Vitter's Algorithm R over an insert stream.

    Parameters
    ----------
    sample_size:
        Capacity ``s`` of the reservoir.
    population_size:
        Number of rows already represented by the initial sample (the
        table cardinality when the estimator was built).  When smaller
        than ``sample_size`` the caller must fill initial slots through
        :meth:`on_insert`, which returns consecutive slots until full.
    seed:
        Seed for the acceptance decisions.
    """

    def __init__(
        self,
        sample_size: int,
        population_size: int = 0,
        seed: SeedLike = None,
    ) -> None:
        if sample_size < 1:
            raise ValueError("sample_size must be at least 1")
        if population_size < 0:
            raise ValueError("population_size must be non-negative")
        self.sample_size = sample_size
        self.population_size = population_size
        self._rng = np.random.default_rng(seed)
        self._accepted = 0

    @property
    def accepted(self) -> int:
        """Number of inserts that entered the reservoir (PCIe transfers)."""
        return self._accepted

    # ------------------------------------------------------------------
    # State snapshot / restore
    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """Counters + RNG bit-generator state, JSON-serialisable."""
        return {
            "sample_size": int(self.sample_size),
            "population_size": int(self.population_size),
            "accepted": int(self._accepted),
            "rng_state": generator_state(self._rng),
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot; acceptance decisions replay bit-identically."""
        self.sample_size = int(state["sample_size"])
        self.population_size = int(state["population_size"])
        self._accepted = int(state["accepted"])
        self._rng = generator_from_state(state["rng_state"])

    def on_insert(self) -> Optional[int]:
        """Register one inserted tuple; returns the slot to overwrite.

        Returns ``None`` when the tuple is rejected.  While the reservoir
        is still filling (``population < sample_size``) every insert is
        accepted into the next free slot.
        """
        self.population_size += 1
        if self.population_size <= self.sample_size:
            self._accepted += 1
            return self.population_size - 1
        if self._rng.random() < self.sample_size / self.population_size:
            self._accepted += 1
            return int(self._rng.integers(self.sample_size))
        return None


class SkipReservoirSampler:
    """Skip-based reservoir sampling: O(1) work per skipped insert.

    Draws, after each acceptance, the count of subsequent inserts to
    reject outright.  The skip length ``G`` for a reservoir of size ``s``
    at population ``n`` follows ``P(G >= g) = prod_{k=1..g} (1 - s/(n+k))``
    which we sample by inversion on the product form.
    """

    def __init__(
        self,
        sample_size: int,
        population_size: int = 0,
        seed: SeedLike = None,
    ) -> None:
        if sample_size < 1:
            raise ValueError("sample_size must be at least 1")
        if population_size < 0:
            raise ValueError("population_size must be non-negative")
        self.sample_size = sample_size
        self.population_size = population_size
        self._rng = np.random.default_rng(seed)
        self._accepted = 0
        self._skip_remaining = 0
        self._skip_valid = False

    @property
    def accepted(self) -> int:
        return self._accepted

    # ------------------------------------------------------------------
    # State snapshot / restore
    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """Counters + skip cursor + RNG state, JSON-serialisable."""
        return {
            "sample_size": int(self.sample_size),
            "population_size": int(self.population_size),
            "accepted": int(self._accepted),
            "skip_remaining": int(self._skip_remaining),
            "skip_valid": bool(self._skip_valid),
            "rng_state": generator_state(self._rng),
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot; skip decisions replay bit-identically."""
        self.sample_size = int(state["sample_size"])
        self.population_size = int(state["population_size"])
        self._accepted = int(state["accepted"])
        self._skip_remaining = int(state["skip_remaining"])
        self._skip_valid = bool(state["skip_valid"])
        self._rng = generator_from_state(state["rng_state"])

    def _draw_skip(self) -> int:
        """Inversion sampling of the skip length at the current population."""
        u = self._rng.random()
        skip = 0
        n = self.population_size
        survival = 1.0
        # Survival probability of skipping yet another record; the loop
        # terminates quickly because survival decays geometrically at rate
        # roughly (1 - s/n).
        while True:
            survival *= 1.0 - self.sample_size / (n + skip + 1)
            if u >= survival or survival <= 0.0:
                return skip
            skip += 1

    def on_insert(self) -> Optional[int]:
        """Register one inserted tuple; returns the slot to overwrite."""
        self.population_size += 1
        if self.population_size <= self.sample_size:
            self._accepted += 1
            self._skip_valid = False
            return self.population_size - 1
        if not self._skip_valid:
            # Populate the skip counter lazily; _draw_skip conditions on the
            # population *before* this insert.
            self.population_size -= 1
            self._skip_remaining = self._draw_skip()
            self.population_size += 1
            self._skip_valid = True
        if self._skip_remaining > 0:
            self._skip_remaining -= 1
            return None
        self._accepted += 1
        self._skip_valid = False
        return int(self._rng.integers(self.sample_size))
