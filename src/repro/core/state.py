"""Immutable, versioned model state — the estimator's persistence unit.

The paper's estimator lives inside a DBMS process: the optimizer consults
it on every query while feedback-driven maintenance (Section 4, Section
5.4) mutates it concurrently, and it must survive restarts alongside the
catalog.  :class:`ModelState` is the state half of that state/engine
split: everything that *defines* a model — sample rows, per-dimension
bandwidth and kernel spec, epochs, RMSprop tuner accumulators, Karma and
reservoir counters, and the serialized RNG bit-generator state — packed
into one immutable, versioned container that every estimator family can
``snapshot()`` into and ``restore()`` from.

On-disk format (one file, written atomically via tmp-file + rename)::

    MAGIC | header length (8 bytes LE) | JSON header | npz payload

The JSON header carries the format version, the model kind, every scalar
field, and the SHA-256 checksum + byte length of the npz payload (which
holds all arrays).  :meth:`ModelState.load` verifies the magic, rejects
future format versions, and checks the payload length and checksum, so
truncated or corrupted checkpoints fail loudly with
:class:`CheckpointError` instead of silently restoring garbage.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import struct
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

import numpy as np

__all__ = [
    "CheckpointError",
    "FORMAT_VERSION",
    "ModelState",
    "generator_from_state",
    "generator_state",
]

#: On-disk format version written by :meth:`ModelState.save`.  Loads
#: reject files whose header claims a *newer* version (forward
#: compatibility is explicitly not promised); older versions are
#: accepted as long as the fields parse.
FORMAT_VERSION = 1

#: File magic; doubles as a human-greppable marker in hexdumps.
MAGIC = b"REPRO-MODELSTATE\n"

_LENGTH_STRUCT = struct.Struct("<Q")

#: Model kinds the estimator families stamp into their snapshots.
KNOWN_KINDS = ("kde", "self_tuning", "device")


class CheckpointError(RuntimeError):
    """A model-state file is corrupt, truncated, or from the future."""


# ----------------------------------------------------------------------
# RNG state round-tripping
# ----------------------------------------------------------------------
def generator_state(rng: np.random.Generator) -> dict:
    """JSON-serialisable snapshot of a generator's bit-generator state."""
    return _plain(rng.bit_generator.state)


def generator_from_state(state: dict) -> np.random.Generator:
    """Rebuild a :class:`numpy.random.Generator` from a state snapshot.

    The bit-generator class is resolved by the name recorded in the
    state dict (``PCG64`` for :func:`numpy.random.default_rng`), so the
    restored generator replays the exact stream the snapshotted one
    would have produced.
    """
    state = _revive(state)
    name = state.get("bit_generator")
    bit_generator_cls = getattr(np.random, str(name), None)
    if bit_generator_cls is None:
        raise CheckpointError(f"unknown bit generator {name!r} in RNG state")
    bit_generator = bit_generator_cls()
    bit_generator.state = state
    return np.random.Generator(bit_generator)


def _plain(value):
    """Recursively convert numpy scalars/arrays to JSON-safe values."""
    if isinstance(value, dict):
        return {str(key): _plain(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(entry) for entry in value]
    if isinstance(value, np.ndarray):
        return {"__ndarray__": str(value.dtype), "data": value.tolist()}
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    return value


def _revive(value):
    """Inverse of :func:`_plain` (rebuilds tagged ndarray entries)."""
    if isinstance(value, dict):
        if "__ndarray__" in value and set(value) == {"__ndarray__", "data"}:
            return np.asarray(value["data"], dtype=value["__ndarray__"])
        return {key: _revive(entry) for key, entry in value.items()}
    if isinstance(value, list):
        return [_revive(entry) for entry in value]
    return value


def _frozen_copy(array: np.ndarray, dtype=None) -> np.ndarray:
    copy = np.array(array, dtype=dtype, copy=True)
    copy.flags.writeable = False
    return copy


def _split_section(section: Optional[dict]) -> Tuple[dict, dict]:
    """Split a state section into (npz arrays, JSON scalars)."""
    if section is None:
        return {}, {}
    arrays: Dict[str, np.ndarray] = {}
    scalars: Dict[str, object] = {}
    for key, value in section.items():
        if isinstance(value, np.ndarray):
            arrays[key] = value
        else:
            scalars[key] = _plain(value)
    return arrays, scalars


@dataclass(frozen=True)
class ModelState:
    """Everything that defines one KDE model, immutably.

    Instances are value objects: every array is stored as a read-only
    copy, so a snapshot can never be mutated through the estimator that
    produced it (the property read-copy-update serving relies on).

    Parameters
    ----------
    kind:
        Estimator family (``"kde"`` / ``"self_tuning"`` / ``"device"``).
    sample:
        ``(s, d)`` sample rows, in the producing family's storage dtype
        (``float64`` host-side, the device precision for ``"device"``).
    bandwidth:
        ``(d,)`` per-dimension bandwidth vector (always ``float64``).
    kernels:
        Per-dimension kernel registry names.
    bandwidth_epoch / sample_epoch:
        The producing model's epoch counters at snapshot time.
    config:
        Family configuration as a plain dict (``SelfTuningConfig``
        fields, device precision/loss, ...); ``None`` for the static KDE.
    tuner / karma / reservoir:
        Component state dicts (see the components' ``get_state``).
    rng_state:
        Serialized bit-generator state of the model's replacement RNG.
    counters:
        Model-level counters (``points_replaced``, ``feedback_count``).
    """

    kind: str
    sample: np.ndarray
    bandwidth: np.ndarray
    kernels: Tuple[str, ...]
    bandwidth_epoch: int = 0
    sample_epoch: int = 0
    config: Optional[dict] = None
    tuner: Optional[dict] = None
    karma: Optional[dict] = None
    reservoir: Optional[dict] = None
    rng_state: Optional[dict] = None
    counters: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in KNOWN_KINDS:
            raise ValueError(
                f"unknown model-state kind {self.kind!r}; "
                f"known kinds: {', '.join(KNOWN_KINDS)}"
            )
        sample = np.array(self.sample, copy=True)
        if sample.ndim != 2 or sample.shape[0] == 0:
            raise ValueError("state sample must be a non-empty (s, d) array")
        bandwidth = np.array(self.bandwidth, dtype=np.float64, copy=True)
        if bandwidth.shape != (sample.shape[1],):
            raise ValueError(
                f"state bandwidth must have shape ({sample.shape[1]},), "
                f"got {bandwidth.shape}"
            )
        if np.any(~np.isfinite(bandwidth)) or np.any(bandwidth <= 0.0):
            raise ValueError("state bandwidth entries must be positive")
        kernels = tuple(str(name) for name in self.kernels)
        if len(kernels) != sample.shape[1]:
            raise ValueError("state needs one kernel name per dimension")
        sample.flags.writeable = False
        bandwidth.flags.writeable = False
        object.__setattr__(self, "sample", sample)
        object.__setattr__(self, "bandwidth", bandwidth)
        object.__setattr__(self, "kernels", kernels)
        object.__setattr__(self, "bandwidth_epoch", int(self.bandwidth_epoch))
        object.__setattr__(self, "sample_epoch", int(self.sample_epoch))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def sample_size(self) -> int:
        return self.sample.shape[0]

    @property
    def dimensions(self) -> int:
        return self.sample.shape[1]

    @property
    def epochs(self) -> Tuple[int, int]:
        """``(bandwidth_epoch, sample_epoch)`` — the state's identity for
        read-copy-update publication."""
        return (self.bandwidth_epoch, self.sample_epoch)

    def equals(self, other: "ModelState") -> bool:
        """Exact (bitwise on arrays) equality between two states."""
        if not isinstance(other, ModelState):
            return False
        if (
            self.kind != other.kind
            or self.kernels != other.kernels
            or self.epochs != other.epochs
            or self.sample.dtype != other.sample.dtype
            or self.sample.shape != other.sample.shape
        ):
            return False
        if not (
            np.array_equal(self.sample, other.sample)
            and np.array_equal(self.bandwidth, other.bandwidth)
        ):
            return False
        for mine, theirs in (
            (self.config, other.config),
            (self.tuner, other.tuner),
            (self.karma, other.karma),
            (self.reservoir, other.reservoir),
            (self.rng_state, other.rng_state),
            (self.counters, other.counters),
        ):
            if not _section_equal(mine, theirs):
                return False
        return True

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialise to the on-disk container format (see module doc)."""
        arrays: Dict[str, np.ndarray] = {
            "sample": np.asarray(self.sample),
            "bandwidth": np.asarray(self.bandwidth),
        }
        sections: Dict[str, Optional[dict]] = {}
        for name in ("config", "tuner", "karma", "reservoir"):
            section = getattr(self, name)
            section_arrays, section_scalars = _split_section(section)
            for key, value in section_arrays.items():
                arrays[f"{name}.{key}"] = value
            sections[name] = None if section is None else section_scalars

        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        payload = buffer.getvalue()

        header = {
            "format_version": FORMAT_VERSION,
            "kind": self.kind,
            "kernels": list(self.kernels),
            "bandwidth_epoch": self.bandwidth_epoch,
            "sample_epoch": self.sample_epoch,
            "sample_dtype": str(self.sample.dtype),
            "sections": sections,
            "rng_state": _plain(self.rng_state)
            if self.rng_state is not None
            else None,
            "counters": _plain(dict(self.counters)),
            "payload_bytes": len(payload),
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
        }
        header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
        return b"".join(
            [MAGIC, _LENGTH_STRUCT.pack(len(header_bytes)), header_bytes,
             payload]
        )

    def save(self, path: Union[str, os.PathLike]) -> str:
        """Write the state to ``path`` atomically (tmp file + rename).

        The temporary file lives in the destination directory so the
        final :func:`os.replace` is a same-filesystem atomic rename: a
        crash mid-write leaves either the previous checkpoint or a
        stray ``*.tmp-*`` file, never a truncated checkpoint under the
        final name.
        """
        path = os.fspath(path)
        blob = self.to_bytes()
        directory = os.path.dirname(path) or "."
        tmp_path = os.path.join(
            directory,
            f".{os.path.basename(path)}.tmp-{os.getpid()}",
        )
        try:
            with open(tmp_path, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        finally:
            if os.path.exists(tmp_path):  # pragma: no cover - crash path
                os.unlink(tmp_path)
        return path

    @classmethod
    def from_bytes(cls, blob: bytes) -> "ModelState":
        """Parse the container format, verifying integrity end to end."""
        if len(blob) < len(MAGIC) + _LENGTH_STRUCT.size:
            raise CheckpointError("model-state file is truncated")
        if blob[: len(MAGIC)] != MAGIC:
            raise CheckpointError("not a repro model-state file (bad magic)")
        offset = len(MAGIC)
        (header_length,) = _LENGTH_STRUCT.unpack_from(blob, offset)
        offset += _LENGTH_STRUCT.size
        if len(blob) < offset + header_length:
            raise CheckpointError("model-state header is truncated")
        try:
            header = json.loads(blob[offset : offset + header_length])
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise CheckpointError(
                f"model-state header is corrupt: {error}"
            ) from error
        offset += header_length

        version = header.get("format_version")
        if not isinstance(version, int) or version < 1:
            raise CheckpointError(
                f"model-state header has invalid format version {version!r}"
            )
        if version > FORMAT_VERSION:
            raise CheckpointError(
                f"model-state format version {version} is newer than the "
                f"supported version {FORMAT_VERSION}; upgrade the library "
                "to load this checkpoint"
            )

        payload = blob[offset:]
        expected_bytes = header.get("payload_bytes")
        if len(payload) != expected_bytes:
            raise CheckpointError(
                f"model-state payload is truncated: expected "
                f"{expected_bytes} bytes, found {len(payload)}"
            )
        digest = hashlib.sha256(payload).hexdigest()
        if digest != header.get("payload_sha256"):
            raise CheckpointError(
                "model-state payload checksum mismatch (corrupt file)"
            )

        try:
            with np.load(io.BytesIO(payload)) as archive:
                arrays = {name: archive[name] for name in archive.files}
        except Exception as error:  # zipfile/numpy raise a zoo of types
            raise CheckpointError(
                f"model-state payload failed to decode: {error}"
            ) from error

        try:
            sections: Dict[str, Optional[dict]] = {}
            for name in ("config", "tuner", "karma", "reservoir"):
                scalars = header["sections"].get(name)
                if scalars is None and not any(
                    key.startswith(f"{name}.") for key in arrays
                ):
                    sections[name] = None
                    continue
                section = dict(_revive(scalars) if scalars else {})
                prefix = f"{name}."
                for key, value in arrays.items():
                    if key.startswith(prefix):
                        section[key[len(prefix):]] = value
                sections[name] = section
            rng_state = header.get("rng_state")
            return cls(
                kind=header["kind"],
                sample=arrays["sample"],
                bandwidth=arrays["bandwidth"],
                kernels=tuple(header["kernels"]),
                bandwidth_epoch=header["bandwidth_epoch"],
                sample_epoch=header["sample_epoch"],
                config=sections["config"],
                tuner=sections["tuner"],
                karma=sections["karma"],
                reservoir=sections["reservoir"],
                rng_state=_revive(rng_state) if rng_state is not None else None,
                counters=dict(header.get("counters") or {}),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise CheckpointError(
                f"model-state fields are invalid: {error}"
            ) from error

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> "ModelState":
        """Read and verify a state file written by :meth:`save`."""
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError as error:
            raise CheckpointError(
                f"cannot read model-state file {os.fspath(path)!r}: {error}"
            ) from error
        return cls.from_bytes(blob)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ModelState(kind={self.kind!r}, s={self.sample_size}, "
            f"d={self.dimensions}, epochs={self.epochs})"
        )


def _section_equal(mine, theirs) -> bool:
    """Deep equality that treats numpy arrays bitwise."""
    if isinstance(mine, np.ndarray) or isinstance(theirs, np.ndarray):
        return (
            isinstance(mine, np.ndarray)
            and isinstance(theirs, np.ndarray)
            and mine.dtype == theirs.dtype
            and mine.shape == theirs.shape
            and np.array_equal(mine, theirs)
        )
    if isinstance(mine, dict) and isinstance(theirs, dict):
        if set(mine) != set(theirs):
            return False
        return all(_section_equal(mine[key], theirs[key]) for key in mine)
    if isinstance(mine, (list, tuple)) and isinstance(theirs, (list, tuple)):
        if len(mine) != len(theirs):
            return False
        return all(
            _section_equal(m, t) for m, t in zip(mine, theirs)
        )
    return mine == theirs
