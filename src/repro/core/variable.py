"""Variable (adaptive) kernel density models (Section 8, future work).

The paper's third future-work direction: sample-point KDE in the sense
of Terrell & Scott [41], where every sample point carries its own
bandwidth.  We implement the classic Abramson construction: a pilot
density estimate assigns each point a *local scaling factor*

.. math::
    \\lambda_i = \\left( \\frac{\\hat p_{pilot}(t^{(i)})}{G} \\right)^{-\\alpha}

(with ``G`` the geometric mean of the pilot densities and ``alpha``
typically ``1/2``), and the effective bandwidth of point ``i`` along
dimension ``j`` is ``lambda_i * h_j``.  Points in dense regions get
narrow kernels (preserving detail), points in sparse tails get wide
ones (suppressing spurious bumps).

The paper conjectures its bandwidth optimisation "should be portable to
variable KDE models as well" — and it is: the global vector ``h``
remains the free parameter, the local factors are constants, and by the
chain rule the Eq. (17) gradient merely picks up a ``lambda_i`` factor
per point.  :class:`VariableKernelDensityEstimator` therefore works
unchanged with the batch optimiser and the online learner.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from ..geometry import Box
from .bandwidth import scott_bandwidth
from .estimator import KernelDensityEstimator
from .kernels import Kernel

__all__ = ["VariableKernelDensityEstimator", "abramson_factors"]


def abramson_factors(
    sample: np.ndarray,
    pilot_bandwidth: Optional[np.ndarray] = None,
    alpha: float = 0.5,
    kernel: Union[str, Kernel] = "gaussian",
) -> np.ndarray:
    """Per-point Abramson scaling factors from a pilot density estimate.

    Parameters
    ----------
    sample:
        ``(s, d)`` sample the variable model will be built on.
    pilot_bandwidth:
        Bandwidth of the fixed pilot KDE; Scott's rule when omitted.
    alpha:
        Sensitivity exponent; ``0`` gives a fixed-bandwidth model,
        ``1/2`` is Abramson's square-root law.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must lie in [0, 1]")
    sample = np.asarray(sample, dtype=np.float64)
    if pilot_bandwidth is None:
        pilot_bandwidth = scott_bandwidth(sample)
    pilot = KernelDensityEstimator(sample, pilot_bandwidth, kernel)
    densities = np.maximum(pilot.density(sample), 1e-300)
    geometric_mean = float(np.exp(np.mean(np.log(densities))))
    return (densities / geometric_mean) ** (-alpha)


class VariableKernelDensityEstimator(KernelDensityEstimator):
    """KDE with per-point bandwidth scaling factors.

    The effective bandwidth of sample point ``i`` in dimension ``j`` is
    ``local_factors[i] * bandwidth[j]``; everything else — the closed
    form Eq. (13), the gradient Eq. (17), Karma's leave-one-out scores —
    carries over with the factors folded in.

    Parameters
    ----------
    sample, bandwidth, kernel:
        As for :class:`KernelDensityEstimator`.
    local_factors:
        Positive per-point factors ``(s,)``; computed by
        :func:`abramson_factors` when omitted.
    """

    def __init__(
        self,
        sample: np.ndarray,
        bandwidth: Union[Sequence[float], np.ndarray],
        kernel: Union[str, Kernel] = "gaussian",
        local_factors: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__(sample, bandwidth, kernel)
        if local_factors is None:
            local_factors = abramson_factors(self.sample, kernel=kernel)
        local_factors = np.asarray(local_factors, dtype=np.float64)
        if local_factors.shape != (self.sample_size,):
            raise ValueError(
                f"local_factors must have shape ({self.sample_size},)"
            )
        if np.any(~np.isfinite(local_factors)) or np.any(local_factors <= 0):
            raise ValueError("local_factors must be positive and finite")
        self._local_factors = local_factors.copy()

    @property
    def local_factors(self) -> np.ndarray:
        """Per-point bandwidth scaling factors (copy)."""
        return self._local_factors.copy()

    # ------------------------------------------------------------------
    # Overridden kernels: fold the local factor into the bandwidth.
    # ------------------------------------------------------------------
    def dimension_masses(self, query: Box) -> np.ndarray:
        self._check_query(query)
        masses = np.empty((self.sample_size, self.dimensions), dtype=np.float64)
        sample = self.sample
        bandwidth = self.bandwidth
        for j in range(self.dimensions):
            masses[:, j] = self.kernel_for(j).interval_mass(
                query.low[j],
                query.high[j],
                sample[:, j],
                self._local_factors * bandwidth[j],
            )
        return masses

    def contributions(self, query: Box) -> np.ndarray:
        return np.prod(self.dimension_masses(query), axis=1)

    def selectivity_gradient(
        self, query: Box, dimension_masses: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Gradient with respect to the *global* bandwidth vector.

        With ``b_{ij} = lambda_i h_j`` the chain rule gives
        ``d M / d h_j = lambda_i * (d M / d b_{ij})``.
        """
        self._check_query(query)
        if dimension_masses is None:
            dimension_masses = self.dimension_masses(query)
        s, d = dimension_masses.shape
        sample = self.sample
        bandwidth = self.bandwidth
        prefix = np.ones((s, d + 1), dtype=np.float64)
        suffix = np.ones((s, d + 1), dtype=np.float64)
        for j in range(d):
            prefix[:, j + 1] = prefix[:, j] * dimension_masses[:, j]
        for j in range(d - 1, -1, -1):
            suffix[:, j] = suffix[:, j + 1] * dimension_masses[:, j]
        grad = np.empty(d, dtype=np.float64)
        for i in range(d):
            others = prefix[:, i] * suffix[:, i + 1]
            dmass = self.kernel_for(i).interval_mass_grad(
                query.low[i],
                query.high[i],
                sample[:, i],
                self._local_factors * bandwidth[i],
            )
            grad[i] = float((self._local_factors * dmass * others).mean())
        return grad

    def density(self, points: np.ndarray) -> np.ndarray:
        """Pointwise density with per-point bandwidths."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[1] != self.dimensions:
            raise ValueError("points have the wrong dimensionality")
        sample = self.sample
        h = self.bandwidth
        out = np.empty(points.shape[0], dtype=np.float64)
        chunk = max(
            1, int(4_000_000 / max(1, self.sample_size * self.dimensions))
        )
        # Per-point normalisation: prod_j (lambda_i h_j) = lambda_i^d prod h.
        norms = (
            self._local_factors ** self.dimensions * float(np.prod(h))
        ) * self.sample_size
        for start in range(0, points.shape[0], chunk):
            block = points[start : start + chunk]
            k = np.ones((block.shape[0], self.sample_size), dtype=np.float64)
            for j in range(self.dimensions):
                z = (block[:, None, j] - sample[None, :, j]) / (
                    self._local_factors[None, :] * h[j]
                )
                k *= self.kernel_for(j).pdf(z)
            out[start : start + chunk] = (k / norms[None, :]).sum(axis=1)
        return out

    def replace_rows(self, indices: np.ndarray, rows: np.ndarray) -> None:
        """Replace sample rows; fresh points get the neutral factor 1.

        Recomputing pilot densities per replacement would defeat the
        transfer-thrift of Karma maintenance, so replacements start at
        the fixed-bandwidth behaviour; call :meth:`refresh_factors`
        periodically to re-estimate all factors.
        """
        super().replace_rows(indices, rows)
        self._local_factors[np.asarray(indices, dtype=np.intp)] = 1.0

    def refresh_factors(self, alpha: float = 0.5) -> None:
        """Re-derive all local factors from a fresh pilot estimate."""
        self._local_factors = abramson_factors(
            self.sample, pilot_bandwidth=self.bandwidth, alpha=alpha
        )
