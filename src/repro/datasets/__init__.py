"""Evaluation datasets: the [14] synthetic generator and UCI stand-ins.

:func:`load_dataset` is the registry the experiment harness uses.  The
paper projects every dataset onto random 3- and 8-dimensional attribute
subsets (Section 6.1.2); :func:`project_dimensions` reproduces that.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from .standins import bike_standin, forest_standin, power_standin, protein_standin
from .synthetic import gaussian_clusters, gunopulos_synthetic, uniform_noise

__all__ = [
    "DATASET_NAMES",
    "bike_standin",
    "forest_standin",
    "gaussian_clusters",
    "gunopulos_synthetic",
    "load_dataset",
    "power_standin",
    "project_dimensions",
    "protein_standin",
    "uniform_noise",
]

#: Original cardinalities (Section 6.1.2), used as the default row counts.
_GENERATORS: Dict[str, Callable[..., np.ndarray]] = {
    "bike": bike_standin,
    "forest": forest_standin,
    "power": power_standin,
    "protein": protein_standin,
    "synthetic": gunopulos_synthetic,
}

DATASET_NAMES = tuple(sorted(_GENERATORS))


def project_dimensions(
    data: np.ndarray, dimensions: int, rng: np.random.Generator
) -> np.ndarray:
    """Project onto a random subset of ``dimensions`` attributes.

    Reproduces the paper's construction of the 3-D and 8-D dataset
    versions.  Degenerate (constant) columns are avoided when possible so
    every projected attribute actually carries information.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError("data must be a 2-D array")
    total = data.shape[1]
    if dimensions > total:
        raise ValueError(
            f"cannot project to {dimensions} of {total} dimensions"
        )
    stds = data.std(axis=0)
    informative = np.flatnonzero(stds > 0)
    pool = informative if informative.size >= dimensions else np.arange(total)
    columns = np.sort(rng.choice(pool, size=dimensions, replace=False))
    return data[:, columns].copy()


def load_dataset(
    name: str,
    dimensions: Optional[int] = None,
    rows: Optional[int] = None,
    seed: Optional[int] = 0,
) -> np.ndarray:
    """Generate an evaluation dataset by name.

    Parameters
    ----------
    name:
        One of :data:`DATASET_NAMES`.
    dimensions:
        When given, project onto a random subset of this many attributes
        (the paper's 3-D / 8-D versions).
    rows:
        Row-count override for scaled-down runs; defaults to the original
        cardinality of the dataset.
    seed:
        Generation seed (also seeds the projection).
    """
    try:
        generator = _GENERATORS[name]
    except KeyError:
        known = ", ".join(DATASET_NAMES)
        raise ValueError(f"unknown dataset {name!r}; known datasets: {known}")
    kwargs = {"seed": seed}
    if rows is not None:
        kwargs["rows"] = rows
    data = generator(**kwargs)
    if dimensions is not None:
        rng = np.random.default_rng(None if seed is None else seed + 1)
        data = project_dimensions(data, dimensions, rng)
    return data
