"""Statistical stand-ins for the paper's UCI datasets (Section 6.1.2).

The evaluation uses four real-world UCI datasets — Bike, Forest, Power
and Protein — which cannot be downloaded in this offline environment.
Each generator below produces a synthetic dataset matching its
original's cardinality, dimensionality and *qualitative statistical
character*: strong inter-attribute correlation, multi-modality, heavy
tails, and near-discrete columns where the original has them.  These are
the properties the paper's experiments exercise (the whole point of the
evaluation is estimator behaviour on correlated, non-normal data); the
substitution is documented in DESIGN.md (substitution 3).

Every generator accepts a ``rows`` override so experiments can run at
reduced scale, defaulting to the original cardinality.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "bike_standin",
    "forest_standin",
    "power_standin",
    "protein_standin",
]


def bike_standin(
    rows: int = 17_379, seed: Optional[int] = None
) -> np.ndarray:
    """Stand-in for the Washington DC bike-sharing dataset.

    Original: 17,379 hourly records, 16 continuous attributes.  Character:
    strong daily/seasonal periodicity, weather variables correlated with
    each other and with the usage counts, several near-discrete columns
    (hour, weekday, month).
    """
    rng = np.random.default_rng(seed)
    hour_of_day = rng.integers(0, 24, size=rows).astype(np.float64)
    weekday = rng.integers(0, 7, size=rows).astype(np.float64)
    month = rng.integers(1, 13, size=rows).astype(np.float64)
    season = (month - 1) // 3

    # Weather: temperature follows the season, humidity anti-correlates
    # with temperature, windspeed is gamma-tailed.
    temperature = (
        10.0
        + 12.0 * np.sin((month - 4.0) / 12.0 * 2 * np.pi)
        + 4.0 * np.sin((hour_of_day - 14.0) / 24.0 * 2 * np.pi)
        + rng.normal(scale=3.0, size=rows)
    )
    feels_like = temperature + rng.normal(scale=1.5, size=rows)
    humidity = np.clip(
        70.0 - 1.2 * temperature + rng.normal(scale=12.0, size=rows), 0, 100
    )
    windspeed = rng.gamma(shape=2.0, scale=6.0, size=rows)

    # Usage: commuter double peak on weekdays, midday bump on weekends,
    # suppressed by bad weather.
    commuter_peak = np.exp(-((hour_of_day - 8.0) ** 2) / 8.0) + np.exp(
        -((hour_of_day - 17.5) ** 2) / 8.0
    )
    leisure_peak = np.exp(-((hour_of_day - 14.0) ** 2) / 18.0)
    is_weekend = (weekday >= 5).astype(np.float64)
    demand = (
        200.0 * ((1 - is_weekend) * commuter_peak + is_weekend * leisure_peak)
        * (1.0 + 0.03 * temperature)
        * np.exp(-windspeed / 40.0)
    )
    casual = rng.poisson(np.maximum(demand * 0.25, 0.1)).astype(np.float64)
    registered = rng.poisson(np.maximum(demand, 0.1)).astype(np.float64)
    total = casual + registered

    return np.column_stack(
        [
            season,
            month,
            hour_of_day,
            weekday,
            is_weekend,
            temperature,
            feels_like,
            humidity,
            windspeed,
            casual,
            registered,
            total,
            np.log1p(total) + rng.normal(scale=0.05, size=rows),
            temperature * humidity / 100.0,
            rng.normal(scale=1.0, size=rows),  # instrument noise column
            np.cumsum(rng.normal(scale=0.01, size=rows)),  # drift index
        ]
    )


def forest_standin(
    rows: int = 581_012, seed: Optional[int] = None
) -> np.ndarray:
    """Stand-in for the Forest CoverType geological survey.

    Original: 581,012 points; the paper projects onto the 10 continuous
    attributes (elevation, aspect, slope, distances to hydrology/roads/
    fire points, hillshade indices).  Character: several terrain regimes
    (multi-modal), elevation correlated with everything, circular aspect.
    """
    rng = np.random.default_rng(seed)
    # Terrain regimes: a few mountain ranges with distinct elevations.
    regime = rng.integers(0, 4, size=rows)
    base_elevation = np.array([2000.0, 2500.0, 2900.0, 3300.0])[regime]
    elevation = base_elevation + rng.normal(scale=150.0, size=rows)
    slope = np.clip(
        rng.gamma(shape=2.5, scale=5.0, size=rows)
        + 0.004 * (elevation - 2000.0),
        0,
        66,
    )
    aspect = rng.uniform(0, 360, size=rows)
    dist_hydrology = rng.gamma(shape=1.5, scale=180.0, size=rows) + 0.05 * (
        elevation - 2000.0
    )
    vert_hydrology = 0.12 * dist_hydrology + rng.normal(scale=30.0, size=rows)
    dist_roads = rng.gamma(shape=1.2, scale=1200.0, size=rows) + 0.4 * (
        elevation - 2000.0
    )
    dist_fire = rng.gamma(shape=1.3, scale=1000.0, size=rows) + 0.3 * (
        elevation - 2000.0
    )
    # Hillshade: driven by slope and aspect (circular interaction).
    aspect_rad = np.deg2rad(aspect)
    hillshade_9am = np.clip(
        220 - 1.2 * slope * np.cos(aspect_rad - np.pi / 4)
        + rng.normal(scale=15.0, size=rows),
        0,
        255,
    )
    hillshade_noon = np.clip(
        235 - 0.8 * slope + rng.normal(scale=10.0, size=rows), 0, 255
    )
    hillshade_3pm = np.clip(
        220 - 1.2 * slope * np.cos(aspect_rad - 5 * np.pi / 4)
        + rng.normal(scale=15.0, size=rows),
        0,
        255,
    )
    return np.column_stack(
        [
            elevation,
            aspect,
            slope,
            dist_hydrology,
            vert_hydrology,
            dist_roads,
            hillshade_9am,
            hillshade_noon,
            hillshade_3pm,
            dist_fire,
        ]
    )


def power_standin(
    rows: int = 2_075_259, seed: Optional[int] = None
) -> np.ndarray:
    """Stand-in for the household electric power consumption time series.

    Original: 2,075,259 one-minute readings, 9 attributes mixing
    continuous and discrete values.  Character: daily periodicity,
    heavy-tailed appliance spikes, sub-meterings summing to (part of) the
    global consumption, near-constant voltage.
    """
    rng = np.random.default_rng(seed)
    minute_of_day = np.arange(rows, dtype=np.float64) % 1440.0
    day_index = np.floor(np.arange(rows) / 1440.0)
    daily_cycle = 0.8 + 0.6 * np.exp(
        -((minute_of_day - 1170.0) ** 2) / (2 * 120.0 ** 2)
    ) + 0.3 * np.exp(-((minute_of_day - 450.0) ** 2) / (2 * 90.0 ** 2))

    # Sub-meterings: kitchen (spiky), laundry (occasional heavy loads),
    # water-heater/AC (long duty cycles) — all in watt-hours, discrete-ish.
    kitchen = rng.poisson(0.4 * daily_cycle, size=rows).astype(np.float64)
    laundry = np.where(
        rng.random(rows) < 0.02, rng.gamma(4.0, 8.0, rows), rng.poisson(0.3, rows)
    ).astype(np.float64)
    heater = 5.0 * (rng.random(rows) < 0.3 * daily_cycle) * rng.gamma(
        3.0, 1.2, rows
    )
    base_load = rng.gamma(shape=3.0, scale=0.15, size=rows)
    active_power = (
        base_load * daily_cycle + (kitchen + laundry + heater) * 0.06
    )
    reactive_power = 0.12 * active_power + rng.gamma(1.5, 0.03, rows)
    voltage = 240.0 + rng.normal(scale=2.0, size=rows) - 1.5 * active_power
    intensity = active_power * 1000.0 / np.maximum(voltage, 1.0) / 230.0 * 56.0
    return np.column_stack(
        [
            minute_of_day,
            day_index % 365.0,
            active_power,
            reactive_power,
            voltage,
            intensity,
            kitchen,
            laundry,
            heater,
        ]
    )


def protein_standin(
    rows: int = 45_730, seed: Optional[int] = None
) -> np.ndarray:
    """Stand-in for the protein tertiary-structure (CASP) dataset.

    Original: 45,730 decoys, 9 physiochemical attributes.  Character:
    positive, right-skewed quantities (areas, energies, distances) with a
    strong shared latent size factor — big proteins score big everywhere.
    """
    rng = np.random.default_rng(seed)
    size_factor = rng.lognormal(mean=0.0, sigma=0.45, size=rows)
    rmsd = rng.gamma(shape=2.0, scale=3.0, size=rows)
    total_area = 9000.0 * size_factor * rng.lognormal(0.0, 0.12, rows)
    non_polar_area = 0.55 * total_area * rng.lognormal(0.0, 0.08, rows)
    fractional_area = non_polar_area / np.maximum(total_area, 1.0) * 100.0
    fape = 120.0 * size_factor * (1.0 + 0.08 * rmsd) * rng.lognormal(
        0.0, 0.15, rows
    )
    energy = -4000.0 * size_factor + 90.0 * rmsd + rng.normal(
        scale=250.0, size=rows
    )
    avg_deviation = rmsd * rng.lognormal(-0.2, 0.25, rows)
    euclidean_distance = 60.0 * np.sqrt(size_factor) * (
        1.0 + 0.05 * rmsd
    ) + rng.normal(scale=4.0, size=rows)
    secondary_penalty = rng.gamma(2.5, 14.0, rows) * (1.0 + 0.04 * rmsd)
    return np.column_stack(
        [
            rmsd,
            total_area,
            non_polar_area,
            fractional_area,
            fape,
            energy,
            avg_deviation,
            euclidean_distance,
            secondary_penalty,
        ]
    )
