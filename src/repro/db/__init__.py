"""In-memory relational substrate (the Postgres stand-in).

Provides the three database services the paper's estimator consumes:
ANALYZE-style sampling (:meth:`Table.analyze`), range-query execution
with true-selectivity feedback (:meth:`Table.execute`,
:class:`FeedbackLoop`), and modification notifications
(:class:`TableListener`).
"""

from .feedback import EstimatorTableBridge, FeedbackLoop, Observation
from .join import band_join_count, hash_join, pk_fk_join_sample
from .table import QueryResult, Table, TableListener

__all__ = [
    "EstimatorTableBridge",
    "FeedbackLoop",
    "Observation",
    "QueryResult",
    "Table",
    "TableListener",
    "band_join_count",
    "hash_join",
    "pk_fk_join_sample",
]
