"""In-memory relational substrate (the Postgres stand-in).

Provides the three database services the paper's estimator consumes:
ANALYZE-style sampling (:meth:`Table.analyze`), range-query execution
with true-selectivity feedback (:meth:`Table.execute`,
:class:`FeedbackLoop`), and modification notifications
(:class:`TableListener`).
"""

from .feedback import EstimatorTableBridge, FeedbackLoop, Observation
from .join import band_join_count, hash_join, pk_fk_join_sample
from .replay import (
    LoggedQuery,
    ReplayReport,
    load_query_log,
    load_table_csv,
    replay_workload,
)
from .table import QueryResult, Table, TableListener

__all__ = [
    "EstimatorTableBridge",
    "FeedbackLoop",
    "LoggedQuery",
    "Observation",
    "QueryResult",
    "ReplayReport",
    "Table",
    "TableListener",
    "band_join_count",
    "hash_join",
    "load_query_log",
    "load_table_csv",
    "pk_fk_join_sample",
    "replay_workload",
]
