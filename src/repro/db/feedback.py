"""The query-feedback loop between database and estimator (Figure 3).

:class:`FeedbackLoop` wires any :class:`~repro.baselines.base.SelectivityEstimator`
to a :class:`~repro.db.table.Table`: each :meth:`FeedbackLoop.run_query`
asks the estimator for a selectivity first (what the query optimizer
would consume), executes the query against the table, and hands the true
selectivity back as feedback — exactly the estimate → execute → feedback
cycle of the paper's Postgres integration.

The loop also records every observation, giving experiments the error
trace they plot (e.g. the error progression of Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..geometry import Box
from ..baselines.base import SelectivityEstimator
from .table import Table, TableListener

__all__ = ["FeedbackLoop", "Observation", "EstimatorTableBridge"]


@dataclass(frozen=True)
class Observation:
    """One completed estimate/execute/feedback cycle."""

    query: Box
    estimated: float
    actual: float

    @property
    def absolute_error(self) -> float:
        return abs(self.estimated - self.actual)


class EstimatorTableBridge(TableListener):
    """Forwards table modification events to an estimator's hooks.

    Registers on a table and calls the estimator's ``on_insert`` /
    ``on_delete`` methods when present (the Adaptive estimator has them,
    static estimators do not).
    """

    def __init__(self, estimator: SelectivityEstimator) -> None:
        self._estimator = estimator

    def on_insert(self, row: np.ndarray) -> None:
        hook = getattr(self._estimator, "on_insert", None)
        if hook is not None:
            hook(row)

    def on_delete(self, row: np.ndarray) -> None:
        hook = getattr(self._estimator, "on_delete", None)
        if hook is not None:
            hook()


@dataclass
class FeedbackLoop:
    """Drives the estimate → execute → feedback cycle for one estimator."""

    table: Table
    estimator: SelectivityEstimator
    #: Full trace of observations, in execution order.
    observations: List[Observation] = field(default_factory=list)
    _bridge: Optional[EstimatorTableBridge] = None

    def attach(self) -> "FeedbackLoop":
        """Subscribe the estimator to table modification events."""
        if self._bridge is None:
            self._bridge = EstimatorTableBridge(self.estimator)
            self.table.add_listener(self._bridge)
        return self

    def detach(self) -> None:
        """Unsubscribe from table events."""
        if self._bridge is not None:
            self.table.remove_listener(self._bridge)
            self._bridge = None

    def run_query(self, query: Box) -> Observation:
        """One full cycle; returns the recorded observation."""
        estimated = self.estimator.estimate(query)
        result = self.table.execute(query)
        actual = result.selectivity
        self.estimator.feedback(query, actual)
        observation = Observation(query=query, estimated=estimated, actual=actual)
        self.observations.append(observation)
        return observation

    def run_workload(self, queries) -> List[Observation]:
        """Run a sequence of queries through the loop."""
        return [self.run_query(q) for q in queries]

    # ------------------------------------------------------------------
    # Error reporting
    # ------------------------------------------------------------------
    def mean_absolute_error(self, last: Optional[int] = None) -> float:
        """Mean absolute error over all (or the last ``last``) observations."""
        observations = (
            self.observations[-last:] if last else self.observations
        )
        if not observations:
            raise ValueError("no observations recorded yet")
        return float(np.mean([o.absolute_error for o in observations]))

    def error_trace(self) -> np.ndarray:
        """Per-query absolute errors, in execution order."""
        return np.array(
            [o.absolute_error for o in self.observations], dtype=np.float64
        )
