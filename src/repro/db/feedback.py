"""The query-feedback loop between database and estimator (Figure 3).

:class:`FeedbackLoop` wires any :class:`~repro.baselines.base.SelectivityEstimator`
to a :class:`~repro.db.table.Table`: each :meth:`FeedbackLoop.run_query`
asks the estimator for a selectivity first (what the query optimizer
would consume), executes the query against the table, and hands the true
selectivity back as feedback — exactly the estimate → execute → feedback
cycle of the paper's Postgres integration.

The loop also records every observation, giving experiments the error
trace they plot (e.g. the error progression of Figure 8).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..geometry import Box
from ..baselines.base import SelectivityEstimator
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.spans import span
from ..obs.trace import EstimationTrace
from .table import Table, TableListener

__all__ = ["FeedbackLoop", "Observation", "EstimatorTableBridge"]


@dataclass(frozen=True)
class Observation:
    """One completed estimate/execute/feedback cycle."""

    query: Box
    estimated: float
    actual: float

    @property
    def absolute_error(self) -> float:
        return abs(self.estimated - self.actual)


class EstimatorTableBridge(TableListener):
    """Forwards table modification events to an estimator's hooks.

    Registers on a table and calls the estimator's ``on_insert`` /
    ``on_delete`` methods when present (the Adaptive estimator has them,
    static estimators do not).
    """

    def __init__(self, estimator: SelectivityEstimator) -> None:
        self._estimator = estimator

    def on_insert(self, row: np.ndarray) -> None:
        hook = getattr(self._estimator, "on_insert", None)
        if hook is not None:
            hook(row)

    def on_delete(self, row: np.ndarray) -> None:
        hook = getattr(self._estimator, "on_delete", None)
        if hook is not None:
            hook()


@dataclass
class FeedbackLoop:
    """Drives the estimate → execute → feedback cycle for one estimator."""

    table: Table
    estimator: SelectivityEstimator
    #: Full trace of observations, in execution order.
    observations: List[Observation] = field(default_factory=list)
    #: Registry to report into; ``None`` defers to the estimator's (or
    #: the process-wide) registry at call time.
    metrics: Optional[MetricsRegistry] = None
    _bridge: Optional[EstimatorTableBridge] = None
    #: Guards attach/detach so concurrent (or re-entrant) calls cannot
    #: register the bridge twice or remove it while another attach runs.
    _attach_lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    @property
    def obs(self) -> MetricsRegistry:
        if self.metrics is not None:
            return self.metrics
        estimator_registry = getattr(self.estimator, "obs", None)
        if estimator_registry is not None:
            return estimator_registry
        return get_registry()

    def attach(self) -> "FeedbackLoop":
        """Subscribe the estimator to table modification events.

        Idempotent and re-entrant: repeated calls (including from
        concurrent threads, or re-entrantly from a listener callback)
        register exactly one bridge, so the estimator never receives
        duplicate insert/delete events.
        """
        with self._attach_lock:
            if self._bridge is None:
                bridge = EstimatorTableBridge(self.estimator)
                self.table.add_listener(bridge)
                # Publish only after registration succeeded, so a failed
                # add_listener leaves the loop cleanly detached.
                self._bridge = bridge
        return self

    def detach(self) -> None:
        """Unsubscribe from table events.

        Idempotent counterpart of :meth:`attach`: calling it twice (or
        without a prior attach) is a no-op rather than an error.
        """
        with self._attach_lock:
            if self._bridge is not None:
                bridge = self._bridge
                self._bridge = None
                self.table.remove_listener(bridge)

    @property
    def attached(self) -> bool:
        """Whether the estimator is currently subscribed to table events."""
        return self._bridge is not None

    def run_query(self, query: Box) -> Observation:
        """One full cycle; returns the recorded observation."""
        registry = self.obs
        with span("feedback_cycle", registry):
            estimated = self.estimator.estimate(query)
            result = self.table.execute(query)
            actual = result.selectivity
            self.estimator.feedback(query, actual)
        observation = Observation(query=query, estimated=estimated, actual=actual)
        self.observations.append(observation)
        if registry.enabled:
            self._record_completed(registry, [observation])
        return observation

    def run_workload(self, queries) -> List[Observation]:
        """Run a sequence of queries through the loop."""
        return [self.run_query(q) for q in queries]

    def run_workload_batched(self, queries, backend=None) -> List[Observation]:
        """Run a workload in throughput mode: estimate all, then feed back.

        All estimates are produced in one :meth:`estimate_many` call
        before any query executes, then the true selectivities are handed
        back in one :meth:`feedback_many` call.  Unlike
        :meth:`run_workload`, a self-tuning estimator's estimate for
        query *i* therefore never sees feedback from earlier queries of
        the same batch — the trade the batched device path makes for
        amortised launch and transfer overhead.

        ``backend`` selects an execution backend (see
        :mod:`repro.core.backends`) for the duration of this workload on
        estimators that expose the ``backend`` knob (the KDE family);
        the previous backend is restored afterwards.  It is ignored for
        estimators without the knob.
        """
        queries = list(queries)
        if not queries:
            return []
        if backend is not None and hasattr(
            type(self.estimator), "backend"
        ):
            previous = self.estimator.backend
            self.estimator.backend = backend
            try:
                return self._run_batched(queries)
            finally:
                self.estimator.backend = previous
        return self._run_batched(queries)

    def _run_batched(self, queries: List[Box]) -> List[Observation]:
        # Estimators expose the batched entry points under different
        # names per layer (baselines: ``*_many``; the core self-tuning
        # model: ``*_batch``); plain estimators fall back to the loop.
        estimate_many = getattr(
            self.estimator,
            "estimate_many",
            getattr(self.estimator, "estimate_batch", None),
        )
        if estimate_many is not None:
            estimates = estimate_many(queries)
        else:
            estimates = [self.estimator.estimate(q) for q in queries]
        actuals = [self.table.execute(query).selectivity for query in queries]
        feedback_many = getattr(
            self.estimator,
            "feedback_many",
            getattr(self.estimator, "feedback_batch", None),
        )
        if feedback_many is not None:
            feedback_many(queries, actuals)
        else:
            for query, actual in zip(queries, actuals):
                self.estimator.feedback(query, actual)
        batch = [
            Observation(query=query, estimated=float(estimated), actual=actual)
            for query, estimated, actual in zip(queries, estimates, actuals)
        ]
        self.observations.extend(batch)
        registry = self.obs
        if registry.enabled:
            self._record_completed(registry, batch)
        return batch

    def _record_completed(
        self, registry: MetricsRegistry, batch: List[Observation]
    ) -> None:
        """Emit one completed (predicted + actual + loss) trace per cycle.

        These complement the predicted-only ``stage="estimate"`` traces
        the estimator itself emits; the loop is the first place the true
        selectivity is known, so the completed record is emitted here.
        """
        backend = getattr(self.estimator, "backend", None)
        backend_name = backend if isinstance(backend, str) else (
            getattr(backend, "name", type(self.estimator).__name__)
        )
        loss = getattr(self.estimator, "_loss", None)
        for observation in batch:
            if loss is not None:
                loss_value = float(
                    loss.value(observation.estimated, observation.actual)
                )
            else:
                loss_value = (observation.estimated - observation.actual) ** 2
            registry.counter("feedback.cycles").inc()
            registry.histogram("feedback.absolute_error").observe(
                observation.absolute_error
            )
            registry.record_trace(
                EstimationTrace(
                    query_id=registry.next_query_id(),
                    predicted=observation.estimated,
                    backend=str(backend_name),
                    actual=observation.actual,
                    loss=loss_value,
                    bandwidth_epoch=getattr(
                        self.estimator, "bandwidth_epoch", 0
                    ),
                    sample_epoch=getattr(self.estimator, "sample_epoch", 0),
                    stage="feedback",
                    query_low=tuple(
                        float(v) for v in observation.query.low
                    ),
                    query_high=tuple(
                        float(v) for v in observation.query.high
                    ),
                )
            )

    # ------------------------------------------------------------------
    # Error reporting
    # ------------------------------------------------------------------
    def mean_absolute_error(self, last: Optional[int] = None) -> float:
        """Mean absolute error over all (or the last ``last``) observations."""
        observations = (
            self.observations[-last:] if last else self.observations
        )
        if not observations:
            raise ValueError("no observations recorded yet")
        return float(np.mean([o.absolute_error for o in observations]))

    def error_trace(self) -> np.ndarray:
        """Per-query absolute errors, in execution order."""
        return np.array(
            [o.absolute_error for o in self.observations], dtype=np.float64
        )
