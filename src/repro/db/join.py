"""Join support for the relational substrate.

Implements the machinery behind the paper's first join-estimation route
(Section 8): for joins whose predicate is known beforehand — above all
PK-FK joins — "build the estimator based on a sample collected directly
from the join result".  The sampler here follows the spirit of Chaudhuri
et al. [9]: sample the foreign-key side and look each sampled tuple's
match up in a hash index on the primary-key side, which produces an
unbiased sample of the join result without materialising it.

A full (hash-) join executor is also provided for ground truth in tests
and experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .table import Table

__all__ = [
    "hash_join",
    "pk_fk_join_sample",
    "pk_fk_join_sample_stats",
    "band_join_count",
    "JoinSampleResult",
]


@dataclass(frozen=True)
class JoinSampleResult:
    """A PK-FK join sample together with its cardinality evidence.

    The sampler draws fact tuples uniformly, so the fraction of draws
    that found a dimension partner is an unbiased estimate of the
    fraction of fact rows participating in the join — and in a PK-FK
    join each participating fact row contributes exactly one result
    row, so ``match_rate * len(fact)`` estimates the join cardinality.
    This is the number the optimizer's join-sample pricing rung needs
    alongside the sample itself.
    """

    #: ``(n, d_fact + d_dim)`` sampled join-result rows.
    rows: np.ndarray
    #: Uniform fact-row draws made (including dangling-key misses).
    draws: int
    #: Draws that found a dimension partner.
    matches: int
    #: Size of the fact (foreign-key) side at sampling time.
    fact_rows: int

    @property
    def match_rate(self) -> float:
        """Estimated fraction of fact rows with a join partner."""
        if self.draws == 0:
            return 0.0
        return self.matches / self.draws

    @property
    def estimated_join_rows(self) -> float:
        """Estimated join-result cardinality (``match_rate * |fact|``)."""
        return self.match_rate * self.fact_rows


def _key_index(table: Table, key_column: int) -> Dict[float, int]:
    """Hash index mapping key value -> row position (PK side: unique)."""
    rows = table.rows()
    index: Dict[float, int] = {}
    for position, value in enumerate(rows[:, key_column]):
        index[float(value)] = position
    return index


def hash_join(
    left: Table, right: Table, left_key: int, right_key: int
) -> np.ndarray:
    """Equi-join two tables, returning concatenated matching rows.

    Builds a hash table on the right input (values may repeat) and
    probes with the left — the textbook hash join.  The result schema is
    the left columns followed by the right columns.
    """
    if not 0 <= left_key < left.dimensions:
        raise ValueError("left_key out of range")
    if not 0 <= right_key < right.dimensions:
        raise ValueError("right_key out of range")
    right_rows = right.rows()
    buckets: Dict[float, list] = {}
    for position, value in enumerate(right_rows[:, right_key]):
        buckets.setdefault(float(value), []).append(position)
    matches = []
    for row in left.rows():
        for position in buckets.get(float(row[left_key]), ()):
            matches.append(np.concatenate([row, right_rows[position]]))
    if not matches:
        return np.empty((0, left.dimensions + right.dimensions))
    return np.vstack(matches)


def pk_fk_join_sample(
    fact: Table,
    dimension: Table,
    fact_key: int,
    dimension_key: int,
    sample_size: int,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Random sample of a PK-FK join result, without materialising it.

    Every fact (foreign-key) tuple joins with exactly one dimension
    (primary-key) tuple, so uniformly sampling fact tuples and looking
    their partner up yields a uniform sample of the join result [9].
    Fact rows with dangling keys are skipped (and re-drawn).

    Returns ``(sample_size, d_fact + d_dim)`` rows; fewer if the join is
    highly selective and the fact table runs out of matching tuples.
    """
    return pk_fk_join_sample_stats(
        fact, dimension, fact_key, dimension_key, sample_size, rng
    ).rows


def pk_fk_join_sample_stats(
    fact: Table,
    dimension: Table,
    fact_key: int,
    dimension_key: int,
    sample_size: int,
    rng: Optional[np.random.Generator] = None,
) -> JoinSampleResult:
    """Like :func:`pk_fk_join_sample`, also returning cardinality evidence.

    The :class:`JoinSampleResult` records how many uniform fact draws
    were needed and how many matched, from which
    :attr:`~JoinSampleResult.estimated_join_rows` estimates the join
    cardinality — the input the optimizer's
    :class:`~repro.db.optimizer.RegistryCostModel` join-sample rung
    prices edges with.
    """
    if sample_size < 1:
        raise ValueError("sample_size must be at least 1")
    if len(fact) == 0 or len(dimension) == 0:
        raise ValueError("cannot sample a join of empty tables")
    rng = rng or np.random.default_rng()
    index = _key_index(dimension, dimension_key)
    dimension_rows = dimension.rows()
    fact_rows = fact.rows()

    out = []
    attempts = 0
    matches = 0
    max_attempts = 50 * sample_size
    while len(out) < sample_size and attempts < max_attempts:
        attempts += 1
        row = fact_rows[rng.integers(len(fact))]
        position = index.get(float(row[fact_key]))
        if position is None:
            continue
        matches += 1
        out.append(np.concatenate([row, dimension_rows[position]]))
    if not out:
        rows = np.empty((0, fact.dimensions + dimension.dimensions))
    else:
        rows = np.vstack(out)
    return JoinSampleResult(
        rows=rows, draws=attempts, matches=matches, fact_rows=len(fact)
    )


def band_join_count(
    left: Table,
    right: Table,
    left_key: int,
    right_key: int,
    epsilon: float,
) -> int:
    """True count of pairs with ``|left.key - right.key| <= epsilon``.

    Ground truth for the band-join estimators; computed by sorting the
    right keys and binary-searching the band per left tuple.
    """
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    left_values = left.rows()[:, left_key]
    right_values = np.sort(right.rows()[:, right_key])
    low = np.searchsorted(right_values, left_values - epsilon, side="left")
    high = np.searchsorted(right_values, left_values + epsilon, side="right")
    return int((high - low).sum())
