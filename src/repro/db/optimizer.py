"""A miniature cost-based query optimizer driven by selectivity estimates.

Selectivity estimation only matters because optimizers consume it: the
paper's introduction motivates everything with the observation that
estimation quality "directly impacts plan quality" [21, 35].  This module
closes that loop for the reproduction: a System-R-style left-deep
join-order optimizer whose cost model is the classic ``C_out`` metric
(the sum of intermediate result cardinalities [31]), fed by pluggable
per-table selectivity estimators and join selectivities.

Two enumeration strategies are provided by :func:`optimize_join_order`:
the textbook dynamic program over table subsets (default — ``O(2^n)``
states, practical well past ten tables) and the original exhaustive
``permutations`` sweep (``O(n!)``, kept for cross-checking the DP on
small queries).  Both price orders with the same ``C_out`` accounting,
and on ties both return the lexicographically first optimal order, so
the DP is an exact drop-in for the exhaustive search.

:class:`RegistryCostModel` is the serving-stack integration: it prices
every plan node from *served snapshots* in a
:class:`~repro.serve.registry.ModelRegistry`, falling through a ladder
of estimation rungs — join-sample models, then
:func:`~repro.core.join.equi_join_density` /
:func:`~repro.core.join.band_join_selectivity` joint integrals over two
single-table models, then the histogram independence baseline — and
records which rung answered each node (:attr:`RegistryCostModel.pricing`).

The experiment pattern this enables: optimise the same query once with a
good estimator (the self-tuning KDE) and once with a bad one (AVI, or a
stale model), execute both chosen orders against the true data, and
compare the *true* costs — the end-to-end impact of estimation errors.
``repro.bench plans`` runs exactly that comparison.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from itertools import permutations
from typing import (
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..baselines.base import SelectivityEstimator
from ..geometry import Box
from ..serve.keys import JOIN_SAMPLE, TABLE, JoinEdge, ModelKey
from .table import Table

__all__ = [
    "JoinQuery",
    "PlanNode",
    "Plan",
    "CostModel",
    "EstimatedCostModel",
    "TrueCostModel",
    "RegistryCostModel",
    "NodePricing",
    "optimize_join_order",
    "plan_quality_ratio",
    "price_order",
]

#: Bitmask-DP state count grows as ``2^n``; past this the DP itself is
#: the bottleneck and a real system would switch to greedy/genetic
#: enumeration.
_DP_TABLE_CAP = 18


@dataclass(frozen=True)
class JoinQuery:
    """A conjunctive select-project-join query over named tables.

    Parameters
    ----------
    tables:
        Table name -> relation.
    predicates:
        Optional per-table local range predicate.
    joins:
        Equi-join edges ``(left table, left column, right table, right
        column)``.  Tables without a join edge to the current prefix are
        combined as cross products (and priced accordingly).  Self-join
        edges (``left == right``) are rejected: the left-deep enumerator
        joins each table in exactly once, so an intra-table edge could
        never connect a prefix to a new table and would silently price
        as a cross product.
    """

    tables: Mapping[str, Table]
    predicates: Mapping[str, Box] = field(default_factory=dict)
    joins: Sequence[Tuple[str, int, str, int]] = ()

    def __post_init__(self) -> None:
        if len(self.tables) < 2:
            raise ValueError("a join query needs at least two tables")
        for name in self.predicates:
            if name not in self.tables:
                raise ValueError(f"predicate on unknown table {name!r}")
        for left, left_col, right, right_col in self.joins:
            if left not in self.tables or right not in self.tables:
                raise ValueError("join edge references unknown table")
            if left == right:
                raise ValueError(
                    f"self-join edge on table {left!r}: the left-deep "
                    "enumerator joins each table once, so an intra-table "
                    "edge would never match a prefix and would silently "
                    "be priced as a cross product; alias the table under "
                    "a second name instead"
                )
            if not 0 <= left_col < self.tables[left].dimensions:
                raise ValueError("join column out of range")
            if not 0 <= right_col < self.tables[right].dimensions:
                raise ValueError("join column out of range")

    def join_edges_between(
        self, prefix: FrozenSet[str], table: str
    ) -> List[Tuple[str, int, str, int]]:
        """Join edges connecting ``table`` to any table in ``prefix``."""
        edges = []
        for left, left_col, right, right_col in self.joins:
            if left in prefix and right == table:
                edges.append((left, left_col, right, right_col))
            elif right in prefix and left == table:
                edges.append((right, right_col, left, left_col))
        return edges


@dataclass(frozen=True)
class PlanNode:
    """One join step of a left-deep plan: the table joined in next."""

    table: str
    #: Estimated cardinality *after* this join.
    cardinality: float


@dataclass(frozen=True)
class Plan:
    """A left-deep join order with its cost-model accounting."""

    order: Tuple[str, ...]
    nodes: Tuple[PlanNode, ...]
    #: C_out: sum of intermediate result cardinalities.
    cost: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        chain = " JOIN ".join(self.order)
        return f"{chain}  (C_out = {self.cost:,.0f})"


class CostModel:
    """Cardinality oracle interface the optimizer prices plans with."""

    def base_cardinality(self, query: JoinQuery, table: str) -> float:
        """Rows of ``table`` surviving its local predicate."""
        raise NotImplementedError

    def join_selectivity(
        self,
        query: JoinQuery,
        edge: Tuple[str, int, str, int],
    ) -> float:
        """Fraction of the cross product matched by one join edge."""
        raise NotImplementedError


class EstimatedCostModel(CostModel):
    """Cost model backed by selectivity estimators.

    Parameters
    ----------
    estimators:
        Table name -> range-selectivity estimator for its local predicate.
    join_selectivities:
        Edge -> estimated join selectivity, keyed like the query's join
        tuples.  These typically come from
        :func:`repro.core.join.band_join_selectivity` /
        :func:`~repro.core.join.equi_join_density` or the independence
        baseline.
    """

    def __init__(
        self,
        estimators: Mapping[str, SelectivityEstimator],
        join_selectivities: Mapping[Tuple[str, int, str, int], float],
    ) -> None:
        self._estimators = dict(estimators)
        self._join_selectivities = dict(join_selectivities)

    def base_cardinality(self, query: JoinQuery, table: str) -> float:
        rows = len(query.tables[table])
        predicate = query.predicates.get(table)
        if predicate is None:
            return float(rows)
        estimator = self._estimators.get(table)
        if estimator is None:
            raise KeyError(f"no estimator registered for table {table!r}")
        return float(rows) * estimator.estimate(predicate)

    def join_selectivity(
        self, query: JoinQuery, edge: Tuple[str, int, str, int]
    ) -> float:
        try:
            return self._join_selectivities[edge]
        except KeyError:
            # Try the flipped orientation before giving up.
            left, left_col, right, right_col = edge
            flipped = (right, right_col, left, left_col)
            if flipped in self._join_selectivities:
                return self._join_selectivities[flipped]
            raise KeyError(f"no join selectivity for edge {edge!r}")


class TrueCostModel(CostModel):
    """Ground-truth cardinalities, computed against the actual tables.

    Used to price a *chosen* plan honestly, and to find the genuinely
    optimal plan for plan-quality comparisons.  Join selectivities are
    exact single-edge selectivities (correlations between edges are
    still combined independently — the standard optimizer simplification,
    applied equally to all cost models).
    """

    def base_cardinality(self, query: JoinQuery, table: str) -> float:
        relation = query.tables[table]
        predicate = query.predicates.get(table)
        if predicate is None:
            return float(len(relation))
        return float(relation.count(predicate))

    def join_selectivity(
        self, query: JoinQuery, edge: Tuple[str, int, str, int]
    ) -> float:
        from .join import band_join_count

        left, left_col, right, right_col = edge
        left_table = query.tables[left]
        right_table = query.tables[right]
        pairs = len(left_table) * len(right_table)
        if pairs == 0:
            return 0.0
        matches = band_join_count(
            left_table, right_table, left_col, right_col, epsilon=0.0
        )
        return matches / pairs


@dataclass(frozen=True)
class NodePricing:
    """Which estimation rung priced one plan node, and with what.

    ``subject`` is ``"table:<name>"`` for base cardinalities and
    ``"edge:<L>.<col>=<R>.<col>"`` (column names) for join edges;
    ``rung`` names the route that answered (``"rows"``,
    ``"frontend-batch"``, ``"served-snapshot"``, ``"static-estimator"``,
    ``"join-sample"``, ``"joint-integral"``, ``"independence"``);
    ``value`` is the selectivity (edges) or cardinality (tables) it
    produced.
    """

    subject: str
    rung: str
    value: float


class RegistryCostModel(CostModel):
    """Cost model answering from served snapshots in a model registry.

    The optimizer-in-the-loop oracle: every plan node is priced by a
    registry lookup and a snapshot read, falling through the estimation
    rungs the paper's Section 8 sketches.

    **Base cardinalities** (per-table predicates), first rung that
    answers wins:

    1. ``frontend-batch`` — a selectivity pre-answered through
       :meth:`~repro.serve.frontend.EstimatorFrontend.plan_cardinalities`
       (passed as ``base_selectivities``);
    2. ``served-snapshot`` — the registered single-table model covering
       the most predicate columns, read via
       :meth:`~repro.serve.server.SnapshotServer.estimate`;
    3. ``static-estimator`` — a plain
       :class:`~repro.baselines.base.SelectivityEstimator` from
       ``estimators`` (how the AVI/sampling baselines ride the same
       harness);
    4. no rung answers → ``KeyError`` (a predicate the service cannot
       price is a caller bug, matching :class:`EstimatedCostModel`).

    Unpredicated tables price as ``rows`` directly.

    **Join selectivities**, falling from model-based to assumption-based:

    1. ``join-sample`` — a registered join-sample model whose signature
       covers the edge, scaled by its estimated join cardinality
       (``join_rows``; see
       :func:`~repro.db.join.pk_fk_join_sample_stats`) and corrected
       for predicate correlation with a joint snapshot read over the
       join-result distribution;
    2. ``joint-integral`` — the closed-form
       :func:`~repro.core.join.equi_join_density` (or
       :func:`~repro.core.join.band_join_selectivity` when
       ``band_epsilon`` is set) over the two tables' served single-table
       snapshots, scaled by ``key_width``;
    3. ``independence`` — the histogram baseline
       :func:`~repro.core.join.independence_band_join_selectivity` over
       the raw key columns.

    Every answer is recorded in :attr:`pricing` (and cached — the
    enumerator prices the same node many times).

    Parameters
    ----------
    registry:
        A :class:`~repro.serve.registry.ModelRegistry` (or any mapping
        with ``items()`` yielding ``(ModelKey, server)``); ``None``
        disables the served rungs.
    estimators:
        Optional table name -> estimator fallbacks for base
        cardinalities.
    key_width:
        Discretisation width of the equi-join key domain: the factor
        converting the joint *density* of rung 2 into a selectivity,
        and (halved) the band the independence baseline integrates.
        Use the key domain's value spacing (1.0 for integer keys).
    band_epsilon:
        When set, edges are priced as band joins ``|l - r| <= eps``
        instead of equalities (rungs 2 and 3).
    join_rows:
        Estimated join-result cardinalities for the join-sample rung,
        keyed by join-sample :class:`~repro.serve.keys.ModelKey`, by
        :class:`~repro.serve.keys.JoinEdge`, or by a query-style
        ``(left, left_col, right, right_col)`` tuple (either
        orientation, column indices or names).
    base_selectivities:
        Pre-answered per-table predicate selectivities (the
        front end's batched answers); highest-priority base rung.
    """

    def __init__(
        self,
        registry=None,
        *,
        estimators: Optional[Mapping[str, SelectivityEstimator]] = None,
        key_width: float = 1.0,
        band_epsilon: Optional[float] = None,
        join_rows: Optional[Mapping] = None,
        base_selectivities: Optional[Mapping[str, float]] = None,
    ) -> None:
        if key_width <= 0:
            raise ValueError("key_width must be positive")
        if band_epsilon is not None and band_epsilon <= 0:
            raise ValueError("band_epsilon must be positive when given")
        self._registry = registry
        self._estimators = dict(estimators) if estimators else {}
        self._key_width = float(key_width)
        self._band_epsilon = band_epsilon
        self._join_rows = dict(join_rows) if join_rows else {}
        self._base_selectivities = (
            dict(base_selectivities) if base_selectivities else {}
        )
        #: Per-node pricing records, in first-pricing order.
        self.pricing: List[NodePricing] = []
        self._base_cache: Dict[str, float] = {}
        self._edge_cache: Dict[JoinEdge, float] = {}

    # -- shared resolution helpers -------------------------------------
    @staticmethod
    def _served_items(registry) -> List[Tuple[ModelKey, object]]:
        if registry is None:
            return []
        return list(registry.items())

    @classmethod
    def resolve_table_model(cls, registry, query: JoinQuery, table: str):
        """The served single-table model for a predicate, plus its box.

        Picks the ``table``-kind key covering the most of the table's
        columns (full-layout models win) and projects the table's
        predicate onto the model's column order.  Raises ``KeyError``
        when no registered model can price the predicate — the same
        contract as a front-end estimate for an unregistered model.
        """
        predicate = query.predicates.get(table)
        if predicate is None:
            raise ValueError(f"table {table!r} has no predicate to price")
        names = list(query.tables[table].column_names)
        best: Optional[ModelKey] = None
        for key, _ in cls._served_items(registry):
            if key.kind != TABLE or key.tables[0] != table:
                continue
            if not all(column in names for column in key.columns):
                continue
            if best is None or len(key.columns) > len(best.columns):
                best = key
        if best is None:
            raise KeyError(
                f"no single-table model registered for table {table!r}"
            )
        indices = [names.index(column) for column in best.columns]
        low = np.asarray(predicate.low, dtype=np.float64)[indices]
        high = np.asarray(predicate.high, dtype=np.float64)[indices]
        return best, Box(low, high)

    def _server_for(self, key: ModelKey):
        for candidate, server in self._served_items(self._registry):
            if candidate == key:
                return server
        raise KeyError(f"no model registered for {key.label!r}")

    def _edge_names(
        self, query: JoinQuery, edge: Tuple[str, int, str, int]
    ) -> Tuple[str, str, str, str]:
        left, left_col, right, right_col = edge
        return (
            left,
            str(query.tables[left].column_names[left_col]),
            right,
            str(query.tables[right].column_names[right_col]),
        )

    def rung_counts(self) -> Dict[str, int]:
        """How many nodes each rung priced (from :attr:`pricing`)."""
        return dict(Counter(record.rung for record in self.pricing))

    def _record(self, subject: str, rung: str, value: float) -> float:
        self.pricing.append(NodePricing(subject, rung, float(value)))
        return float(value)

    # -- base cardinalities --------------------------------------------
    def base_cardinality(self, query: JoinQuery, table: str) -> float:
        if table in self._base_cache:
            return self._base_cache[table]
        rows = float(len(query.tables[table]))
        predicate = query.predicates.get(table)
        subject = f"table:{table}"
        if predicate is None:
            value = self._record(subject, "rows", rows)
        elif table in self._base_selectivities:
            selectivity = float(self._base_selectivities[table])
            self._record(subject, "frontend-batch", selectivity)
            value = rows * selectivity
        else:
            value = None
            try:
                key, box = self.resolve_table_model(
                    self._registry, query, table
                )
            except KeyError:
                pass
            else:
                server = self._server_for(key)
                selectivity = float(server.estimate(box))
                self._record(subject, "served-snapshot", selectivity)
                value = rows * selectivity
            if value is None:
                estimator = self._estimators.get(table)
                if estimator is None:
                    raise KeyError(
                        f"no served model or estimator can price the "
                        f"predicate on table {table!r}"
                    )
                selectivity = float(estimator.estimate(predicate))
                self._record(subject, "static-estimator", selectivity)
                value = rows * selectivity
        self._base_cache[table] = value
        return value

    # -- join selectivities --------------------------------------------
    def join_selectivity(
        self, query: JoinQuery, edge: Tuple[str, int, str, int]
    ) -> float:
        left, left_name, right, right_name = self._edge_names(query, edge)
        canonical = JoinEdge.of(left, left_name, right, right_name)
        if canonical in self._edge_cache:
            return self._edge_cache[canonical]
        subject = f"edge:{canonical}"
        value = self._join_sample_rung(query, edge, canonical, subject)
        if value is None:
            value = self._joint_integral_rung(query, edge, canonical, subject)
        if value is None:
            value = self._independence_rung(query, edge, subject)
        self._edge_cache[canonical] = value
        return value

    def _lookup_join_rows(
        self, key: ModelKey, edge: Tuple[str, int, str, int], canonical: JoinEdge
    ) -> Optional[float]:
        left, left_col, right, right_col = edge
        for candidate in (
            key,
            canonical,
            edge,
            (right, right_col, left, left_col),
            (
                canonical.left_table,
                canonical.left_column,
                canonical.right_table,
                canonical.right_column,
            ),
        ):
            try:
                if candidate in self._join_rows:
                    return float(self._join_rows[candidate])
            except TypeError:  # unhashable candidate form
                continue
        return None

    def _join_sample_rung(
        self,
        query: JoinQuery,
        edge: Tuple[str, int, str, int],
        canonical: JoinEdge,
        subject: str,
    ) -> Optional[float]:
        left, _, right, _ = edge
        for key, server in self._served_items(self._registry):
            if key.kind != JOIN_SAMPLE or not key.covers_edge(canonical):
                continue
            join_rows = self._lookup_join_rows(key, edge, canonical)
            if join_rows is None:
                continue  # a sample without cardinality evidence can't price
            rows_left = float(len(query.tables[left]))
            rows_right = float(len(query.tables[right]))
            pairs = rows_left * rows_right
            if pairs <= 0:
                return self._record(subject, "join-sample", 0.0)
            selectivity = join_rows / pairs
            correction = self._join_sample_correction(
                query, key, server, left, right
            )
            if correction is not None:
                selectivity *= correction
            return self._record(
                subject, "join-sample", min(max(selectivity, 0.0), 1.0)
            )
        return None

    def _join_sample_correction(
        self, query: JoinQuery, key: ModelKey, server, left: str, right: str
    ) -> Optional[float]:
        """Correlation correction from the join-result distribution.

        ``C_out`` multiplies predicate-filtered base cardinalities by
        the edge selectivity, which implicitly assumes the predicates
        are independent of the join.  The join-sample model sees the
        *post-join* distribution, so
        ``P_join(pred_L and pred_R) / (p_L * p_R)`` rescales the edge to
        make the product come out at the correlated truth.
        """
        if left not in query.predicates and right not in query.predicates:
            return None
        low: List[float] = []
        high: List[float] = []
        state = server.published.state
        sample = np.asarray(state.sample, dtype=np.float64)
        bandwidth = np.asarray(state.bandwidth, dtype=np.float64)
        for position, qualified in enumerate(key.columns):
            table_name, _, column = qualified.partition(".")
            predicate = query.predicates.get(table_name)
            index = None
            if predicate is not None and table_name in query.tables:
                names = list(query.tables[table_name].column_names)
                if column in names:
                    index = names.index(column)
            if predicate is not None and index is not None:
                low.append(float(predicate.low[index]))
                high.append(float(predicate.high[index]))
            else:
                # Unconstrained dimension: cover the model's mass so the
                # joint read marginalises it out.
                margin = 6.0 * float(bandwidth[position])
                low.append(float(sample[:, position].min()) - margin)
                high.append(float(sample[:, position].max()) + margin)
        joint = float(server.estimate(Box(np.array(low), np.array(high))))
        independent = 1.0
        for name in (left, right):
            if name in query.predicates:
                rows = float(len(query.tables[name]))
                if rows <= 0:
                    return None
                try:
                    independent *= self.base_cardinality(query, name) / rows
                except KeyError:
                    # The predicate itself is unpriceable here — skip the
                    # correction rather than fail the whole edge.
                    return None
        if independent <= 0.0:
            return None
        return joint / independent

    def _joint_integral_rung(
        self,
        query: JoinQuery,
        edge: Tuple[str, int, str, int],
        canonical: JoinEdge,
        subject: str,
    ) -> Optional[float]:
        from ..core.join import band_join_selectivity, equi_join_density

        left, left_col, right, right_col = edge
        left_name = str(query.tables[left].column_names[left_col])
        right_name = str(query.tables[right].column_names[right_col])
        sides = []
        for table, column in ((left, left_name), (right, right_name)):
            found = None
            for key, server in self._served_items(self._registry):
                if key.kind != TABLE or key.tables[0] != table:
                    continue
                if column not in key.columns:
                    continue
                found = (key.columns.index(column), server)
                break
            if found is None:
                return None
            sides.append(found)
        (l_index, l_server), (r_index, r_server) = sides
        l_reader = l_server.published.reader
        r_reader = r_server.published.reader
        try:
            if self._band_epsilon is not None:
                selectivity = band_join_selectivity(
                    l_reader,
                    r_reader,
                    [l_index],
                    [r_index],
                    self._band_epsilon,
                )
            else:
                selectivity = self._key_width * equi_join_density(
                    l_reader, r_reader, [l_index], [r_index]
                )
        except ValueError:
            # Non-Gaussian kernels have no closed form — fall through.
            return None
        return self._record(
            subject, "joint-integral", min(max(selectivity, 0.0), 1.0)
        )

    def _independence_rung(
        self, query: JoinQuery, edge: Tuple[str, int, str, int], subject: str
    ) -> float:
        from ..core.join import independence_band_join_selectivity

        left, left_col, right, right_col = edge
        epsilon = (
            self._band_epsilon
            if self._band_epsilon is not None
            else self._key_width / 2.0
        )
        selectivity = independence_band_join_selectivity(
            query.tables[left].rows()[:, left_col],
            query.tables[right].rows()[:, right_col],
            epsilon=epsilon,
        )
        return self._record(
            subject, "independence", min(max(selectivity, 0.0), 1.0)
        )


def _canonical_edge(
    query: JoinQuery, edge: Tuple[str, int, str, int]
) -> Tuple[str, int, str, int]:
    """Map an oriented edge back to the query's stored tuple form."""
    left, left_col, right, right_col = edge
    for candidate in query.joins:
        if candidate in (
            (left, left_col, right, right_col),
            (right, right_col, left, left_col),
        ):
            return candidate
    raise AssertionError(f"edge {edge!r} is not part of the query")


def price_order(
    query: JoinQuery, order: Sequence[str], model: CostModel
) -> Plan:
    """Price one left-deep order under a cost model (C_out).

    Useful for pricing a plan *chosen* by one model under another —
    e.g. the true cost of the order an estimator-driven optimizer
    picked, which is how the plan-quality experiments compare modes.
    """
    prefix: FrozenSet[str] = frozenset([order[0]])
    cardinality = model.base_cardinality(query, order[0])
    nodes = [PlanNode(order[0], cardinality)]
    cost = 0.0
    for table in order[1:]:
        base = model.base_cardinality(query, table)
        selectivity = 1.0
        for edge in query.join_edges_between(prefix, table):
            selectivity *= model.join_selectivity(
                query, _canonical_edge(query, edge)
            )
        cardinality = cardinality * base * selectivity
        cost += cardinality
        nodes.append(PlanNode(table, cardinality))
        prefix = prefix | {table}
    return Plan(order=tuple(order), nodes=tuple(nodes), cost=cost)


def _optimize_exhaustive(
    query: JoinQuery, model: CostModel, names: Sequence[str]
) -> Plan:
    best: Optional[Plan] = None
    for order in permutations(names):
        plan = price_order(query, order, model)
        if best is None or plan.cost < best.cost:
            best = plan
    assert best is not None
    return best


def _optimize_dp(
    query: JoinQuery, model: CostModel, names: Sequence[str]
) -> Plan:
    """Dynamic program over table subsets (left-deep, C_out).

    ``C_out`` of a left-deep order decomposes over its prefix *sets*:
    the cardinality of a prefix is order-independent (a product of base
    cardinalities and intra-set edge selectivities), so
    ``cost(S) = min_t cost(S - t) + card(S)``.  States are bitmask
    subsets; ties are broken toward the lexicographically first order,
    which makes the DP return exactly the plan the exhaustive
    ``permutations`` sweep would.
    """
    n = len(names)
    full = (1 << n) - 1

    base = [model.base_cardinality(query, name) for name in names]

    def edge_selectivity(prefix_bits: int, table_index: int) -> float:
        prefix = frozenset(
            names[i] for i in range(n) if prefix_bits & (1 << i)
        )
        selectivity = 1.0
        for edge in query.join_edges_between(prefix, names[table_index]):
            selectivity *= model.join_selectivity(
                query, _canonical_edge(query, edge)
            )
        return selectivity

    # card[mask]: cardinality of the joined subset — order-independent,
    # computed by peeling the lowest set bit.
    card = [0.0] * (full + 1)
    best_cost: List[Optional[float]] = [None] * (full + 1)
    best_order: List[Optional[Tuple[str, ...]]] = [None] * (full + 1)
    for index in range(n):
        mask = 1 << index
        card[mask] = base[index]
        best_cost[mask] = 0.0
        best_order[mask] = (names[index],)

    for mask in range(1, full + 1):
        if mask & (mask - 1) == 0:  # singleton, seeded above
            continue
        lowest = (mask & -mask).bit_length() - 1
        rest = mask ^ (1 << lowest)
        card[mask] = (
            card[rest] * base[lowest] * edge_selectivity(rest, lowest)
        )
        choice: Optional[Tuple[float, Tuple[str, ...]]] = None
        for index in range(n):
            bit = 1 << index
            if not mask & bit:
                continue
            previous = mask ^ bit
            prev_cost = best_cost[previous]
            prev_order = best_order[previous]
            assert prev_cost is not None and prev_order is not None
            candidate = (prev_cost + card[mask], prev_order + (names[index],))
            if choice is None or candidate < choice:
                choice = candidate
        assert choice is not None
        best_cost[mask], best_order[mask] = choice

    order = best_order[full]
    assert order is not None
    return price_order(query, order, model)


def optimize_join_order(
    query: JoinQuery, model: CostModel, *, method: str = "dp"
) -> Plan:
    """Optimal left-deep join ordering under the given cost model.

    ``method="dp"`` (default) runs the ``O(2^n)`` subset dynamic
    program — exact, and practical for 10+ table queries where the
    factorial sweep is not.  ``method="exhaustive"`` keeps the original
    ``permutations`` enumeration (capped at 8 tables) for
    cross-checking; both return identical plans, including on cost
    ties, where the lexicographically first optimal order wins.
    """
    names = sorted(query.tables)
    if method == "exhaustive":
        if len(names) > 8:
            raise ValueError("exhaustive enumeration is capped at 8 tables")
        return _optimize_exhaustive(query, model, names)
    if method == "dp":
        if len(names) > _DP_TABLE_CAP:
            raise ValueError(
                f"DP enumeration is capped at {_DP_TABLE_CAP} tables"
            )
        return _optimize_dp(query, model, names)
    raise ValueError(f"unknown enumeration method {method!r}")


def plan_quality_ratio(
    query: JoinQuery, chosen: Plan, truth: Optional[CostModel] = None
) -> float:
    """True cost of a chosen plan relative to the true optimum (>= 1).

    The metric of Section 1's motivation: how much slower is the plan an
    optimizer picks with *estimated* cardinalities than the plan it
    would have picked with perfect information?
    """
    truth = truth or TrueCostModel()
    optimal = optimize_join_order(query, truth)
    chosen_true = price_order(query, chosen.order, truth)
    if optimal.cost <= 0.0:
        return 1.0
    return max(chosen_true.cost / optimal.cost, 1.0)
