"""A miniature cost-based query optimizer driven by selectivity estimates.

Selectivity estimation only matters because optimizers consume it: the
paper's introduction motivates everything with the observation that
estimation quality "directly impacts plan quality" [21, 35].  This module
closes that loop for the reproduction: a System-R-style left-deep
join-order optimizer whose cost model is the classic ``C_out`` metric
(the sum of intermediate result cardinalities [31]), fed by pluggable
per-table selectivity estimators and join selectivities.

The experiment pattern it enables: optimise the same query once with a
good estimator (the self-tuning KDE) and once with a bad one (AVI, or a
stale model), execute both chosen orders against the true data, and
compare the *true* costs — the end-to-end impact of estimation errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import permutations
from typing import FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..geometry import Box
from ..baselines.base import SelectivityEstimator
from .table import Table

__all__ = [
    "JoinQuery",
    "PlanNode",
    "Plan",
    "CostModel",
    "EstimatedCostModel",
    "TrueCostModel",
    "optimize_join_order",
    "plan_quality_ratio",
]


@dataclass(frozen=True)
class JoinQuery:
    """A conjunctive select-project-join query over named tables.

    Parameters
    ----------
    tables:
        Table name -> relation.
    predicates:
        Optional per-table local range predicate.
    joins:
        Equi-join edges ``(left table, left column, right table, right
        column)``.  Tables without a join edge to the current prefix are
        combined as cross products (and priced accordingly).
    """

    tables: Mapping[str, Table]
    predicates: Mapping[str, Box] = field(default_factory=dict)
    joins: Sequence[Tuple[str, int, str, int]] = ()

    def __post_init__(self) -> None:
        if len(self.tables) < 2:
            raise ValueError("a join query needs at least two tables")
        for name in self.predicates:
            if name not in self.tables:
                raise ValueError(f"predicate on unknown table {name!r}")
        for left, left_col, right, right_col in self.joins:
            if left not in self.tables or right not in self.tables:
                raise ValueError("join edge references unknown table")
            if not 0 <= left_col < self.tables[left].dimensions:
                raise ValueError("join column out of range")
            if not 0 <= right_col < self.tables[right].dimensions:
                raise ValueError("join column out of range")

    def join_edges_between(
        self, prefix: FrozenSet[str], table: str
    ) -> List[Tuple[str, int, str, int]]:
        """Join edges connecting ``table`` to any table in ``prefix``."""
        edges = []
        for left, left_col, right, right_col in self.joins:
            if left in prefix and right == table:
                edges.append((left, left_col, right, right_col))
            elif right in prefix and left == table:
                edges.append((right, right_col, left, left_col))
        return edges


@dataclass(frozen=True)
class PlanNode:
    """One join step of a left-deep plan: the table joined in next."""

    table: str
    #: Estimated cardinality *after* this join.
    cardinality: float


@dataclass(frozen=True)
class Plan:
    """A left-deep join order with its cost-model accounting."""

    order: Tuple[str, ...]
    nodes: Tuple[PlanNode, ...]
    #: C_out: sum of intermediate result cardinalities.
    cost: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        chain = " JOIN ".join(self.order)
        return f"{chain}  (C_out = {self.cost:,.0f})"


class CostModel:
    """Cardinality oracle interface the optimizer prices plans with."""

    def base_cardinality(self, query: JoinQuery, table: str) -> float:
        """Rows of ``table`` surviving its local predicate."""
        raise NotImplementedError

    def join_selectivity(
        self,
        query: JoinQuery,
        edge: Tuple[str, int, str, int],
    ) -> float:
        """Fraction of the cross product matched by one join edge."""
        raise NotImplementedError


class EstimatedCostModel(CostModel):
    """Cost model backed by selectivity estimators.

    Parameters
    ----------
    estimators:
        Table name -> range-selectivity estimator for its local predicate.
    join_selectivities:
        Edge -> estimated join selectivity, keyed like the query's join
        tuples.  These typically come from
        :func:`repro.core.join.band_join_selectivity` /
        :func:`~repro.core.join.equi_join_density` or the independence
        baseline.
    """

    def __init__(
        self,
        estimators: Mapping[str, SelectivityEstimator],
        join_selectivities: Mapping[Tuple[str, int, str, int], float],
    ) -> None:
        self._estimators = dict(estimators)
        self._join_selectivities = dict(join_selectivities)

    def base_cardinality(self, query: JoinQuery, table: str) -> float:
        rows = len(query.tables[table])
        predicate = query.predicates.get(table)
        if predicate is None:
            return float(rows)
        estimator = self._estimators.get(table)
        if estimator is None:
            raise KeyError(f"no estimator registered for table {table!r}")
        return float(rows) * estimator.estimate(predicate)

    def join_selectivity(
        self, query: JoinQuery, edge: Tuple[str, int, str, int]
    ) -> float:
        try:
            return self._join_selectivities[edge]
        except KeyError:
            # Try the flipped orientation before giving up.
            left, left_col, right, right_col = edge
            flipped = (right, right_col, left, left_col)
            if flipped in self._join_selectivities:
                return self._join_selectivities[flipped]
            raise KeyError(f"no join selectivity for edge {edge!r}")


class TrueCostModel(CostModel):
    """Ground-truth cardinalities, computed against the actual tables.

    Used to price a *chosen* plan honestly, and to find the genuinely
    optimal plan for plan-quality comparisons.  Join selectivities are
    exact single-edge selectivities (correlations between edges are
    still combined independently — the standard optimizer simplification,
    applied equally to all cost models).
    """

    def base_cardinality(self, query: JoinQuery, table: str) -> float:
        relation = query.tables[table]
        predicate = query.predicates.get(table)
        if predicate is None:
            return float(len(relation))
        return float(relation.count(predicate))

    def join_selectivity(
        self, query: JoinQuery, edge: Tuple[str, int, str, int]
    ) -> float:
        from .join import band_join_count

        left, left_col, right, right_col = edge
        left_table = query.tables[left]
        right_table = query.tables[right]
        pairs = len(left_table) * len(right_table)
        if pairs == 0:
            return 0.0
        matches = band_join_count(
            left_table, right_table, left_col, right_col, epsilon=0.0
        )
        return matches / pairs


def _plan_for_order(
    query: JoinQuery, order: Sequence[str], model: CostModel
) -> Plan:
    """Price one left-deep order under a cost model (C_out)."""
    prefix: FrozenSet[str] = frozenset([order[0]])
    cardinality = model.base_cardinality(query, order[0])
    nodes = [PlanNode(order[0], cardinality)]
    cost = 0.0
    for table in order[1:]:
        base = model.base_cardinality(query, table)
        selectivity = 1.0
        for edge in query.join_edges_between(prefix, table):
            # Edge tuples are canonicalised back to the query's form.
            left, left_col, right, right_col = edge
            canonical = None
            for candidate in query.joins:
                if candidate in (
                    (left, left_col, right, right_col),
                    (right, right_col, left, left_col),
                ):
                    canonical = candidate
                    break
            assert canonical is not None
            selectivity *= model.join_selectivity(query, canonical)
        cardinality = cardinality * base * selectivity
        cost += cardinality
        nodes.append(PlanNode(table, cardinality))
        prefix = prefix | {table}
    return Plan(order=tuple(order), nodes=tuple(nodes), cost=cost)


def optimize_join_order(
    query: JoinQuery, model: CostModel
) -> Plan:
    """Exhaustive left-deep join ordering under the given cost model."""
    names = sorted(query.tables)
    if len(names) > 8:
        raise ValueError("exhaustive enumeration is capped at 8 tables")
    best: Optional[Plan] = None
    for order in permutations(names):
        plan = _plan_for_order(query, order, model)
        if best is None or plan.cost < best.cost:
            best = plan
    assert best is not None
    return best


def plan_quality_ratio(
    query: JoinQuery, chosen: Plan, truth: Optional[CostModel] = None
) -> float:
    """True cost of a chosen plan relative to the true optimum (>= 1).

    The metric of Section 1's motivation: how much slower is the plan an
    optimizer picks with *estimated* cardinalities than the plan it
    would have picked with perfect information?
    """
    truth = truth or TrueCostModel()
    optimal = optimize_join_order(query, truth)
    chosen_true = _plan_for_order(query, chosen.order, truth)
    if optimal.cost <= 0.0:
        return 1.0
    return max(chosen_true.cost / optimal.cost, 1.0)
