"""Workload replay: drive an estimator through a logged query trace.

The paper evaluates its estimator inside a live Postgres, where the
workload arrives as real queries and the engine hands back true
selectivities after execution (Section 5).  This module is the offline
equivalent: ingest a table dump and a query log from disk, then replay
the log against any registered estimator — estimate first (what the
optimizer would consume), execute against the table for the truth,
feed the truth back — collecting the Q-error/latency/footprint record
the §6 experiments report.

Two log formats are accepted, sniffed from the first non-blank line:

* **CSV** — header ``<col>_lo,<col>_hi,...[,selectivity]``; one range
  query per row.  A ``selectivity`` column replays *recorded* truths
  (a trace captured on another system); without it truths are computed
  by executing each query against the table.
* **SQL-lite** — one ``SELECT``statement per line with a conjunctive
  ``WHERE`` clause of ``BETWEEN`` / ``>=`` / ``<=`` / ``>`` / ``<`` /
  ``=`` predicates over the table's columns.  Unconstrained columns
  default to the table's bounds (the query is open in that dimension),
  matching how a real optimizer sees partial predicates.
"""

from __future__ import annotations

import csv
import re
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..baselines.base import SelectivityEstimator
from ..geometry import Box
from .table import Table

__all__ = [
    "LoggedQuery",
    "ReplayReport",
    "load_query_log",
    "load_table_csv",
    "qerror",
    "replay_workload",
]


@dataclass(frozen=True)
class LoggedQuery:
    """One entry of a workload log: a range query, optionally with the
    true selectivity recorded when the query originally executed."""

    query: Box
    #: Recorded true selectivity, or ``None`` to compute it by executing
    #: the query against the replay table.
    selectivity: Optional[float] = None


# ----------------------------------------------------------------------
# Ingest: table dumps
# ----------------------------------------------------------------------
def load_table_csv(path: str) -> Table:
    """Load a CSV table dump (header = column names) into a :class:`Table`.

    Every value must parse as a finite float — the substrate models
    real-valued attributes without NULLs, so a missing cell is a loud
    error, not a silent zero.
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"table dump {path!r} is empty") from None
        columns = [name.strip() for name in header]
        if not columns or any(not name for name in columns):
            raise ValueError(
                f"table dump {path!r} needs a header row of column names"
            )
        rows: List[List[float]] = []
        for lineno, record in enumerate(reader, start=2):
            if not record or (len(record) == 1 and not record[0].strip()):
                continue
            if len(record) != len(columns):
                raise ValueError(
                    f"{path!r} line {lineno}: expected {len(columns)} "
                    f"values, got {len(record)}"
                )
            try:
                rows.append([float(value) for value in record])
            except ValueError:
                raise ValueError(
                    f"{path!r} line {lineno}: non-numeric value in "
                    f"{record!r}"
                ) from None
    if not rows:
        raise ValueError(f"table dump {path!r} has a header but no rows")
    return Table(
        dimensions=len(columns),
        column_names=columns,
        initial_rows=np.asarray(rows, dtype=np.float64),
    )


# ----------------------------------------------------------------------
# Ingest: query logs
# ----------------------------------------------------------------------
#: One conjunct of a SQL-lite WHERE clause: ``col OP literal`` or
#: ``col BETWEEN lo AND hi``.
_NUMBER = r"[-+]?(?:\d+\.?\d*|\.\d+)(?:[eE][-+]?\d+)?"
_BETWEEN_RE = re.compile(
    rf"(\w+)\s+between\s+({_NUMBER})\s+and\s+({_NUMBER})", re.IGNORECASE
)
_COMPARE_RE = re.compile(rf"^(\w+)\s*(<=|>=|<|>|=)\s*({_NUMBER})$")
_WHERE_RE = re.compile(r"\bwhere\b(.*?)(?:;|$)", re.IGNORECASE | re.DOTALL)


def _parse_sql_query(
    line: str, lineno: int, path: str, table: Table
) -> LoggedQuery:
    """Parse one SQL-lite SELECT into a :class:`LoggedQuery`."""
    match = _WHERE_RE.search(line)
    if match is None:
        raise ValueError(
            f"{path!r} line {lineno}: SELECT without a WHERE clause "
            "(an unconstrained scan has no selectivity to estimate)"
        )
    bounds = table.bounds()
    low = bounds.low.copy()
    high = bounds.high.copy()
    index = {name: i for i, name in enumerate(table.column_names)}

    # BETWEEN predicates contain an AND of their own, so they are peeled
    # off first; the remaining clause splits cleanly on conjunction ANDs.
    def _consume_between(between: "re.Match[str]") -> str:
        name, lo, hi = between.groups()
        dim = _column_index(name, index, path, lineno)
        low[dim] = max(low[dim], float(lo))
        high[dim] = min(high[dim], float(hi))
        return ""

    clause = _BETWEEN_RE.sub(_consume_between, match.group(1))
    for conjunct in re.split(r"\band\b", clause, flags=re.IGNORECASE):
        conjunct = conjunct.strip()
        if not conjunct:
            continue
        compare = _COMPARE_RE.match(conjunct)
        if compare is None:
            raise ValueError(
                f"{path!r} line {lineno}: unsupported predicate "
                f"{conjunct!r} (supported: BETWEEN, <=, >=, <, >, =)"
            )
        name, op, literal = compare.groups()
        dim = _column_index(name, index, path, lineno)
        value = float(literal)
        # Strict comparisons are treated as their closed counterparts:
        # over real-valued data the boundary has measure zero, and every
        # estimator here models closed boxes.
        if op in (">=", ">"):
            low[dim] = max(low[dim], value)
        elif op in ("<=", "<"):
            high[dim] = min(high[dim], value)
        else:  # "=" — a point constraint, a zero-width range
            low[dim] = max(low[dim], value)
            high[dim] = min(high[dim], value)
    # An over-constrained dimension (contradictory predicates) yields an
    # empty box; clamp so Box's low <= high invariant holds and the
    # query's true selectivity is simply zero-ish.
    high = np.maximum(low, high)
    return LoggedQuery(query=Box(low=low, high=high))


def _column_index(
    name: str, index: Dict[str, int], path: str, lineno: int
) -> int:
    try:
        return index[name]
    except KeyError:
        known = ", ".join(index)
        raise ValueError(
            f"{path!r} line {lineno}: unknown column {name!r} "
            f"(table columns: {known})"
        ) from None


def _parse_csv_log(path: str, table: Table) -> List[LoggedQuery]:
    """Parse a CSV query log with ``<col>_lo``/``<col>_hi`` headers."""
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise ValueError(f"query log {path!r} is empty")
        fields = [name.strip() for name in reader.fieldnames]
        has_truth = "selectivity" in fields
        pairs: List[Tuple[str, str]] = []
        for column in table.column_names:
            lo_field, hi_field = f"{column}_lo", f"{column}_hi"
            if lo_field not in fields or hi_field not in fields:
                raise ValueError(
                    f"query log {path!r} is missing {lo_field!r}/"
                    f"{hi_field!r} for table column {column!r}"
                )
            pairs.append((lo_field, hi_field))
        entries: List[LoggedQuery] = []
        for lineno, record in enumerate(reader, start=2):
            try:
                low = [float(record[lo]) for lo, _ in pairs]
                high = [float(record[hi]) for _, hi in pairs]
                truth = (
                    float(record["selectivity"]) if has_truth else None
                )
            except (TypeError, ValueError):
                raise ValueError(
                    f"{path!r} line {lineno}: non-numeric bound in "
                    f"{record!r}"
                ) from None
            if truth is not None and not 0.0 <= truth <= 1.0:
                raise ValueError(
                    f"{path!r} line {lineno}: recorded selectivity "
                    f"{truth} outside [0, 1]"
                )
            entries.append(
                LoggedQuery(query=Box(low=low, high=high), selectivity=truth)
            )
    if not entries:
        raise ValueError(f"query log {path!r} has a header but no queries")
    return entries


def load_query_log(path: str, table: Table) -> List[LoggedQuery]:
    """Load a workload log (CSV or SQL-lite, sniffed) for ``table``.

    The table supplies column names (for both formats) and per-column
    default bounds for SQL predicates that leave a dimension open.
    """
    with open(path) as handle:
        first = ""
        for line in handle:
            stripped = line.strip()
            if stripped and not stripped.startswith("--"):
                first = stripped
                break
    if first.lower().startswith("select"):
        entries: List[LoggedQuery] = []
        with open(path) as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line or line.startswith("--"):
                    continue
                entries.append(_parse_sql_query(line, lineno, path, table))
        if not entries:
            raise ValueError(f"query log {path!r} has no queries")
        return entries
    return _parse_csv_log(path, table)


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
@dataclass
class ReplayReport:
    """Per-query record and summary of one workload replay."""

    #: Estimator display name (``estimator.name``).
    estimator: str
    #: ``(n,)`` estimates, truths, Q-errors and per-query latencies
    #: (seconds, estimation call only — execution is the table's cost).
    estimates: np.ndarray
    truths: np.ndarray
    qerrors: np.ndarray
    latencies: np.ndarray
    #: Q-error floor applied to both sides (default ``1 / |table|``).
    floor: float
    #: Whether feedback was driven after each query.
    feedback: bool
    #: Estimator footprint after the replay (bytes; 0 when unreported).
    memory_bytes: int = 0

    def __len__(self) -> int:
        return int(self.estimates.shape[0])

    def qerror_percentiles(
        self, percentiles: Sequence[float] = (50.0, 90.0, 95.0, 99.0)
    ) -> Dict[str, float]:
        """Named Q-error percentiles, e.g. ``{"p50": 1.2, ...}``."""
        if self.qerrors.size == 0:
            return {f"p{p:g}": float("nan") for p in percentiles}
        values = np.percentile(self.qerrors, list(percentiles))
        return {
            f"p{p:g}": float(v) for p, v in zip(percentiles, values)
        }

    def tail(self, count: int) -> "ReplayReport":
        """Report restricted to the last ``count`` queries (post-drift /
        post-training windows of the adaptivity experiments)."""
        count = max(0, min(count, len(self)))
        return ReplayReport(
            estimator=self.estimator,
            estimates=self.estimates[len(self) - count :],
            truths=self.truths[len(self) - count :],
            qerrors=self.qerrors[len(self) - count :],
            latencies=self.latencies[len(self) - count :],
            floor=self.floor,
            feedback=self.feedback,
            memory_bytes=self.memory_bytes,
        )

    def as_dict(self) -> dict:
        """JSON-ready summary (no per-query arrays)."""
        return {
            "estimator": self.estimator,
            "queries": len(self),
            "feedback": self.feedback,
            "floor": self.floor,
            "qerror": self.qerror_percentiles(),
            "mean_latency_seconds": (
                float(self.latencies.mean()) if len(self) else 0.0
            ),
            "memory_bytes": int(self.memory_bytes),
        }


def qerror(
    estimates: np.ndarray, truths: np.ndarray, floor: float
) -> np.ndarray:
    """Elementwise Q-error ``max(est/true, true/est)`` with a floor.

    Both sides are floored at ``floor`` (conventionally one tuple's
    worth of selectivity) so empty queries and zero estimates compare
    finitely, the same convention as :mod:`repro.bench`.
    """
    if floor <= 0.0:
        raise ValueError("floor must be positive")
    est = np.maximum(np.asarray(estimates, dtype=np.float64), floor)
    true = np.maximum(np.asarray(truths, dtype=np.float64), floor)
    return np.maximum(est / true, true / est)


def replay_workload(
    table: Table,
    estimator: SelectivityEstimator,
    log: Sequence[LoggedQuery],
    *,
    feedback: bool = True,
    batch_size: Optional[int] = None,
    floor: Optional[float] = None,
) -> ReplayReport:
    """Replay a query log against an estimator, optionally with feedback.

    For each logged query, in order: ask the estimator for its estimate
    (timed — this is the optimizer-facing latency), obtain the truth
    (the recorded selectivity when the log carries one, otherwise by
    executing against ``table``), and — when ``feedback`` is on — hand
    the truth back so self-tuning estimators learn as the log unfolds.

    ``batch_size`` drives the estimator ``batch_size`` queries at a time
    through ``estimate_many``/``feedback_many`` instead of the per-query
    calls — the serving-path configuration.  Order is preserved either
    way, so drift in the log reaches adaptive estimators in log order.
    """
    entries = list(log)
    floor_value = (
        float(floor)
        if floor is not None
        else 1.0 / max(1, table.row_count)
    )
    estimates = np.empty(len(entries), dtype=np.float64)
    truths = np.empty(len(entries), dtype=np.float64)
    latencies = np.empty(len(entries), dtype=np.float64)
    if batch_size is not None and int(batch_size) < 1:
        raise ValueError("batch_size must be at least 1")
    step = 1 if batch_size is None else int(batch_size)
    for start in range(0, len(entries), step):
        chunk = entries[start : start + step]
        boxes = [entry.query for entry in chunk]
        begin = time.perf_counter()
        if batch_size is None:
            chunk_estimates = np.array(
                [estimator.estimate(boxes[0])], dtype=np.float64
            )
        else:
            chunk_estimates = np.asarray(
                estimator.estimate_many(boxes), dtype=np.float64
            )
        elapsed = time.perf_counter() - begin
        chunk_truths = np.array(
            [
                entry.selectivity
                if entry.selectivity is not None
                else table.selectivity(entry.query)
                for entry in chunk
            ],
            dtype=np.float64,
        )
        if feedback:
            if batch_size is None:
                estimator.feedback(boxes[0], float(chunk_truths[0]))
            else:
                estimator.feedback_many(boxes, chunk_truths)
        stop = start + len(chunk)
        estimates[start:stop] = chunk_estimates
        truths[start:stop] = chunk_truths
        latencies[start:stop] = elapsed / len(chunk)
    return ReplayReport(
        estimator=getattr(estimator, "name", type(estimator).__name__),
        estimates=estimates,
        truths=truths,
        qerrors=qerror(estimates, truths, floor_value),
        latencies=latencies,
        floor=floor_value,
        feedback=feedback,
        memory_bytes=int(getattr(estimator, "memory_bytes", lambda: 0)()),
    )
