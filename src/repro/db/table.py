"""In-memory relation with the interfaces the estimator needs.

The paper integrates its estimator into Postgres 9.3.1, using exactly
three database services (Section 5): ANALYZE-style random sampling for
model construction, query execution with true-selectivity feedback, and
notifications about inserted tuples for reservoir sampling.  This module
provides those services over an in-memory, real-valued relation.

The table stores rows in a capacity-doubling dense array.  Deletions
compact lazily through a free-list-free swap-with-last scheme, keeping
``rows()`` a contiguous view at all times — the simplest layout that
makes brute-force range counts (the ground truth of every experiment)
cheap numpy reductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from ..geometry import Box

__all__ = ["Table", "TableListener", "QueryResult"]


@dataclass(frozen=True)
class QueryResult:
    """Outcome of executing a range query against a table."""

    query: Box
    #: Number of matching tuples.
    count: int
    #: Table cardinality at execution time.
    table_size: int

    @property
    def selectivity(self) -> float:
        """Matching fraction; zero for an empty table."""
        if self.table_size == 0:
            return 0.0
        return self.count / self.table_size


class TableListener:
    """Observer interface for table modifications.

    The estimator's maintenance hooks (reservoir sampling, population
    counters) subscribe through this interface — the stand-in for the
    paper's "sample maintenance routine gets notified by the database
    engine" (Section 5.6).
    """

    def on_insert(self, row: np.ndarray) -> None:  # pragma: no cover
        """Called after a row was inserted."""

    def on_delete(self, row: np.ndarray) -> None:  # pragma: no cover
        """Called after a row was deleted."""


class Table:
    """A relation over ``d`` real-valued attributes.

    Parameters
    ----------
    dimensions:
        Number of attributes.
    column_names:
        Optional attribute names (defaults to ``a0 .. a{d-1}``).
    initial_rows:
        Optional ``(n, d)`` array to bulk-load (no listener notifications,
        like a bulk COPY).
    """

    def __init__(
        self,
        dimensions: int,
        column_names: Optional[Sequence[str]] = None,
        initial_rows: Optional[np.ndarray] = None,
    ) -> None:
        if dimensions < 1:
            raise ValueError("dimensions must be at least 1")
        if column_names is not None and len(column_names) != dimensions:
            raise ValueError("column_names length must equal dimensions")
        self.dimensions = dimensions
        self.column_names: List[str] = (
            list(column_names)
            if column_names is not None
            else [f"a{i}" for i in range(dimensions)]
        )
        self._capacity = 1024
        self._rows = np.empty((self._capacity, dimensions), dtype=np.float64)
        self._size = 0
        self._listeners: List[TableListener] = []
        self._inserts = 0
        self._deletes = 0
        if initial_rows is not None:
            self.bulk_load(initial_rows)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def row_count(self) -> int:
        return self._size

    @property
    def inserts(self) -> int:
        """Total single-row inserts (excludes bulk loads)."""
        return self._inserts

    @property
    def deletes(self) -> int:
        return self._deletes

    def rows(self) -> np.ndarray:
        """Read-only view of the live rows."""
        view = self._rows[: self._size].view()
        view.flags.writeable = False
        return view

    def bounds(self, margin: float = 0.0) -> Box:
        """Bounding box of the live rows."""
        if self._size == 0:
            raise ValueError("cannot compute bounds of an empty table")
        return Box.bounding(self._rows[: self._size], margin=margin)

    # ------------------------------------------------------------------
    # Modification
    # ------------------------------------------------------------------
    def add_listener(self, listener: TableListener) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener: TableListener) -> None:
        self._listeners.remove(listener)

    def _ensure_capacity(self, extra: int) -> None:
        needed = self._size + extra
        if needed <= self._capacity:
            return
        while self._capacity < needed:
            self._capacity *= 2
        grown = np.empty((self._capacity, self.dimensions), dtype=np.float64)
        grown[: self._size] = self._rows[: self._size]
        self._rows = grown

    def bulk_load(self, rows: np.ndarray) -> None:
        """Append rows without listener notifications (initial load)."""
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        if rows.shape[1] != self.dimensions:
            raise ValueError(
                f"rows have {rows.shape[1]} columns, table has {self.dimensions}"
            )
        if not np.all(np.isfinite(rows)):
            raise ValueError(
                "rows contain non-finite values; the substrate models "
                "real-valued attributes without NULLs"
            )
        self._ensure_capacity(rows.shape[0])
        self._rows[self._size : self._size + rows.shape[0]] = rows
        self._size += rows.shape[0]

    def insert(self, row: Sequence[float]) -> None:
        """Insert one tuple and notify listeners."""
        row = np.asarray(row, dtype=np.float64).reshape(-1)
        if row.shape != (self.dimensions,):
            raise ValueError(
                f"row must have {self.dimensions} values, got {row.shape}"
            )
        if not np.all(np.isfinite(row)):
            raise ValueError("row contains non-finite values")
        self._ensure_capacity(1)
        self._rows[self._size] = row
        self._size += 1
        self._inserts += 1
        for listener in self._listeners:
            listener.on_insert(row.copy())

    def insert_many(self, rows: np.ndarray) -> None:
        """Insert several tuples, notifying listeners per row."""
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        for row in rows:
            self.insert(row)

    def delete_where(self, predicate: Callable[[np.ndarray], np.ndarray]) -> int:
        """Delete rows for which ``predicate(rows) -> bool mask`` is true.

        Returns the number of deleted rows.  Listeners receive one
        ``on_delete`` per removed row.
        """
        live = self._rows[: self._size]
        mask = np.asarray(predicate(live), dtype=bool)
        if mask.shape != (self._size,):
            raise ValueError("predicate must return one boolean per row")
        doomed = live[mask].copy()
        keep = live[~mask]
        self._rows[: keep.shape[0]] = keep
        self._size = keep.shape[0]
        self._deletes += doomed.shape[0]
        for row in doomed:
            for listener in self._listeners:
                listener.on_delete(row)
        return doomed.shape[0]

    def delete_in(self, region: Box) -> int:
        """Delete every row inside ``region``."""
        return self.delete_where(lambda rows: region.contains_points(rows))

    def update_where(
        self,
        predicate: Callable[[np.ndarray], np.ndarray],
        transform: Callable[[np.ndarray], np.ndarray],
    ) -> int:
        """Update matching rows in place: ``rows[mask] = transform(rows[mask])``.

        Modeled as delete+insert for listener purposes, which is how the
        sample maintenance of Section 4.2 perceives updates.
        """
        live = self._rows[: self._size]
        mask = np.asarray(predicate(live), dtype=bool)
        if mask.shape != (self._size,):
            raise ValueError("predicate must return one boolean per row")
        old_rows = live[mask].copy()
        if old_rows.shape[0] == 0:
            return 0
        new_rows = np.atleast_2d(
            np.asarray(transform(old_rows), dtype=np.float64)
        )
        if new_rows.shape != old_rows.shape:
            raise ValueError("transform must preserve the row shape")
        live[mask] = new_rows
        for old, new in zip(old_rows, new_rows):
            for listener in self._listeners:
                listener.on_delete(old)
                listener.on_insert(new.copy())
        return old_rows.shape[0]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def count(self, region: Box) -> int:
        """True number of tuples inside ``region``."""
        if region.dimensions != self.dimensions:
            raise ValueError("query dimensionality mismatch")
        if self._size == 0:
            return 0
        return int(region.contains_points(self._rows[: self._size]).sum())

    def select(self, region: Box) -> np.ndarray:
        """Rows inside ``region`` (copy)."""
        live = self._rows[: self._size]
        return live[region.contains_points(live)].copy()

    def execute(self, query: Box) -> QueryResult:
        """Run a range query, returning count and selectivity feedback."""
        return QueryResult(
            query=query, count=self.count(query), table_size=self._size
        )

    def selectivity(self, region: Box) -> float:
        """True selectivity of ``region``."""
        return self.execute(region).selectivity

    # ------------------------------------------------------------------
    # Sampling (the ANALYZE path, Section 5.2)
    # ------------------------------------------------------------------
    def sample_rows(
        self, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """``count`` rows drawn uniformly with replacement.

        This is the row source for Karma replacements; sampling *with*
        replacement keeps it well-defined even when ``count`` exceeds the
        table size.
        """
        if self._size == 0:
            return np.empty((0, self.dimensions), dtype=np.float64)
        indices = rng.integers(self._size, size=count)
        return self._rows[indices].copy()

    def analyze(
        self,
        sample_size: int,
        rng: Optional[np.random.Generator] = None,
        *,
        seed: Union[None, int, np.random.SeedSequence] = None,
    ) -> np.ndarray:
        """Collect a simple random sample without replacement (ANALYZE).

        Mirrors the paper's model construction: Postgres' internal
        sampling routines gather the requested number of rows, which are
        then shipped to the device in one bulk transfer.

        Determinism contract: pass either an explicit ``rng`` or a
        ``seed`` (an int or a :class:`numpy.random.SeedSequence`, like
        :class:`~repro.core.model.SelfTuningKDE` accepts) and two
        ANALYZE passes over the same table contents return the same
        sample — so two warm starts built from the same table agree
        bit-for-bit.  With neither, the sample draws fresh OS entropy
        (the pre-seeding-discipline behaviour).  ``rng`` and ``seed``
        are mutually exclusive; an ``rng`` that arrived alongside a
        ``seed`` would silently win, hiding the caller's intent.
        """
        if sample_size < 1:
            raise ValueError("sample_size must be at least 1")
        if self._size == 0:
            raise ValueError("cannot ANALYZE an empty table")
        if rng is not None and seed is not None:
            raise ValueError("pass either rng= or seed=, not both")
        if rng is None:
            if isinstance(seed, np.random.SeedSequence):
                rng = np.random.default_rng(seed)
            else:
                rng = np.random.default_rng(np.random.SeedSequence(seed))
        size = min(sample_size, self._size)
        indices = rng.choice(self._size, size=size, replace=False)
        return self._rows[indices].copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table(d={self.dimensions}, rows={self._size})"
