"""Simulated OpenCL-like device layer (the GPU substitution).

The paper offloads estimation onto a GTX-460 through OpenCL; this
package replaces the hardware with an analytic device model: numpy
executes every kernel's math exactly, while
:class:`~repro.device.runtime.DeviceContext` meters transfers/launches
and advances a modelled clock calibrated to the paper's reported
performance envelope (see DESIGN.md, substitution 1).
"""

from .buffers import DeviceBuffer, TransferLog, TransferRecord
from .codegen import (
    clear_kernel_cache,
    compile_contribution_kernel,
    compile_gradient_kernel,
    kernel_cache_size,
)
from .costmodel import DeviceCostModel, STHolesCostModel
from .kde_device import DeviceKDE
from .partition import MultiDeviceKDE, fission
from .runtime import DeviceContext, LaunchRecord
from .specs import GTX460, XEON_E5620, DeviceSpec, named_device

__all__ = [
    "DeviceBuffer",
    "DeviceContext",
    "DeviceCostModel",
    "DeviceKDE",
    "DeviceSpec",
    "GTX460",
    "LaunchRecord",
    "MultiDeviceKDE",
    "STHolesCostModel",
    "TransferLog",
    "TransferRecord",
    "XEON_E5620",
    "clear_kernel_cache",
    "compile_contribution_kernel",
    "compile_gradient_kernel",
    "fission",
    "kernel_cache_size",
    "named_device",
]
