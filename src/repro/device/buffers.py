"""Device buffer management with transfer accounting.

Mirrors the memory story of Section 5.1: the sample lives in a row-major
device buffer in a configurable floating-point precision, and the *only*
recurring host<->device traffic is query bounds in, estimates out, plus
single-row sample replacements.  Every transfer is logged so experiments
(and tests) can assert the transfer-efficiency claims of Sections 4.2
and 5.6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

__all__ = ["DeviceBuffer", "TransferLog", "TransferRecord"]


@dataclass(frozen=True)
class TransferRecord:
    """One host<->device transfer."""

    direction: str  # "to_device" | "to_host"
    bytes: int
    label: str
    #: Modelled transfer time (seconds); 0.0 when the caller didn't price it.
    seconds: float = 0.0


@dataclass
class TransferLog:
    """Accumulates every transfer issued through a device context."""

    records: List[TransferRecord] = field(default_factory=list)

    def record(
        self, direction: str, nbytes: int, label: str, seconds: float = 0.0
    ) -> None:
        self.records.append(
            TransferRecord(direction, int(nbytes), label, float(seconds))
        )

    @property
    def count(self) -> int:
        return len(self.records)

    @property
    def total_bytes(self) -> int:
        return sum(r.bytes for r in self.records)

    def bytes_in_direction(self, direction: str) -> int:
        return sum(r.bytes for r in self.records if r.direction == direction)

    def bytes_for_label(self, label: str) -> int:
        return sum(r.bytes for r in self.records if r.label == label)

    def seconds_in_direction(self, direction: str) -> float:
        return sum(
            r.seconds for r in self.records if r.direction == direction
        )

    def clear(self) -> None:
        self.records.clear()


class DeviceBuffer:
    """A named device-resident array.

    The backing store is an ordinary numpy array (the simulation computes
    with it directly); what makes it a *device* buffer is that all writes
    from the host must go through the context's transfer methods, which
    meter the PCIe traffic.
    """

    def __init__(self, name: str, data: np.ndarray) -> None:
        self.name = name
        self._data = np.array(data, copy=True)

    @property
    def data(self) -> np.ndarray:
        """The device-side array (mutable by kernels, not the host)."""
        return self._data

    @property
    def nbytes(self) -> int:
        return int(self._data.nbytes)

    @property
    def shape(self):
        return self._data.shape

    @property
    def dtype(self):
        return self._data.dtype

    def write(self, data: np.ndarray) -> int:
        """Overwrite the whole buffer; returns bytes written."""
        data = np.asarray(data, dtype=self._data.dtype)
        if data.shape != self._data.shape:
            raise ValueError(
                f"shape mismatch writing buffer {self.name!r}: "
                f"{data.shape} vs {self._data.shape}"
            )
        self._data[...] = data
        return self.nbytes

    def write_rows(self, indices: np.ndarray, rows: np.ndarray) -> int:
        """Overwrite selected rows (single-transfer row updates, §5.1)."""
        indices = np.asarray(indices, dtype=np.intp)
        rows = np.asarray(rows, dtype=self._data.dtype)
        self._data[indices] = rows
        return int(rows.nbytes)

    def read(self) -> np.ndarray:
        """Copy the buffer contents back to the host."""
        return self._data.copy()
