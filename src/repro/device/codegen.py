"""Runtime kernel specialisation (the Section 5.1 code-generation story).

The paper compiles its OpenCL kernels per table, baking the floating
point precision and the dimensionality in as compile-time constants so
the driver can unroll loops and reorder accesses.  We mirror that design
point in Python: kernel source is a *template string* specialised for a
``(dimensions, precision)`` pair, compiled with ``exec`` into a closure
with the per-dimension loop fully unrolled, and cached.

Besides being faithful to the paper's architecture, unrolling genuinely
helps here too: the generated kernels chain whole-array expressions with
no Python-level loop over dimensions.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Tuple

import numpy as np
from scipy.special import erf  # noqa: F401  (used by generated code)

__all__ = [
    "compile_contribution_kernel",
    "compile_batch_contribution_kernel",
    "compile_gradient_kernel",
    "clear_kernel_cache",
    "kernel_cache_size",
]

_SQRT2 = math.sqrt(2.0)
_CACHE: Dict[Tuple[str, int, str], Callable] = {}


def _dim_factor(j: int) -> str:
    """Source of the per-dimension Eq. (13) factor for dimension ``j``."""
    return (
        f"0.5 * (erf((high[{j}] - sample[:, {j}]) / (SQRT2 * bandwidth[{j}]))"
        f" - erf((low[{j}] - sample[:, {j}]) / (SQRT2 * bandwidth[{j}])))"
    )


def _compile(name: str, source: str) -> Callable:
    """Compile generated kernel source, returning the kernel function."""
    namespace = {"erf": erf, "SQRT2": _SQRT2, "np": np}
    exec(compile(source, f"<generated:{name}>", "exec"), namespace)
    return namespace[name]


def compile_contribution_kernel(
    dimensions: int, precision: str = "float32"
) -> Callable[[np.ndarray, np.ndarray, np.ndarray, np.ndarray], np.ndarray]:
    """Specialised kernel computing per-point contributions (Eq. 13).

    Returns ``kernel(sample, low, high, bandwidth) -> (s,) contributions``
    with the dimension loop unrolled for ``dimensions``.
    """
    if dimensions < 1:
        raise ValueError("dimensions must be at least 1")
    key = ("contribution", dimensions, precision)
    if key in _CACHE:
        return _CACHE[key]
    lines = [
        "def _contribution_kernel(sample, low, high, bandwidth):",
        f"    out = {_dim_factor(0)}",
    ]
    for j in range(1, dimensions):
        lines.append(f"    out = out * ({_dim_factor(j)})")
    lines.append(f"    return out.astype(np.{precision}, copy=False)")
    kernel = _compile("_contribution_kernel", "\n".join(lines))
    _CACHE[key] = kernel
    return kernel


def _batch_dim_factor(j: int) -> str:
    """Source of the per-dimension Eq. (13) factor over a ``(q, s)`` grid."""
    return (
        f"0.5 * (erf((high[:, {j}, None] - sample[None, :, {j}])"
        f" / (SQRT2 * bandwidth[{j}]))"
        f" - erf((low[:, {j}, None] - sample[None, :, {j}])"
        f" / (SQRT2 * bandwidth[{j}])))"
    )


def compile_batch_contribution_kernel(
    dimensions: int, precision: str = "float32"
) -> Callable[[np.ndarray, np.ndarray, np.ndarray, np.ndarray], np.ndarray]:
    """Specialised *batched* contribution kernel: one launch, many queries.

    Returns ``kernel(sample, lows, highs, bandwidth) -> (q, s)``
    contributions, where ``lows``/``highs`` are the stacked ``(q, d)``
    bounds of a :class:`~repro.geometry.QueryBatch`.  Each element is
    computed by the exact per-element operations of the per-query kernel
    of :func:`compile_contribution_kernel` (one virtual thread per
    (query, sample point) pair), so the batched results are identical to
    ``q`` individual launches.
    """
    if dimensions < 1:
        raise ValueError("dimensions must be at least 1")
    key = ("batch_contribution", dimensions, precision)
    if key in _CACHE:
        return _CACHE[key]
    lines = [
        "def _batch_contribution_kernel(sample, low, high, bandwidth):",
        f"    out = {_batch_dim_factor(0)}",
    ]
    for j in range(1, dimensions):
        lines.append(f"    out = out * ({_batch_dim_factor(j)})")
    lines.append(f"    return out.astype(np.{precision}, copy=False)")
    kernel = _compile("_batch_contribution_kernel", "\n".join(lines))
    _CACHE[key] = kernel
    return kernel


def compile_gradient_kernel(
    dimensions: int, precision: str = "float32"
) -> Callable[[np.ndarray, np.ndarray, np.ndarray, np.ndarray], np.ndarray]:
    """Specialised kernel for the per-point gradient terms of Eq. (17).

    Returns ``kernel(sample, low, high, bandwidth) -> (s, d) partials``
    whose column means give ``d p_hat / d h`` (before the loss factor).
    """
    if dimensions < 1:
        raise ValueError("dimensions must be at least 1")
    key = ("gradient", dimensions, precision)
    if key in _CACHE:
        return _CACHE[key]
    lines = ["def _gradient_kernel(sample, low, high, bandwidth):"]
    # Precompute all per-dimension factors once.
    for j in range(dimensions):
        lines.append(f"    f{j} = {_dim_factor(j)}")
    lines.append(
        "    out = np.empty((sample.shape[0], %d), dtype=np.%s)"
        % (dimensions, precision)
    )
    for i in range(dimensions):
        # d/dh_i of the i-th factor: Gaussian closed form of Eq. (17).
        lines.append(
            f"    du = high[{i}] - sample[:, {i}]\n"
            f"    dl = low[{i}] - sample[:, {i}]\n"
            f"    h2 = bandwidth[{i}] * bandwidth[{i}]\n"
            f"    dmass = (dl * np.exp(-dl * dl / (2.0 * h2))"
            f" - du * np.exp(-du * du / (2.0 * h2)))"
            f" / (h2 * np.sqrt(2.0 * np.pi))"
        )
        others = " * ".join(f"f{j}" for j in range(dimensions) if j != i)
        if others:
            lines.append(f"    out[:, {i}] = dmass * ({others})")
        else:
            lines.append(f"    out[:, {i}] = dmass")
    lines.append("    return out")
    kernel = _compile("_gradient_kernel", "\n".join(lines))
    _CACHE[key] = kernel
    return kernel


def clear_kernel_cache() -> None:
    """Drop all compiled kernels (mainly for tests)."""
    _CACHE.clear()


def kernel_cache_size() -> int:
    return len(_CACHE)
