"""Analytic cost model converting operation counts into modelled time.

Separating *what ran* (kernel-term counts, transferred bytes, launches)
from *how long it takes on a given device* lets the same execution trace
be priced for the GPU and the CPU — which is exactly the experiment of
Figure 7.  The model is deliberately simple: every operation costs a
fixed scheduling latency plus work proportional to its size.

A second model prices the STHoles baseline, whose estimation is a
sequential traversal of the bucket tree on the host (the paper measures
the sequential implementation of [7] and reports it 7-10x slower than
GPU KDE on large models).
"""

from __future__ import annotations

from dataclasses import dataclass

from .specs import DeviceSpec

__all__ = ["DeviceCostModel", "STHolesCostModel"]


@dataclass(frozen=True)
class DeviceCostModel:
    """Prices kernel launches and transfers for one device."""

    spec: DeviceSpec

    def kernel_seconds(self, term_count: int) -> float:
        """One kernel evaluating ``term_count`` kernel terms."""
        if term_count < 0:
            raise ValueError("term_count must be non-negative")
        return (
            self.spec.kernel_launch_latency
            + term_count / self.spec.compute_throughput
        )

    def reduction_seconds(self, element_count: int) -> float:
        """A parallel binary reduction over ``element_count`` values.

        Priced as one kernel touching each element once: the tree depth
        is hidden by the device's parallelism, so the work term is linear
        and the launch latency dominates for small inputs.
        """
        return self.kernel_seconds(element_count)

    def transfer_seconds(self, nbytes: int) -> float:
        """One host<->device transfer of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return (
            self.spec.transfer_latency + nbytes / self.spec.transfer_bandwidth
        )


@dataclass(frozen=True)
class STHolesCostModel:
    """Prices the sequential host-side STHoles estimation of [7]."""

    #: Seconds per visited bucket (box intersection + arithmetic).
    seconds_per_bucket: float = 150e-9
    #: Fixed per-estimate overhead.
    base_seconds: float = 2e-6

    def estimate_seconds(self, bucket_count: int) -> float:
        if bucket_count < 0:
            raise ValueError("bucket_count must be non-negative")
        return self.base_seconds + bucket_count * self.seconds_per_bucket
