"""The KDE estimator executed on the (simulated) device (Section 5).

:class:`DeviceKDE` is the device-resident incarnation of the estimator:
its sample lives in a device buffer, every estimate follows the
transfer/launch choreography of Figure 3, and the context's modelled
clock prices the run for the configured device.  The math itself is
executed exactly by the runtime-specialised kernels of
:mod:`repro.device.codegen`.

Per-query choreography (numbers match Figure 3):

1. upload the query bounds (one small transfer),
2. launch the contribution kernel over the sample (``s*d`` terms),
3. reduce the contribution buffer to the estimate,
4. download the estimate (one small transfer),
5. *while the database executes the query*: launch the gradient kernel
   and its reduction — their compute is hidden behind query runtime
   (Section 5.5), so only launch latency is priced,
6. on feedback: upload the loss factor, update the mini-batch, and run
   the Karma kernel over the retained contribution buffer, downloading
   the replacement bitmap when points fell below the threshold.
"""

from __future__ import annotations

import warnings
from typing import List, Optional

import numpy as np

from dataclasses import asdict

from ..geometry import Box, QueryBatch
from ..core.adaptive import RMSpropTuner
from ..core.backends.sharded import ShardedSampleExecutor
from ..core.bandwidth import scott_bandwidth
from ..core.config import AdaptiveConfig, KarmaConfig
from ..core.karma import KarmaTracker
from ..core.losses import Loss, get_loss
from ..core.state import ModelState
from ..faults.breaker import CircuitBreaker, export_breaker_metrics
from ..faults.injector import FaultInjector
from ..faults.retry import RetryPolicy
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.spans import span
from ..obs.trace import EstimationTrace
from .codegen import (
    compile_batch_contribution_kernel,
    compile_contribution_kernel,
    compile_gradient_kernel,
)
from .runtime import DeviceContext

__all__ = ["DeviceKDE"]


def _sharded_batch_contributions(sample, start, stop, payload):
    """Worker-side shard of the batched contribution kernel.

    Each worker compiles (and process-locally caches) the same
    runtime-specialised kernel the inline path uses and evaluates it on
    its contiguous row shard of the shared-memory sample, so the
    concatenated ``(q, s)`` contribution matrix is bitwise identical to
    one inline launch.
    """
    low, high, bandwidth, precision = payload
    kernel = compile_batch_contribution_kernel(low.shape[1], precision)
    return kernel(sample[start:stop], low, high, bandwidth)


class DeviceKDE:
    """Device-resident self-tuning KDE with modelled timing.

    Parameters
    ----------
    sample:
        ``(s, d)`` sample; uploaded to the device once at construction
        (the single big transfer of Section 5.2).
    context:
        The simulated device to run on.
    bandwidth:
        Initial bandwidth; Scott's rule when omitted.
    precision:
        Device float precision (``"float32"`` like the paper's default,
        or ``"float64"``).
    adaptive:
        Enable the online tuning path (gradient + karma kernels).
    loss:
        Loss for adaptive updates and karma scoring.
    backend:
        Host execution strategy for the *batched* contribution kernel:
        ``"numpy"`` (inline, default) or ``"sharded"`` (row shards of
        the device sample buffer evaluated on a process pool over
        shared memory; bitwise-identical results).  The modelled clock
        is unaffected — the knob only changes which host cores do the
        simulation's math.
    shards:
        Shard count for the ``"sharded"`` backend (default: one per
        core).
    retry:
        :class:`~repro.faults.retry.RetryPolicy` for the sharded
        executor (per-shard timeout, bounded retries, backoff).
    breaker:
        :class:`~repro.faults.breaker.CircuitBreaker` guarding the
        sharded path.  Replaces the old one-way demotion to inline
        evaluation: after the recovery window a probe re-attempts the
        pool, so a transient host fault no longer costs the rest of the
        model's life.
    faults:
        Optional :class:`~repro.faults.injector.FaultInjector` for
        deterministic chaos testing of the sharded path.
    """

    def __init__(
        self,
        sample: np.ndarray,
        context: DeviceContext,
        bandwidth: Optional[np.ndarray] = None,
        precision: str = "float32",
        adaptive: bool = True,
        loss: str = "squared",
        adaptive_config: Optional[AdaptiveConfig] = None,
        karma_config: Optional[KarmaConfig] = None,
        backend: str = "numpy",
        shards: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        sample = np.asarray(sample, dtype=np.float64)
        if sample.ndim != 2 or sample.shape[0] < 2:
            raise ValueError("sample must be an (s >= 2, d) array")
        if precision not in ("float32", "float64"):
            raise ValueError("precision must be 'float32' or 'float64'")
        if backend not in ("numpy", "sharded"):
            raise ValueError(
                "DeviceKDE backend must be 'numpy' or 'sharded', "
                f"got {backend!r}"
            )
        self.context = context
        self.precision = precision
        self.adaptive = adaptive
        self.backend = backend
        self._metrics = metrics
        self._executor: Optional[ShardedSampleExecutor] = None
        if backend == "sharded":
            self._executor = ShardedSampleExecutor(
                shards=shards, retry=retry, faults=faults
            )
        self._breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker(failure_threshold=1, recovery_after=30.0)
        )
        self._breaker_exported = 0
        self._loss: Loss = get_loss(loss)
        self._dtype = np.dtype(precision)
        s, d = sample.shape

        # Model construction (Section 5.2): one bulk transfer of the
        # sample, plus the standard-deviation reductions for Scott's rule.
        self._sample_buffer = context.upload(
            "sample", sample.astype(self._dtype), label="sample"
        )
        context.reduce("column_sums", s * d)
        context.reduce("column_squares", s * d)
        if bandwidth is None:
            bandwidth = scott_bandwidth(sample)
        self._bandwidth = np.asarray(bandwidth, dtype=np.float64).copy()
        if self._bandwidth.shape != (d,) or np.any(self._bandwidth <= 0):
            raise ValueError("bandwidth must be a positive (d,) vector")
        context.upload("bandwidth", self._bandwidth.astype(self._dtype),
                       label="bandwidth")

        self._contribution_kernel = compile_contribution_kernel(d, precision)
        self._batch_contribution_kernel = compile_batch_contribution_kernel(
            d, precision
        )
        self._gradient_kernel = compile_gradient_kernel(d, precision)
        self._tuner = RMSpropTuner(d, adaptive_config or AdaptiveConfig())
        self._karma = KarmaTracker(
            s, self._loss, karma_config or KarmaConfig()
        )
        self._pending_query: Optional[Box] = None
        self._pending_contributions: Optional[np.ndarray] = None
        self._pending_estimate: float = 0.0
        self._pending_gradient: Optional[np.ndarray] = None
        self._pending_batch: Optional[QueryBatch] = None
        self._pending_batch_contributions: Optional[np.ndarray] = None
        self._pending_batch_estimates: Optional[np.ndarray] = None
        self._pending_batch_gradients: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @property
    def sample_size(self) -> int:
        return self._sample_buffer.shape[0]

    @property
    def dimensions(self) -> int:
        return self._sample_buffer.shape[1]

    @property
    def bandwidth(self) -> np.ndarray:
        return self._bandwidth.copy()

    @bandwidth.setter
    def bandwidth(self, bandwidth: np.ndarray) -> None:
        """Replace the bandwidth vector (one small metered upload)."""
        bandwidth = np.asarray(bandwidth, dtype=np.float64)
        if bandwidth.shape != (self.dimensions,) or np.any(bandwidth <= 0):
            raise ValueError("bandwidth must be a positive (d,) vector")
        self._bandwidth = bandwidth.copy()
        self.context.upload(
            "bandwidth", bandwidth.astype(self._dtype), label="bandwidth"
        )

    @property
    def karma_tracker(self) -> KarmaTracker:
        return self._karma

    @property
    def tuner(self) -> RMSpropTuner:
        return self._tuner

    @property
    def obs(self) -> MetricsRegistry:
        """The metrics registry this model reports into."""
        return self._metrics if self._metrics is not None else get_registry()

    @property
    def breaker(self) -> CircuitBreaker:
        """The circuit breaker guarding the sharded host path."""
        return self._breaker

    def _export_breaker(self) -> None:
        self._breaker_exported = export_breaker_metrics(
            self._breaker,
            self.obs,
            {"component": "device.sharded"},
            self._breaker_exported,
        )

    def set_bandwidth(self, bandwidth: np.ndarray) -> None:
        """Deprecated: assign to the :attr:`bandwidth` property instead."""
        warnings.warn(
            "DeviceKDE.set_bandwidth is deprecated; assign to the "
            "bandwidth property instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.bandwidth = bandwidth

    def _record_device_traces(
        self, registry: MetricsRegistry, estimates, launch_mark: int
    ) -> None:
        """One trace per estimate, with its share of modelled kernel time.

        ``launch_mark`` is ``len(context.launches)`` before the run; the
        modelled seconds of the launches appended since are split evenly
        across the batch (a batched run prices one launch for all
        queries, so per-query attribution is necessarily a share).
        """
        device = self.context.spec.name
        totals: dict = {}
        for record in self.context.launches[launch_mark:]:
            totals[record.kernel] = (
                totals.get(record.kernel, 0.0) + record.seconds
            )
        queries = max(1, len(estimates))
        share = {kernel: s / queries for kernel, s in totals.items()}
        registry.counter("device.queries", {"device": device}).inc(
            len(estimates)
        )
        for estimate in estimates:
            registry.record_trace(
                EstimationTrace(
                    query_id=registry.next_query_id(),
                    predicted=float(estimate),
                    backend=f"device-{self.backend}",
                    device_kernel_seconds=share,
                )
            )

    # ------------------------------------------------------------------
    # Estimation (Figure 3, steps 1-4)
    # ------------------------------------------------------------------
    def estimate(self, query: Box) -> float:
        registry = self.obs
        if not registry.enabled:
            return self._estimate_impl(query)
        launch_mark = len(self.context.launches)
        with span(
            "device_estimate",
            registry,
            device=self.context.spec.name,
            backend=self.backend,
        ):
            estimate = self._estimate_impl(query)
        self._record_device_traces(registry, [estimate], launch_mark)
        return estimate

    def _estimate_impl(self, query: Box) -> float:
        if query.dimensions != self.dimensions:
            raise ValueError("query dimensionality mismatch")
        s, d = self._sample_buffer.shape
        bounds = np.concatenate([query.low, query.high]).astype(self._dtype)
        self.context.upload("query_bounds", bounds, label="query_bounds")

        sample = self._sample_buffer.data
        contributions = self._contribution_kernel(
            sample, query.low, query.high, self._bandwidth
        ).astype(np.float64)
        self.context.launch("contribution", s * d)
        estimate = float(contributions.mean())
        self.context.reduce("estimate_reduction", s)
        self.context.download_value(
            estimate, self._dtype.itemsize, label="estimate"
        )

        self._pending_query = query
        self._pending_contributions = contributions
        self._pending_estimate = estimate
        self._pending_batch = None
        self._pending_batch_contributions = None
        self._pending_batch_estimates = None
        self._pending_batch_gradients = None

        if self.adaptive:
            # Gradient pre-computation (Figure 3, steps 5-6).  The compute
            # overlaps with query execution in the database, so only the
            # scheduling latency is visible to the caller (Section 5.5);
            # we therefore price the launches with zero work terms.
            partials = self._gradient_kernel(
                sample, query.low, query.high, self._bandwidth
            ).astype(np.float64)
            self._pending_gradient = partials.mean(axis=0)
            self.context.launch("gradient", 0)
            self.context.reduce("gradient_reduction", 0)
        return estimate

    # ------------------------------------------------------------------
    # Batched estimation (one launch for a whole query batch)
    # ------------------------------------------------------------------
    def _batch_contributions(self, batch: QueryBatch) -> np.ndarray:
        """``(q, s)`` contributions via the configured host backend.

        The sharded path concatenates per-shard slabs of the same
        compiled kernel along the sample axis — bitwise identical to
        the inline launch.  A failed execution (even after the
        executor's retry budget) opens the model's circuit breaker and
        evaluates inline; after the breaker's recovery window a probe
        re-attempts the pool, so a transient host fault degrades one
        window of launches, not the model's remaining lifetime.
        """
        sample = self._sample_buffer.data
        if self._executor is not None and self._breaker.allow():
            payload = (batch.low, batch.high, self._bandwidth, self.precision)
            try:
                slabs = self._executor.run(
                    _sharded_batch_contributions, sample, payload
                )
            except (OSError, ValueError, RuntimeError) as error:
                self._executor.close()
                self._breaker.record_failure()
                self._export_breaker()
                warnings.warn(
                    "DeviceKDE sharded backend falling back to inline "
                    f"evaluation: {error}",
                    RuntimeWarning,
                    stacklevel=3,
                )
            else:
                self._breaker.record_success()
                self._export_breaker()
                return np.concatenate(slabs, axis=1)
        elif self._executor is not None:
            self._export_breaker()
        return self._batch_contribution_kernel(
            sample, batch.low, batch.high, self._bandwidth
        )

    def estimate_batch(self, queries) -> np.ndarray:
        """``(q,)`` estimates for a whole batch with batched choreography.

        The batched path replaces the per-query transfer/launch sequence
        with one of each: a single upload of all ``2 q d`` query bounds,
        a single ``estimate`` kernel launch covering the batch's
        ``q * s * d`` kernel terms (the ``q * s`` per-point contribution
        terms of ``d`` factors each — one virtual thread per (query,
        point) pair), one per-query reduction, and a single download of
        all ``q`` estimates.  Per-query results are identical to
        :meth:`estimate`; only launch and transfer overhead is amortised.
        """
        registry = self.obs
        if not registry.enabled:
            return self._estimate_batch_impl(queries)
        launch_mark = len(self.context.launches)
        with span(
            "device_estimate_batch",
            registry,
            device=self.context.spec.name,
            backend=self.backend,
        ):
            estimates = self._estimate_batch_impl(queries)
        self._record_device_traces(registry, estimates, launch_mark)
        return estimates

    def _estimate_batch_impl(self, queries) -> np.ndarray:
        batch = QueryBatch.coerce(queries)
        if batch.dimensions != self.dimensions:
            raise ValueError("query batch dimensionality mismatch")
        s, d = self._sample_buffer.shape
        q = len(batch)
        bounds = np.concatenate(
            [batch.low.ravel(), batch.high.ravel()]
        ).astype(self._dtype)
        self.context.upload("query_bounds", bounds, label="query_bounds")

        sample = self._sample_buffer.data
        contributions = self._batch_contributions(batch).astype(np.float64)
        self.context.launch("estimate", q * s * d)
        estimates = contributions.mean(axis=1)
        for _ in range(q):
            self.context.reduce("estimate_reduction", s)
        self.context.download_value(
            estimates, q * self._dtype.itemsize, label="estimates"
        )

        self._pending_query = None
        self._pending_contributions = None
        self._pending_gradient = None
        self._pending_batch = batch
        self._pending_batch_contributions = contributions
        self._pending_batch_estimates = estimates
        self._pending_batch_gradients = None

        if self.adaptive:
            # Batched gradient pre-computation: compute still overlaps
            # with query execution (Section 5.5), so the batch costs one
            # zero-work launch + reduction instead of one per query.
            gradients = np.empty((q, d), dtype=np.float64)
            for index in range(q):
                partials = self._gradient_kernel(
                    sample, batch.low[index], batch.high[index], self._bandwidth
                ).astype(np.float64)
                gradients[index] = partials.mean(axis=0)
            self._pending_batch_gradients = gradients
            self.context.launch("gradient", 0)
            self.context.reduce("gradient_reduction", 0)
        return estimates

    def feedback_batch(self, queries, true_selectivities) -> List[np.ndarray]:
        """Batched feedback for a batch estimated via :meth:`estimate_batch`.

        Returns one array of flagged sample indices per query (the caller
        replaces rows via :meth:`replace_rows`, as with :meth:`feedback`).
        Numerically this matches calling :meth:`feedback` query-by-query
        after a batched estimate; on the modelled device it uploads all
        loss factors in one transfer, runs one Karma launch over the
        retained contribution buffer, and downloads a single combined
        replacement bitmap.
        """
        batch = QueryBatch.coerce(queries)
        truths = np.asarray(true_selectivities, dtype=np.float64).reshape(-1)
        if truths.shape[0] != len(batch):
            raise ValueError("need one true selectivity per query")
        if not self.adaptive:
            return [np.array([], dtype=np.intp) for _ in range(len(batch))]
        if np.any(truths < 0.0) or np.any(truths > 1.0):
            raise ValueError("true selectivities must lie in [0, 1]")
        if self._pending_batch is None or self._pending_batch != batch:
            self.estimate_batch(batch)
        assert self._pending_batch_contributions is not None
        assert self._pending_batch_estimates is not None
        assert self._pending_batch_gradients is not None

        loss_factors = np.asarray(
            self._loss.derivative(self._pending_batch_estimates, truths),
            dtype=np.float64,
        )
        self.context.upload(
            "loss_factor",
            loss_factors.astype(self._dtype),
            label="loss_factor",
        )
        self.context.launch("karma", 0)
        flagged: List[np.ndarray] = []
        any_flagged = False
        for index in range(len(batch)):
            gradient = loss_factors[index] * self._pending_batch_gradients[index]
            if self._tuner.config.log_updates:
                gradient = gradient * self._bandwidth
            updated = self._tuner.observe(gradient, self._bandwidth)
            if updated is not None:
                self.bandwidth = updated
            indices = self._karma.update(
                self._pending_batch_contributions[index],
                float(truths[index]),
                query=batch.box(index),
                bandwidth=self._bandwidth,
            )
            any_flagged = any_flagged or bool(indices.size)
            flagged.append(indices)
        if any_flagged:
            self.context.download_value(
                None, (self.sample_size + 7) // 8, label="replacement_bitmap"
            )
        self._pending_batch = None
        self._pending_batch_contributions = None
        self._pending_batch_estimates = None
        self._pending_batch_gradients = None
        return flagged

    # ------------------------------------------------------------------
    # Estimator-protocol spellings
    # ------------------------------------------------------------------
    def estimate_many(self, queries) -> np.ndarray:
        """Batched estimates — the estimator-protocol spelling.

        Same device choreography as :meth:`estimate_batch`, but tolerant
        of empty box sequences (``QueryBatch`` requires at least one
        query), so one harness surface drives every model.
        """
        if not isinstance(queries, QueryBatch):
            queries = list(queries)
            if not queries:
                return np.empty(0, dtype=np.float64)
        return self.estimate_batch(queries)

    def feedback_many(self, queries, true_selectivities) -> List[np.ndarray]:
        """Batched feedback — the estimator-protocol spelling.

        Forwards to :meth:`feedback_batch`, returning its per-query
        flagged-index arrays (like :meth:`feedback`, the caller performs
        the actual row replacement).  An empty batch is a no-op.
        """
        if not isinstance(queries, QueryBatch):
            queries = list(queries)
            truths = list(true_selectivities)
            if len(queries) != len(truths):
                raise ValueError(
                    "need exactly one true selectivity per query, got "
                    f"{len(queries)} queries and {len(truths)} values"
                )
            if not queries:
                return []
            true_selectivities = truths
        return self.feedback_batch(queries, true_selectivities)

    def memory_bytes(self) -> int:
        """Device-resident model footprint for §6.2 budget accounting.

        The device model is its sample buffer: ``s × d`` values at the
        configured device precision (``float32`` by default).
        """
        s, d = self._sample_buffer.shape
        return s * d * self._dtype.itemsize

    # ------------------------------------------------------------------
    # Feedback (Figure 3, steps 7-9)
    # ------------------------------------------------------------------
    def feedback(self, query: Box, true_selectivity: float) -> np.ndarray:
        """Process feedback; returns indices of sample points to replace.

        The caller (the database glue) is responsible for sampling fresh
        rows and pushing them through :meth:`replace_rows`.
        """
        if not self.adaptive:
            return np.array([], dtype=np.intp)
        if not 0.0 <= true_selectivity <= 1.0:
            raise ValueError("true selectivity must lie in [0, 1]")
        if self._pending_query is None or self._pending_query != query:
            self.estimate(query)
        assert self._pending_contributions is not None
        assert self._pending_gradient is not None

        # Host ships the scalar loss factor to the device (step 7).
        loss_factor = float(
            self._loss.derivative(self._pending_estimate, true_selectivity)
        )
        self.context.upload(
            "loss_factor",
            np.array([loss_factor], dtype=self._dtype),
            label="loss_factor",
        )
        gradient = loss_factor * self._pending_gradient
        if self._tuner.config.log_updates:
            gradient = gradient * self._bandwidth
        updated = self._tuner.observe(gradient, self._bandwidth)
        if updated is not None:
            self.bandwidth = updated

        # Karma kernel over the retained contribution buffer (step 9).
        self.context.launch("karma", 0)
        flagged = self._karma.update(
            self._pending_contributions,
            true_selectivity,
            query=query,
            bandwidth=self._bandwidth,
        )
        if flagged.size:
            # Replacement bitmap back to the host (two-step procedure of
            # Section 5.6).
            self.context.download_value(
                None, (self.sample_size + 7) // 8, label="replacement_bitmap"
            )
        self._pending_query = None
        self._pending_contributions = None
        self._pending_gradient = None
        return flagged

    def replace_rows(self, indices: np.ndarray, rows: np.ndarray) -> None:
        """Push replacement rows to the device sample buffer."""
        indices = np.asarray(indices, dtype=np.intp)
        rows = np.asarray(rows, dtype=self._dtype).reshape(
            indices.size, self.dimensions
        )
        self.context.upload_rows(
            "sample", indices, rows, label="sample_replacement"
        )
        if self._executor is not None:
            self._executor.mark_dirty()
        self._karma.reset(indices)

    def close(self) -> None:
        """Release host worker-pool resources (sharded backend only)."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    # ------------------------------------------------------------------
    # State snapshot / restore (the state/engine split)
    # ------------------------------------------------------------------
    def snapshot(self) -> ModelState:
        """Immutable :class:`~repro.core.state.ModelState` of this model.

        The sample is captured in the device precision (the buffer's
        native dtype), so a warm-started model's buffer is bitwise
        identical to the snapshotted one.  The device context itself
        (clock, transfer log) is runtime, not model state, and is not
        captured.
        """
        return ModelState(
            kind="device",
            sample=self._sample_buffer.data,
            bandwidth=self._bandwidth,
            kernels=("gaussian",) * self.dimensions,
            config={
                "precision": self.precision,
                "adaptive": self.adaptive,
                "loss": self._loss.name,
                "adaptive_config": asdict(self._tuner.config),
                "karma_config": asdict(self._karma.config),
            },
            tuner=self._tuner.get_state(),
            karma=self._karma.get_state(),
        )

    def restore(self, state: ModelState) -> None:
        """Adopt a snapshot in place (one metered bulk re-upload).

        Restoring is the warm-start analogue of construction: the
        snapshot's sample and bandwidth travel over the modelled bus as
        one bulk transfer each, then the host-side tuner and Karma state
        are reinstated.  Any retained estimate→feedback buffers are
        dropped (they described the superseded model).
        """
        if state.kind != "device":
            raise ValueError(
                f"cannot restore a {state.kind!r} state into DeviceKDE"
            )
        if state.dimensions != self.dimensions:
            raise ValueError(
                f"state has {state.dimensions} dimensions, "
                f"model has {self.dimensions}"
            )
        config = state.config or {}
        precision = config.get("precision", self.precision)
        if precision != self.precision:
            raise ValueError(
                f"state precision {precision!r} does not match the "
                f"model's {self.precision!r}"
            )
        self._sample_buffer = self.context.upload(
            "sample",
            np.asarray(state.sample, dtype=self._dtype),
            label="sample",
        )
        self._bandwidth = np.array(
            state.bandwidth, dtype=np.float64, copy=True
        )
        self.context.upload(
            "bandwidth",
            self._bandwidth.astype(self._dtype),
            label="bandwidth",
        )
        if state.tuner is not None:
            self._tuner.set_state(state.tuner)
        if state.karma is not None:
            self._karma.set_state(state.karma)
        if self._executor is not None:
            self._executor.mark_dirty()
        self._pending_query = None
        self._pending_contributions = None
        self._pending_gradient = None
        self._pending_batch = None
        self._pending_batch_contributions = None
        self._pending_batch_estimates = None
        self._pending_batch_gradients = None

    @classmethod
    def from_state(
        cls,
        state: ModelState,
        context: DeviceContext,
        backend: str = "numpy",
        shards: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> "DeviceKDE":
        """Construct a device model from a snapshot (warm start).

        ``context`` is runtime wiring (which simulated device to run
        on), so it is supplied by the caller rather than the state.
        """
        if state.kind != "device":
            raise ValueError(
                f"cannot build DeviceKDE from a {state.kind!r} state"
            )
        config = state.config or {}
        model = cls(
            np.asarray(state.sample, dtype=np.float64),
            context,
            bandwidth=state.bandwidth,
            precision=config.get("precision", "float32"),
            adaptive=bool(config.get("adaptive", True)),
            loss=config.get("loss", "squared"),
            adaptive_config=AdaptiveConfig(
                **config.get("adaptive_config", {})
            ),
            karma_config=KarmaConfig(**config.get("karma_config", {})),
            backend=backend,
            shards=shards,
            metrics=metrics,
        )
        if state.tuner is not None:
            model._tuner.set_state(state.tuner)
        if state.karma is not None:
            model._karma.set_state(state.karma)
        return model
