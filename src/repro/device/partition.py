"""Device fission and multi-device estimation (Section 8, future work).

The paper's final future-work direction: integrating the estimator with
a GPU-accelerated DBMS requires *resource sharing* — e.g. using device
fission to give selectivity estimation a fixed fraction (say 10%) of the
graphics card — and possibly *scaling across multiple graphics cards*.

Both are natural in the analytic device model:

* :func:`fission` derives a sub-device whose compute throughput is the
  requested fraction of the parent's (latencies are per-call properties
  of the driver stack and stay unchanged), answering the what-if
  question "how much estimation quality can we afford at X% of the GPU?"
  when combined with the Figure 6 quality-vs-model-size curves.

* :class:`MultiDeviceKDE` shards the sample across several device
  contexts.  Each device computes the contribution sum of its shard; the
  combined estimate is the shard-size-weighted average.  Devices run
  concurrently, so the modelled wall-clock of an estimate is the *slowest
  shard* plus a constant host-side combine step.
"""

from __future__ import annotations

import warnings
from dataclasses import replace
from typing import List, Optional, Sequence

import numpy as np

from ..geometry import Box
from ..core.bandwidth import scott_bandwidth
from .kde_device import DeviceKDE
from .runtime import DeviceContext
from .specs import DeviceSpec

__all__ = ["fission", "MultiDeviceKDE"]


def fission(spec: DeviceSpec, fraction: float) -> DeviceSpec:
    """A sub-device owning ``fraction`` of the parent's compute units.

    Kernel launch and transfer latencies are unchanged — they are
    driver-stack costs, not compute-unit costs — so small models get
    *no* cheaper, while large-model estimation slows down by
    ``1 / fraction``.  That asymmetry is exactly the resource-sharing
    trade-off the paper wants to explore.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must lie in (0, 1]")
    return replace(
        spec,
        name=f"{spec.name} ({fraction:.0%} fission)",
        compute_throughput=spec.compute_throughput * fraction,
    )


class MultiDeviceKDE:
    """A KDE model sharded across several (simulated) devices.

    Parameters
    ----------
    sample:
        Full ``(s, d)`` sample; split into contiguous shards, one per
        context.
    contexts:
        One :class:`DeviceContext` per device.
    bandwidth:
        Shared global bandwidth; Scott's rule on the *full* sample when
        omitted (every shard must smooth identically for the weighted
        average to equal the single-device estimate).
    precision:
        Device float precision, as for :class:`DeviceKDE`.
    """

    #: Host-side cost of combining the per-device partial estimates.
    COMBINE_SECONDS = 2e-6

    def __init__(
        self,
        sample: np.ndarray,
        contexts: Sequence[DeviceContext],
        bandwidth: Optional[np.ndarray] = None,
        precision: str = "float32",
    ) -> None:
        sample = np.asarray(sample, dtype=np.float64)
        if sample.ndim != 2 or sample.shape[0] < 2 * max(1, len(contexts)):
            raise ValueError(
                "sample must provide at least two points per device"
            )
        if not contexts:
            raise ValueError("at least one device context is required")
        if bandwidth is None:
            bandwidth = scott_bandwidth(sample)
        shards = np.array_split(sample, len(contexts))
        self._weights = np.array(
            [shard.shape[0] for shard in shards], dtype=np.float64
        )
        self._weights /= self._weights.sum()
        self._models: List[DeviceKDE] = [
            DeviceKDE(
                shard,
                context,
                bandwidth=bandwidth,
                precision=precision,
                adaptive=False,
            )
            for shard, context in zip(shards, contexts)
        ]
        self._contexts = list(contexts)
        self._parallel_elapsed = 0.0

    # ------------------------------------------------------------------
    @property
    def device_count(self) -> int:
        return len(self._models)

    @property
    def sample_size(self) -> int:
        return sum(model.sample_size for model in self._models)

    @property
    def bandwidth(self) -> np.ndarray:
        return self._models[0].bandwidth

    @bandwidth.setter
    def bandwidth(self, bandwidth: np.ndarray) -> None:
        """Broadcast a new global bandwidth to every shard."""
        for model in self._models:
            model.bandwidth = bandwidth

    @property
    def parallel_elapsed_seconds(self) -> float:
        """Modelled wall-clock with all devices running concurrently."""
        return self._parallel_elapsed

    def reset_clock(self) -> None:
        self._parallel_elapsed = 0.0
        for context in self._contexts:
            context.reset_clock()

    # ------------------------------------------------------------------
    def set_bandwidth(self, bandwidth: np.ndarray) -> None:
        """Deprecated: assign to the :attr:`bandwidth` property instead."""
        warnings.warn(
            "MultiDeviceKDE.set_bandwidth is deprecated; assign to the "
            "bandwidth property instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.bandwidth = bandwidth

    def estimate(self, query: Box) -> float:
        """Shard-parallel estimate; wall-clock is the slowest shard."""
        before = [context.elapsed_seconds for context in self._contexts]
        partials = np.array(
            [model.estimate(query) for model in self._models]
        )
        deltas = [
            context.elapsed_seconds - start
            for context, start in zip(self._contexts, before)
        ]
        self._parallel_elapsed += max(deltas) + self.COMBINE_SECONDS
        return float((partials * self._weights).sum())
