"""The simulated OpenCL-like device runtime.

A :class:`DeviceContext` owns named device buffers, meters every
host<->device transfer and kernel launch, and keeps a *modelled clock*:
numpy performs each operation's math exactly, while the analytic cost
model of :mod:`repro.device.costmodel` advances the clock by what the
operation would have cost on the configured device.

This is the substitution for the paper's GPU (see DESIGN.md): numerical
behaviour is bit-faithful to a direct implementation, and the timing
experiments of Section 6.4 run against the modelled clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

import numpy as np

from ..faults.injector import FaultInjector, InjectedFault
from ..obs.metrics import MetricsRegistry, get_registry
from .buffers import DeviceBuffer, TransferLog
from .costmodel import DeviceCostModel
from .specs import DeviceSpec, named_device

__all__ = ["DeviceContext", "LaunchRecord"]


@dataclass(frozen=True)
class LaunchRecord:
    """One kernel launch: name, work size and modelled time."""

    kernel: str
    term_count: int
    #: Modelled execution time of this launch (seconds).
    seconds: float = 0.0


@dataclass
class DeviceContext:
    """Buffers + transfer metering + a modelled clock for one device.

    Accounting is metrics-first: every launch and transfer is emitted
    into the context's own :class:`~repro.obs.metrics.MetricsRegistry`
    (``metrics``, injectable — each context defaults to a private one so
    :meth:`profile` never mixes devices) and mirrored into the process-
    wide registry when that is enabled.  The ``launches`` list and the
    :class:`~repro.device.buffers.TransferLog` remain as the per-event
    trace; :meth:`profile` itself is a thin view over the registry.
    """

    spec: DeviceSpec
    cost: DeviceCostModel = field(init=False)
    transfers: TransferLog = field(default_factory=TransferLog)
    launches: List[LaunchRecord] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: Optional fault injector; ``"device"``-site specs make metered
    #: operations raise :class:`~repro.faults.injector.InjectedFault`
    #: (the simulator's stand-in for a lost context / failed launch).
    faults: Optional[FaultInjector] = None
    _buffers: Dict[str, DeviceBuffer] = field(default_factory=dict)
    _clock: float = 0.0

    def __post_init__(self) -> None:
        self.cost = DeviceCostModel(self.spec)

    @classmethod
    def for_device(
        cls,
        name: str,
        metrics: Optional[MetricsRegistry] = None,
        faults: Optional[FaultInjector] = None,
    ) -> "DeviceContext":
        """Create a context for a preset device (``"gpu"`` / ``"cpu"``)."""
        if metrics is None:
            return cls(spec=named_device(name), faults=faults)
        return cls(spec=named_device(name), metrics=metrics, faults=faults)

    def _check_fault(self, op: str, name: str) -> None:
        """Raise if the injector schedules a device error for this op."""
        if self.faults is None:
            return
        spec = self.faults.draw("device", op=op, name=name)
        if spec is not None:
            raise InjectedFault(
                f"device {self.spec.name!r} failed during {op} "
                f"of {name!r} (injected fault)"
            )

    # ------------------------------------------------------------------
    # Metrics emission
    # ------------------------------------------------------------------
    def _emit_targets(self) -> Iterator[MetricsRegistry]:
        """The context's own registry, plus the ambient one when live."""
        yield self.metrics
        ambient = get_registry()
        if ambient.enabled and ambient is not self.metrics:
            yield ambient

    def _emit_launch(self, kernel: str, seconds: float) -> None:
        labels = {"device": self.spec.name, "kernel": kernel}
        for registry in self._emit_targets():
            registry.histogram("device.kernel.seconds", labels).observe(
                seconds
            )

    def _emit_transfer(
        self, direction: str, nbytes: int, seconds: float
    ) -> None:
        labels = {"device": self.spec.name, "direction": direction}
        for registry in self._emit_targets():
            registry.histogram("device.transfer.seconds", labels).observe(
                seconds
            )
            registry.counter("device.transfer.bytes", labels).inc(nbytes)

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def elapsed_seconds(self) -> float:
        """Modelled time spent on device operations so far."""
        return self._clock

    def reset_clock(self) -> None:
        self._clock = 0.0

    # ------------------------------------------------------------------
    # Buffers & transfers
    # ------------------------------------------------------------------
    def allocate(self, name: str, data: np.ndarray) -> DeviceBuffer:
        """Allocate a device buffer *without* pricing a transfer.

        Use :meth:`upload` for metered host-to-device copies; allocation
        alone models ``clCreateBuffer`` without ``COPY_HOST_PTR``.
        """
        if name in self._buffers:
            raise ValueError(f"buffer {name!r} already allocated")
        buffer = DeviceBuffer(name, data)
        self._buffers[name] = buffer
        return buffer

    def buffer(self, name: str) -> DeviceBuffer:
        try:
            return self._buffers[name]
        except KeyError:
            raise KeyError(f"no buffer named {name!r}")

    def free(self, name: str) -> None:
        self.buffer(name)  # same descriptive KeyError as lookups
        del self._buffers[name]

    def upload(
        self, name: str, data: np.ndarray, label: Optional[str] = None
    ) -> DeviceBuffer:
        """Host-to-device copy; allocates the buffer on first use.

        A copy whose shape or dtype differs from the existing buffer
        reallocates it (release + create-with-copy), as when a batch of a
        different size reuses a bound buffer's name.
        """
        self._check_fault("upload", name)
        data = np.asarray(data)
        existing = self._buffers.get(name)
        if existing is not None and (
            existing.shape == data.shape and existing.data.dtype == data.dtype
        ):
            nbytes = existing.write(data)
        else:
            self._buffers[name] = DeviceBuffer(name, data)
            nbytes = self._buffers[name].nbytes
        seconds = self.cost.transfer_seconds(nbytes)
        self.transfers.record("to_device", nbytes, label or name, seconds)
        self._emit_transfer("to_device", nbytes, seconds)
        self._clock += seconds
        return self._buffers[name]

    def upload_rows(
        self,
        name: str,
        indices: np.ndarray,
        rows: np.ndarray,
        label: Optional[str] = None,
    ) -> None:
        """Partial row update of an existing buffer (one transfer)."""
        self._check_fault("upload", name)
        nbytes = self.buffer(name).write_rows(indices, rows)
        seconds = self.cost.transfer_seconds(nbytes)
        self.transfers.record(
            "to_device", nbytes, label or f"{name}:rows", seconds
        )
        self._emit_transfer("to_device", nbytes, seconds)
        self._clock += seconds

    def download(self, name: str, label: Optional[str] = None) -> np.ndarray:
        """Device-to-host copy of a whole buffer."""
        self._check_fault("download", name)
        buffer = self.buffer(name)
        seconds = self.cost.transfer_seconds(buffer.nbytes)
        self.transfers.record("to_host", buffer.nbytes, label or name, seconds)
        self._emit_transfer("to_host", buffer.nbytes, seconds)
        self._clock += seconds
        return buffer.read()

    def download_value(self, value, nbytes: int, label: str):
        """Device-to-host copy of a scalar/small result (metered)."""
        self._check_fault("download", label)
        seconds = self.cost.transfer_seconds(nbytes)
        self.transfers.record("to_host", nbytes, label, seconds)
        self._emit_transfer("to_host", nbytes, seconds)
        self._clock += seconds
        return value

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def launch(self, kernel: str, term_count: int) -> None:
        """Meter one kernel launch of ``term_count`` kernel terms."""
        self._check_fault("launch", kernel)
        seconds = self.cost.kernel_seconds(term_count)
        self.launches.append(LaunchRecord(kernel, int(term_count), seconds))
        self._emit_launch(kernel, seconds)
        self._clock += seconds

    def reduce(self, kernel: str, element_count: int) -> None:
        """Meter one parallel binary reduction."""
        self._check_fault("reduce", kernel)
        seconds = self.cost.reduction_seconds(element_count)
        self.launches.append(LaunchRecord(kernel, int(element_count), seconds))
        self._emit_launch(kernel, seconds)
        self._clock += seconds

    def launch_count(self, kernel: Optional[str] = None) -> int:
        if kernel is None:
            return len(self.launches)
        return sum(1 for record in self.launches if record.kernel == kernel)

    def kernel_seconds(self, kernel: Optional[str] = None) -> float:
        """Modelled seconds spent in kernel launches/reductions so far."""
        if kernel is None:
            return sum(record.seconds for record in self.launches)
        return sum(
            record.seconds
            for record in self.launches
            if record.kernel == kernel
        )

    def profile(self) -> Dict[str, object]:
        """Where the modelled time went — a thin view over ``metrics``.

        Delegates to :func:`repro.obs.device_profile` for this context's
        registry and device name; every number is read back from the
        registry (``device.kernel.seconds`` / ``device.transfer.*``
        aggregates), so it reflects everything metered since
        construction (``reset_clock`` only rewinds the clock, not the
        registry).  The unified exporter,
        :func:`repro.obs.export_metrics`, embeds the same profile in its
        JSON ``"devices"`` section — prefer it when exporting more than
        one surface.
        """
        from ..obs.export import device_profile

        return device_profile(self.metrics, self.spec.name)
