"""Device descriptors for the simulated OpenCL-like runtime.

The paper runs its estimator through OpenCL on two devices (Section 6.4):
an NVIDIA GTX-460 consumer GPU and a quad-core Intel Xeon E5620 CPU.
Neither is available here, so the performance experiments run against an
*analytic device model*: each device is described by a handful of
latency/throughput constants, and the runtime converts operation counts
into modelled wall-clock time.

The constants below are calibrated against the envelope the paper
reports for Figure 7:

* GPU ≈ 4× faster than the CPU on large models,
* GPU evaluates a 128K-point 8-D model in just under 1 ms,
* runtime is flat (dominated by per-call launch/transfer latency) until
  roughly 16-32K sample points, linear afterwards,
* *Adaptive* costs a constant extra latency over *Heuristic* (its extra
  kernels run concurrently with the query; only launch overhead remains).

The numeric *results* of every kernel are computed exactly (numpy);
only the clock is modelled.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "GTX460", "XEON_E5620", "named_device"]


@dataclass(frozen=True)
class DeviceSpec:
    """Analytic performance model of one OpenCL device."""

    #: Human-readable device name.
    name: str
    #: ``"gpu"`` or ``"cpu"``.
    kind: str
    #: Kernel-term evaluations per second (one erf-difference term per
    #: sample point and dimension).  The dominant cost of estimation.
    compute_throughput: float
    #: Fixed cost of scheduling one kernel, seconds.
    kernel_launch_latency: float
    #: Fixed cost of scheduling one host<->device transfer, seconds.
    transfer_latency: float
    #: Host<->device bandwidth, bytes per second (PCIe for the GPU; for
    #: the CPU "transfers" are host-memory copies).
    transfer_bandwidth: float

    def __post_init__(self) -> None:
        if self.kind not in ("gpu", "cpu"):
            raise ValueError("kind must be 'gpu' or 'cpu'")
        for attribute in (
            "compute_throughput",
            "kernel_launch_latency",
            "transfer_latency",
            "transfer_bandwidth",
        ):
            if getattr(self, attribute) <= 0:
                raise ValueError(f"{attribute} must be positive")


#: The paper's GPU: NVIDIA GTX-460 (2 GB), driven over PCI Express.
GTX460 = DeviceSpec(
    name="NVIDIA GTX-460 (simulated)",
    kind="gpu",
    compute_throughput=1.4e9,
    kernel_launch_latency=50e-6,
    transfer_latency=20e-6,
    transfer_bandwidth=6e9,
)

#: The paper's CPU: quad-core Intel Xeon E5620 @ 2.4 GHz via Intel's
#: OpenCL SDK.  Roughly 4x less kernel throughput, far cheaper calls.
XEON_E5620 = DeviceSpec(
    name="Intel Xeon E5620 (simulated)",
    kind="cpu",
    compute_throughput=3.5e8,
    kernel_launch_latency=15e-6,
    transfer_latency=2e-6,
    transfer_bandwidth=20e9,
)

_NAMED = {"gpu": GTX460, "cpu": XEON_E5620}


def named_device(name: str) -> DeviceSpec:
    """Look up a preset device by short name (``"gpu"`` or ``"cpu"``)."""
    try:
        return _NAMED[name]
    except KeyError:
        known = ", ".join(sorted(_NAMED))
        raise ValueError(f"unknown device {name!r}; known devices: {known}")
