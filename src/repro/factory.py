"""One-call construction of the estimator family.

:func:`create_estimator` is the library's front door: pick a model kind,
an execution backend and (optionally) a metrics registry without
importing from three subpackages.  Examples and benchmarks use it so the
"build an estimator" incantation is written down exactly once.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional, Union

import numpy as np

from .core.bandwidth import scott_bandwidth
from .core.estimator import KernelDensityEstimator
from .core.model import SelfTuningKDE
from .core.state import ModelState
from .obs.metrics import MetricsRegistry

__all__ = ["create_estimator", "ESTIMATOR_KINDS"]

#: Model kinds :func:`create_estimator` understands.  ``"naru"`` and
#: ``"mscn"`` are the learned baselines of :mod:`repro.learned`.
ESTIMATOR_KINDS = ("kde", "self_tuning", "device", "naru", "mscn")


def create_estimator(
    sample: np.ndarray,
    kind: str = "kde",
    *,
    bandwidth: Optional[np.ndarray] = None,
    backend: Union[str, object, None] = None,
    metrics: Optional[MetricsRegistry] = None,
    device: str = "gpu",
    checkpoint: Optional[str] = None,
    **kwargs,
):
    """Build an estimator of the requested ``kind`` from a sample.

    Parameters
    ----------
    sample:
        ``(s, d)`` random sample of the relation (what ANALYZE collects).
    kind:
        ``"kde"`` — the static :class:`~repro.core.estimator.
        KernelDensityEstimator`; ``"self_tuning"`` — the full
        :class:`~repro.core.model.SelfTuningKDE` (feedback-driven
        bandwidth tuning + Karma sample maintenance); ``"device"`` — a
        :class:`~repro.device.kde_device.DeviceKDE` running on the
        simulated device; ``"naru"`` — the sample-trained autoregressive
        :class:`~repro.learned.NaruEstimator`; ``"mscn"`` — the
        feedback-trained :class:`~repro.learned.MSCNRegressor` (the
        sample only supplies its feature-normalization bounds).
    bandwidth:
        Initial bandwidth vector; Scott's rule when omitted.
    backend:
        Execution backend knob (``"numpy"`` / ``"sharded"`` /
        ``"cached"`` / ``"grid"`` / ``"hashing"`` or an
        :class:`~repro.core.backends.ExecutionBackend` instance) for
        the host kinds; for ``kind="device"`` it selects the host
        strategy of the batched contribution kernel (``"numpy"`` /
        ``"sharded"``).
    metrics:
        Metrics registry to report into; ``None`` defers to the
        process-wide registry (see :func:`repro.obs.enable_metrics`).
    device:
        Preset device name for ``kind="device"`` (``"gpu"`` / ``"cpu"``);
        ignored otherwise.  Pass ``context=`` to supply a configured
        :class:`~repro.device.runtime.DeviceContext` instead.
    checkpoint:
        Path to a :class:`~repro.core.state.ModelState` checkpoint.  When
        the file exists and its state kind matches ``kind``, the built
        estimator is warm-started from it (tuned bandwidths, maintained
        sample, tuner/RNG state) instead of starting cold; a missing file
        builds fresh, so the same invocation works on first run and on
        restart.  A file whose kind mismatches, or that fails checksum /
        version validation, raises
        :class:`~repro.core.state.CheckpointError` — silently ignoring a
        requested-but-unusable checkpoint would hide state loss.
    kwargs:
        Forwarded to the model constructor (``kernel=``, ``config=``,
        ``row_source=``, ``precision=``, ...).
    """
    sample = np.asarray(sample, dtype=np.float64)
    state = _load_checkpoint(checkpoint, kind)
    if kind == "kde":
        if bandwidth is None:
            bandwidth = scott_bandwidth(sample)
        estimator = KernelDensityEstimator(
            sample, bandwidth, backend=backend, metrics=metrics, **kwargs
        )
        if state is not None:
            estimator.restore(state)
        return estimator
    if kind == "self_tuning":
        model = SelfTuningKDE(
            sample,
            bandwidth=bandwidth,
            backend=backend,
            metrics=metrics,
            **kwargs,
        )
        if state is not None:
            model.restore(state)
        return model
    if kind == "device":
        # Imported lazily: the device layer is optional at import time
        # for host-only workflows.
        from .device.kde_device import DeviceKDE
        from .device.runtime import DeviceContext

        context = kwargs.pop("context", None)
        if context is None:
            context = DeviceContext.for_device(device)
        if backend is None:
            backend = "numpy"
        model = DeviceKDE(
            sample,
            context,
            bandwidth=bandwidth,
            backend=backend,
            metrics=metrics,
            **kwargs,
        )
        if state is not None:
            model.restore(state)
        return model
    if kind in ("naru", "mscn"):
        # Imported lazily, mirroring the device layer: the learned
        # baselines are an evaluation extra, not a core dependency.
        from .learned import MSCNRegressor, NaruEstimator

        if checkpoint is not None:
            raise ValueError(
                f"kind={kind!r} does not support checkpoint warm starts; "
                "the learned baselines train from their constructor inputs"
            )
        if metrics is not None or backend is not None:
            raise ValueError(
                f"kind={kind!r} takes neither backend= nor metrics=; "
                "the learned baselines run a plain numpy forward pass"
            )
        if kind == "naru":
            return NaruEstimator(sample, **kwargs)
        return MSCNRegressor(sample=sample, **kwargs)
    known = ", ".join(ESTIMATOR_KINDS)
    raise ValueError(
        f"unknown estimator kind {kind!r}; known kinds: {known}"
    )


def _load_checkpoint(
    checkpoint: Optional[str], kind: str
) -> Optional[ModelState]:
    """Load + kind-check a warm-start checkpoint; ``None`` when absent."""
    if checkpoint is None or not os.path.exists(checkpoint):
        return None
    from .core.state import CheckpointError

    state = ModelState.load(checkpoint)
    # The static KDE view can be restored from any family's state (it
    # only needs sample/bandwidth/kernels); the stateful kinds require a
    # matching state kind.
    if kind != "kde" and state.kind != kind:
        raise CheckpointError(
            f"checkpoint {checkpoint!r} holds {state.kind!r} state, "
            f"cannot warm-start a {kind!r} estimator"
        )
    if kind == "kde" and state.kind != "kde":
        # Restoring a stateful family's checkpoint into the static view
        # keeps the tuned sample/bandwidth but discards the rest of the
        # tuning state (RMSprop accumulators, Karma scores, RNG).  That
        # is a legitimate read-only use, but it must not pass silently:
        # a caller who meant to *resume* the stateful model would lose
        # its learning progress without a trace.
        warnings.warn(
            f"checkpoint {checkpoint!r} holds {state.kind!r} state; "
            "building a static 'kde' view keeps its sample and bandwidth "
            f"but drops the {state.kind!r} tuning state (tuner "
            "accumulators, Karma scores, RNG state). Pass "
            f"kind={state.kind!r} to resume the full model.",
            UserWarning,
            stacklevel=3,
        )
    return state
