"""One-call construction of the estimator family.

:func:`create_estimator` is the library's front door: pick a model kind,
an execution backend and (optionally) a metrics registry without
importing from three subpackages.  Examples and benchmarks use it so the
"build an estimator" incantation is written down exactly once.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .core.bandwidth import scott_bandwidth
from .core.estimator import KernelDensityEstimator
from .core.model import SelfTuningKDE
from .obs.metrics import MetricsRegistry

__all__ = ["create_estimator", "ESTIMATOR_KINDS"]

#: Model kinds :func:`create_estimator` understands.
ESTIMATOR_KINDS = ("kde", "self_tuning", "device")


def create_estimator(
    sample: np.ndarray,
    kind: str = "kde",
    *,
    bandwidth: Optional[np.ndarray] = None,
    backend: Union[str, object, None] = None,
    metrics: Optional[MetricsRegistry] = None,
    device: str = "gpu",
    **kwargs,
):
    """Build an estimator of the requested ``kind`` from a sample.

    Parameters
    ----------
    sample:
        ``(s, d)`` random sample of the relation (what ANALYZE collects).
    kind:
        ``"kde"`` — the static :class:`~repro.core.estimator.
        KernelDensityEstimator`; ``"self_tuning"`` — the full
        :class:`~repro.core.model.SelfTuningKDE` (feedback-driven
        bandwidth tuning + Karma sample maintenance); ``"device"`` — a
        :class:`~repro.device.kde_device.DeviceKDE` running on the
        simulated device.
    bandwidth:
        Initial bandwidth vector; Scott's rule when omitted.
    backend:
        Execution backend knob (``"numpy"`` / ``"sharded"`` /
        ``"cached"`` or an :class:`~repro.core.backends.
        ExecutionBackend` instance) for the host kinds; for
        ``kind="device"`` it selects the host strategy of the batched
        contribution kernel (``"numpy"`` / ``"sharded"``).
    metrics:
        Metrics registry to report into; ``None`` defers to the
        process-wide registry (see :func:`repro.obs.enable_metrics`).
    device:
        Preset device name for ``kind="device"`` (``"gpu"`` / ``"cpu"``);
        ignored otherwise.  Pass ``context=`` to supply a configured
        :class:`~repro.device.runtime.DeviceContext` instead.
    kwargs:
        Forwarded to the model constructor (``kernel=``, ``config=``,
        ``row_source=``, ``precision=``, ...).
    """
    sample = np.asarray(sample, dtype=np.float64)
    if kind == "kde":
        if bandwidth is None:
            bandwidth = scott_bandwidth(sample)
        return KernelDensityEstimator(
            sample, bandwidth, backend=backend, metrics=metrics, **kwargs
        )
    if kind == "self_tuning":
        return SelfTuningKDE(
            sample,
            bandwidth=bandwidth,
            backend=backend,
            metrics=metrics,
            **kwargs,
        )
    if kind == "device":
        # Imported lazily: the device layer is optional at import time
        # for host-only workflows.
        from .device.kde_device import DeviceKDE
        from .device.runtime import DeviceContext

        context = kwargs.pop("context", None)
        if context is None:
            context = DeviceContext.for_device(device)
        if backend is None:
            backend = "numpy"
        return DeviceKDE(
            sample,
            context,
            bandwidth=bandwidth,
            backend=backend,
            metrics=metrics,
            **kwargs,
        )
    known = ", ".join(ESTIMATOR_KINDS)
    raise ValueError(
        f"unknown estimator kind {kind!r}; known kinds: {known}"
    )
