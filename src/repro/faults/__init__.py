"""``repro.faults`` — fault injection and fault-tolerance primitives.

The serving stack's reliability layer, in two halves:

**Injection** (deterministic chaos):

* :class:`FaultPlan` / :class:`FaultSpec` — seedable, immutable plans of
  worker crashes (SIGKILL), shard hangs, stragglers, shared-memory
  corruption/detach, and torn checkpoint writes.
* :class:`FaultInjector` — the runtime driver; hand it to the ``faults=``
  knob of :class:`~repro.core.backends.ShardedBackend`,
  :class:`~repro.device.kde_device.DeviceKDE`,
  :class:`~repro.device.runtime.DeviceContext` or
  :class:`~repro.serve.checkpoint.CheckpointManager`.

**Tolerance** (what the injected faults exercise):

* :class:`RetryPolicy` — per-shard timeouts, bounded retries,
  exponential backoff with seeded jitter.
* :class:`CircuitBreaker` — closed → open → half-open probe state
  machine replacing the old one-way inline-fallback latch.

Example: crash worker shard 1 on its first dispatch and watch the
executor resurrect the pool::

    from repro.faults import FaultInjector, FaultPlan
    from repro.core.backends import ShardedBackend

    injector = FaultInjector(FaultPlan.single("shard", "crash", shard=1))
    backend = ShardedBackend(shards=4, faults=injector)
"""

from .breaker import (
    BREAKER_STATE_VALUES,
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    export_breaker_metrics,
)
from .injector import FaultInjector, InjectedFault
from .plan import (
    FAULT_KINDS,
    FAULT_SITES,
    FaultPlan,
    FaultSpec,
    WorkerFault,
    apply_worker_fault,
)
from .retry import RetryPolicy

__all__ = [
    "BREAKER_STATE_VALUES",
    "CLOSED",
    "FAULT_KINDS",
    "FAULT_SITES",
    "HALF_OPEN",
    "OPEN",
    "CircuitBreaker",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "RetryPolicy",
    "WorkerFault",
    "apply_worker_fault",
    "export_breaker_metrics",
]
