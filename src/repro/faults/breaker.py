"""A circuit breaker for degraded execution paths.

Replaces the one-way inline-fallback latch the sharded backends used to
carry: instead of permanently demoting a multi-core server to one core
after a single pool failure, the breaker *opens* on failure (callers use
their fallback path), then after a recovery window lets exactly one
probe through (*half-open*); a successful probe re-arms the protected
path (*closed*), a failed one re-opens it for another window.

The breaker is policy only — it never runs the protected call itself.
Callers ask :meth:`CircuitBreaker.allow`, run the call, and report the
outcome with :meth:`record_success` / :meth:`record_failure`.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..obs.metrics import MetricsRegistry

__all__ = [
    "BREAKER_STATE_VALUES",
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "CircuitBreaker",
    "export_breaker_metrics",
]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Gauge encoding of breaker states (exported as ``breaker.state``).
BREAKER_STATE_VALUES: Dict[str, float] = {CLOSED: 0.0, OPEN: 1.0, HALF_OPEN: 2.0}


class CircuitBreaker:
    """Closed → open → half-open probe → closed.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures (while closed) that open the breaker.  The
        sharded executor already retries internally, so the default of
        ``1`` opens as soon as a whole retry budget is exhausted.
    recovery_after:
        Seconds the breaker stays open before admitting a half-open
        probe.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        failure_threshold: int = 1,
        recovery_after: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if recovery_after < 0:
            raise ValueError("recovery_after must be non-negative")
        self.failure_threshold = failure_threshold
        self.recovery_after = recovery_after
        self._clock = clock
        self._lock = threading.RLock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False
        #: Every state change, in order: ``(from_state, to_state)``.
        self.transitions: List[Tuple[str, str]] = []

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state (reading never advances open → half-open)."""
        with self._lock:
            return self._state

    @property
    def failure_count(self) -> int:
        with self._lock:
            return self._failures

    def allow(self) -> bool:
        """Whether a protected call may proceed right now.

        Closed: always.  Open: only once the recovery window elapsed,
        which transitions to half-open and admits a single probe.
        Half-open: one probe at a time.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                assert self._opened_at is not None
                if self._clock() - self._opened_at < self.recovery_after:
                    return False
                self._transition(HALF_OPEN)
                self._probing = True
                return True
            # HALF_OPEN: one in-flight probe only.
            if self._probing:
                return False
            self._probing = True
            return True

    def record_success(self) -> None:
        """The protected call succeeded; re-arm if probing."""
        with self._lock:
            self._failures = 0
            self._probing = False
            if self._state != CLOSED:
                self._transition(CLOSED)

    def record_failure(self) -> None:
        """The protected call failed; open (or re-open) when warranted."""
        with self._lock:
            self._probing = False
            if self._state == HALF_OPEN:
                self._transition(OPEN)
                return
            self._failures += 1
            if self._state == CLOSED and self._failures >= self.failure_threshold:
                self._transition(OPEN)

    def _transition(self, to_state: str) -> None:
        self.transitions.append((self._state, to_state))
        self._state = to_state
        if to_state == OPEN:
            self._opened_at = self._clock()
        elif to_state == CLOSED:
            self._failures = 0
            self._opened_at = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"failures={self.failure_count}, "
            f"transitions={len(self.transitions)})"
        )


def export_breaker_metrics(
    breaker: CircuitBreaker,
    registry: Optional[MetricsRegistry],
    labels: Dict[str, str],
    exported: int = 0,
) -> int:
    """Export the breaker's gauge and any new transitions to ``registry``.

    ``exported`` is the caller-held count of transitions already
    exported; the updated count is returned, so repeated calls emit each
    transition exactly once (``breaker.transitions`` counters) while the
    ``breaker.state`` gauge always reflects the current state.
    """
    if registry is None or not registry.enabled:
        return exported
    registry.gauge("breaker.state", labels).set(
        BREAKER_STATE_VALUES[breaker.state]
    )
    transitions = breaker.transitions
    while exported < len(transitions):
        from_state, to_state = transitions[exported]
        registry.counter(
            "breaker.transitions",
            {**labels, "from_state": from_state, "to_state": to_state},
        ).inc()
        exported += 1
    return exported
