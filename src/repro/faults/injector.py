"""The host-side fault injector consulted at injection sites.

A :class:`FaultInjector` wraps a :class:`~repro.faults.plan.FaultPlan`
with the mutable bookkeeping the plan itself deliberately lacks: per-spec
draw counters, a log of fired events, and metrics emission.  Components
that support injection take a ``faults=`` knob and call :meth:`draw`
at each site; ``None`` (the default everywhere) keeps the hot path at a
single attribute check.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..obs.metrics import MetricsRegistry, get_registry
from .plan import FaultPlan, FaultSpec, WorkerFault

__all__ = ["FaultInjector", "InjectedFault"]


class InjectedFault(RuntimeError):
    """Raised at host-side injection points (device ops, detached shm)."""


class FaultInjector:
    """Deterministic runtime driver for a :class:`FaultPlan`.

    Parameters
    ----------
    plan:
        The plan to execute (a :class:`FaultPlan` or a sequence of
        :class:`FaultSpec`).
    metrics:
        Metrics registry for the ``faults.injected`` counter; defaults
        to the process-global one at draw time.

    Thread safety: draws are serialised on an internal lock, so one
    injector can be shared by the executor's dispatch loop and the
    serving thread without double-firing a spec.
    """

    def __init__(
        self,
        plan: Union[FaultPlan, Sequence[FaultSpec]],
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.plan = plan if isinstance(plan, FaultPlan) else FaultPlan(plan)
        self._metrics = metrics
        self._lock = threading.Lock()
        self._matched = [0] * len(self.plan)
        self._events: List[Tuple[str, str, Dict[str, object]]] = []

    def _registry(self) -> MetricsRegistry:
        return self._metrics if self._metrics is not None else get_registry()

    # ------------------------------------------------------------------
    # Drawing
    # ------------------------------------------------------------------
    def draw(self, site: str, **attrs) -> Optional[FaultSpec]:
        """One draw at ``site``; returns the spec that fires, if any.

        Every spec whose filters match advances its counter; the first
        spec whose ``[at, at + times)`` window covers its counter fires.
        """
        fired: Optional[FaultSpec] = None
        with self._lock:
            for index, spec in enumerate(self.plan):
                if spec.site != site or not spec.matches(attrs):
                    continue
                self._matched[index] += 1
                count = self._matched[index]
                if fired is None and spec.at <= count < spec.at + spec.times:
                    fired = spec
            if fired is not None:
                self._events.append((site, fired.kind, dict(attrs)))
        if fired is not None:
            registry = self._registry()
            if registry.enabled:
                registry.counter(
                    "faults.injected", {"site": site, "kind": fired.kind}
                ).inc()
        return fired

    def worker_fault(self, spec: Optional[FaultSpec]) -> Optional[WorkerFault]:
        """The picklable token for a fired ``"shard"`` spec (else None)."""
        if spec is None or spec.site != "shard":
            return None
        return WorkerFault(kind=spec.kind, seconds=spec.seconds)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def events(self) -> Tuple[Tuple[str, str, Dict[str, object]], ...]:
        """Every fired fault, in firing order: ``(site, kind, attrs)``."""
        with self._lock:
            return tuple(self._events)

    def fired(
        self, site: Optional[str] = None, kind: Optional[str] = None
    ) -> int:
        """Number of fired faults, optionally filtered by site/kind."""
        with self._lock:
            return sum(
                1
                for event_site, event_kind, _ in self._events
                if (site is None or event_site == site)
                and (kind is None or event_kind == kind)
            )

    def exhausted(self) -> bool:
        """True when no spec can ever fire again."""
        with self._lock:
            return all(
                count >= spec.at + spec.times - 1
                for spec, count in zip(self.plan, self._matched)
            )

    def reset(self) -> None:
        """Rewind all draw counters and clear the event log."""
        with self._lock:
            self._matched = [0] * len(self.plan)
            self._events.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector(specs={len(self.plan)}, "
            f"fired={len(self._events)})"
        )
