"""Deterministic, seedable fault plans.

A :class:`FaultPlan` is an immutable list of :class:`FaultSpec` entries
describing *which* failure to inject *where* and *when*.  Plans are pure
data: nothing fires until a :class:`~repro.faults.injector.FaultInjector`
built from the plan is handed to a component (the sharded executor, the
device context, the checkpoint manager) and that component reaches the
matching injection site.

Determinism is the whole point — the same plan against the same workload
injects the same faults at the same operations, so chaos tests are
regular regression tests and the chaos bench is reproducible from its
seed alone.

Injection sites and the fault kinds they understand:

``"shard"``
    One draw per shard-task dispatch in
    :class:`~repro.core.backends.sharded.ShardedSampleExecutor`
    (attributes: ``shard`` index, ``attempt`` number).  Kinds:
    ``"crash"`` (SIGKILL the worker mid-shard), ``"hang"`` (sleep past
    the shard timeout), ``"slow"`` (straggler: sleep ``seconds`` but
    finish).
``"shm"``
    One draw per execution attempt, before the sample publication is
    refreshed.  Kinds: ``"corrupt"`` (scribble over the shared-memory
    segment — the publication guard must repair it) and ``"detach"``
    (tear the segment and pool down as if the OS reclaimed them).
``"checkpoint"``
    One draw per checkpoint write.  Kind ``"torn"`` truncates the file
    after the atomic rename, simulating storage that lied about
    durability.
``"device"``
    One draw per metered device operation (attributes: ``op``,
    ``name``).  Kind ``"error"`` raises
    :class:`~repro.faults.injector.InjectedFault` from the operation.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultPlan",
    "FaultSpec",
    "WorkerFault",
    "apply_worker_fault",
]

#: Kinds understood at each injection site.
FAULT_SITES: Dict[str, Tuple[str, ...]] = {
    "shard": ("crash", "hang", "slow"),
    "shm": ("corrupt", "detach"),
    "checkpoint": ("torn",),
    "device": ("error",),
}

#: Every known fault kind, across all sites.
FAULT_KINDS: Tuple[str, ...] = tuple(
    sorted({kind for kinds in FAULT_SITES.values() for kind in kinds})
)


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: what to inject, where, and on which draw.

    Parameters
    ----------
    site:
        Injection site (see :data:`FAULT_SITES`).
    kind:
        Fault kind; must be one the site understands.
    at:
        Fire on the ``at``-th draw *matching this spec's filters*
        (1-based).  With no filters that is simply the ``at``-th draw at
        the site.
    times:
        Fire on ``times`` consecutive matching draws starting at ``at``
        (so ``times=3`` with a ``shard`` filter crashes the first three
        dispatches of that shard — enough to exhaust a default retry
        budget).
    shard:
        Only match dispatches of this shard index (``"shard"`` site).
    seconds:
        Sleep duration for ``"hang"``/``"slow"`` faults.
    """

    site: str
    kind: str
    at: int = 1
    times: int = 1
    shard: Optional[int] = None
    seconds: float = 0.0

    def __post_init__(self) -> None:
        kinds = FAULT_SITES.get(self.site)
        if kinds is None:
            known = ", ".join(sorted(FAULT_SITES))
            raise ValueError(
                f"unknown fault site {self.site!r}; known sites: {known}"
            )
        if self.kind not in kinds:
            raise ValueError(
                f"fault kind {self.kind!r} is not valid at site "
                f"{self.site!r} (choices: {', '.join(kinds)})"
            )
        if self.at < 1:
            raise ValueError("at must be >= 1 (draws are 1-based)")
        if self.times < 1:
            raise ValueError("times must be >= 1")
        if self.seconds < 0:
            raise ValueError("seconds must be non-negative")

    def matches(self, attrs: Dict[str, object]) -> bool:
        """Whether a draw with ``attrs`` passes this spec's filters."""
        if self.shard is not None and attrs.get("shard") != self.shard:
            return False
        return True


class FaultPlan:
    """An immutable, ordered collection of :class:`FaultSpec` entries."""

    def __init__(self, specs: Sequence[FaultSpec] = ()) -> None:
        specs = tuple(specs)
        for spec in specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError(
                    f"plan entries must be FaultSpec, got "
                    f"{type(spec).__name__}"
                )
        self.specs = specs

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({list(self.specs)!r})"

    @classmethod
    def single(cls, site: str, kind: str, **kwargs) -> "FaultPlan":
        """Convenience: a plan with exactly one spec."""
        return cls([FaultSpec(site, kind, **kwargs)])

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        draws: int = 64,
        crash: float = 0.02,
        hang: float = 0.0,
        slow: float = 0.05,
        hang_seconds: float = 30.0,
        slow_seconds: float = 0.02,
    ) -> "FaultPlan":
        """A reproducible random plan over the ``"shard"`` site.

        Walks ``draws`` consecutive shard dispatches; each independently
        becomes a crash / hang / straggler with the given probabilities.
        The same seed always yields the same plan, which makes a chaos
        sweep a deterministic regression test.
        """
        if not 0.0 <= crash + hang + slow <= 1.0:
            raise ValueError("fault probabilities must sum to at most 1")
        rng = np.random.default_rng(seed)
        specs = []
        for position in range(1, draws + 1):
            u = float(rng.random())
            if u < crash:
                specs.append(FaultSpec("shard", "crash", at=position))
            elif u < crash + hang:
                specs.append(
                    FaultSpec(
                        "shard", "hang", at=position, seconds=hang_seconds
                    )
                )
            elif u < crash + hang + slow:
                specs.append(
                    FaultSpec(
                        "shard", "slow", at=position, seconds=slow_seconds
                    )
                )
        return cls(specs)


@dataclass(frozen=True)
class WorkerFault:
    """The picklable fault token shipped into a worker process.

    The host-side :class:`~repro.faults.injector.FaultInjector` never
    crosses the process boundary; when a ``"shard"`` spec fires, only
    this small token travels with the task arguments and
    :func:`apply_worker_fault` executes it inside the worker.
    """

    kind: str
    seconds: float = 0.0


def apply_worker_fault(fault: Optional[WorkerFault]) -> None:
    """Execute a :class:`WorkerFault` inside the worker process."""
    if fault is None:
        return
    if fault.kind == "crash":
        # SIGKILL mid-shard: the pool observes an abrupt worker death
        # (BrokenProcessPool), exactly like an OOM kill.
        os.kill(os.getpid(), signal.SIGKILL)
    elif fault.kind in ("hang", "slow"):
        time.sleep(fault.seconds)
    else:  # pragma: no cover - guarded by FaultSpec validation
        raise ValueError(f"unknown worker fault kind {fault.kind!r}")
