"""Retry budgets: bounded attempts, exponential backoff, seeded jitter.

The policy object is immutable and pure — it answers "how long before
the n-th retry" deterministically from its seed, so a fault-injection
test replays byte-identically and two executors with the same policy
but different seeds decorrelate their retry storms (the reason jitter
exists at all).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How a sharded execution retries infrastructure failures.

    Parameters
    ----------
    max_attempts:
        Total attempts per execution, including the first (so ``1``
        disables retries).
    shard_timeout:
        Per-shard wall-clock timeout in seconds, measured from dispatch;
        a shard that misses it counts as an infrastructure failure and
        its (possibly hung) worker pool is torn down.  ``None`` disables
        timeouts.
    backoff_base:
        Backoff before the first retry; doubles per retry.
    backoff_max:
        Backoff ceiling.
    jitter:
        Jitter fraction: the backoff is scaled by a deterministic factor
        drawn uniformly from ``[1, 1 + jitter]``.
    seed:
        Seed for the jitter draws (keyed per retry index, so delays are
        reproducible individually, not just as a sequence).
    """

    max_attempts: int = 3
    shard_timeout: Optional[float] = 60.0
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError("shard_timeout must be positive (or None)")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be non-negative")
        if self.backoff_max < self.backoff_base:
            raise ValueError("backoff_max must be >= backoff_base")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must lie in [0, 1]")

    def delay(self, retry_index: int) -> float:
        """Seconds to wait before the ``retry_index``-th retry (1-based)."""
        if retry_index < 1:
            raise ValueError("retry_index is 1-based")
        base = min(
            self.backoff_max,
            self.backoff_base * (2.0 ** (retry_index - 1)),
        )
        if base <= 0.0 or self.jitter <= 0.0:
            return base
        u = float(np.random.default_rng((self.seed, retry_index)).random())
        return base * (1.0 + self.jitter * u)

    def delays(self) -> Tuple[float, ...]:
        """Every retry delay this policy will ever use, in order."""
        return tuple(
            self.delay(index) for index in range(1, self.max_attempts)
        )
