"""``repro.forecast`` — workload forecasting and proactive control.

The predictive rung on top of the paper's reactive §4 loop (see DESIGN
§9): lightweight forecasters over the :mod:`repro.obs` stream predict
per-model query volume and predicate-region drift, and a
:class:`ProactiveController` drives the serving stack's actuators —
shard autoscaling (:meth:`~repro.core.backends.sharded.ShardedBackend.
resize`), eager reader warming (:meth:`~repro.serve.server.
SnapshotServer.warm`), scheduled publication ahead of predicted spikes,
and drift-triggered bandwidth re-optimisation — *before* load or error
arrives instead of after.

* :class:`Forecaster` family — moving-average, EWMA, linear-trend
  (:func:`make_forecaster` by name).
* :class:`DriftDetector` — query-box centroid/volume shift against the
  served sample distribution.
* :class:`TraceTap` — incremental, loss-accounted reader over the
  registry's bounded trace log.
* :class:`ProactiveController` — the control loop tying them to the
  actuators.
"""

from .controller import (
    ControllerAction,
    ControllerConfig,
    ProactiveController,
)
from .drift import DriftDetector, DriftReport
from .forecasters import (
    EwmaForecaster,
    Forecaster,
    LinearTrendForecaster,
    MovingAverageForecaster,
    make_forecaster,
)
from .taps import TapSample, TraceTap

__all__ = [
    "ControllerAction",
    "ControllerConfig",
    "DriftDetector",
    "DriftReport",
    "EwmaForecaster",
    "Forecaster",
    "LinearTrendForecaster",
    "MovingAverageForecaster",
    "ProactiveController",
    "TapSample",
    "TraceTap",
    "make_forecaster",
]
