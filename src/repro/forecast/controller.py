"""The proactive control loop: forecast, then provision.

The paper's §4 feedback loop is reactive — bandwidths move *after*
errors are observed, caches warm *after* misses, breakers trip *after*
failures.  :class:`ProactiveController` adds the predictive rung: it
periodically polls each served model's demand and predicate-region
signals, forecasts the next interval, and drives three actuators
*before* the load or drift arrives:

1. **Shard autoscaling** — when a model's published reader runs the
   sharded backend, the controller resizes its process pool to
   ``ceil(predicted_rate / queries_per_shard)`` (clamped), growing
   eagerly and shrinking only after ``scale_down_patience`` consecutive
   below-target forecasts (hysteresis, so a noisy forecast cannot
   thrash the pool).  :meth:`~repro.core.backends.sharded.
   ShardedSampleExecutor.resize` waits out in-flight batches, so the
   resize is invisible to concurrent readers.
2. **Eager warming** — every new publication's reader starts cold
   (empty CDF-term cache, unbuilt grid tables / hash index, unspun
   pool).  The controller calls :meth:`~repro.serve.server.
   SnapshotServer.warm` with the lane's recent query boxes whenever the
   publication sequence advances, so the first post-publication query
   pays a lookup, not a build.
3. **Scheduled publication** — when the forecast predicts a spike
   (``predicted >= spike_factor * current``) and the writer holds
   unpublished feedback, the controller publishes *now* (and warms the
   fresh reader), instead of letting the spike land on a stale snapshot
   that the first feedback of the burst would then republish mid-storm.

A :class:`~repro.forecast.drift.DriftDetector` per model watches
query-box centroids/volumes against the served sample distribution;
sustained drift triggers a bandwidth re-optimisation from the recent
feedback workload (Eq. 17 via :func:`~repro.core.optimize.
optimize_bandwidth`) — retuning *before* Q-error degrades rather than
after.

Every decision is observable: ``forecast.*`` gauges expose the measured
and predicted rates and the drift score, ``controller.*`` counters the
actions taken, all labelled ``{"model": "table/col1,col2"}``.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.backends.sharded import ShardedBackend
from ..core.gradient import QueryFeedback
from ..core.optimize import optimize_bandwidth
from ..geometry import Box
from ..obs import MetricsRegistry, get_registry
from ..serve.keys import TABLE as TABLE_KIND
from ..serve.keys import ModelKey
from ..serve.registry import ModelRegistry
from ..serve.server import SnapshotServer
from .drift import DriftDetector
from .forecasters import Forecaster, make_forecaster
from .taps import TraceTap

__all__ = ["ControllerAction", "ControllerConfig", "ProactiveController"]


@dataclass(frozen=True)
class ControllerConfig:
    """Tuning knobs for :class:`ProactiveController`.

    Parameters
    ----------
    interval:
        Seconds between control steps when running threaded
        (:meth:`ProactiveController.start`); :meth:`step` can also be
        driven manually at any cadence.
    horizon:
        Seconds ahead the demand forecast targets (the provisioning
        lead time).  Defaults to one interval.
    forecaster:
        Forecaster kind for per-model demand: ``"moving-average"``,
        ``"ewma"`` or ``"linear"`` (see :mod:`repro.forecast.forecasters`).
    window:
        Forecaster window (ignored by ``"ewma"``).
    ewma_alpha:
        EWMA smoothing factor (ignored by the windowed forecasters).
    queries_per_shard:
        Autoscaling setpoint: one shard per this many predicted
        queries/second.
    min_shards / max_shards:
        Clamp on the autoscaled shard count.
    scale_down_patience:
        Consecutive below-target forecasts required before shrinking
        (scale-up is immediate; hysteresis only guards the shrink).
    spike_factor:
        Publish ahead of a predicted spike of at least this multiple of
        the current rate.
    min_publish_staleness:
        Unpublished writer feedbacks required before a scheduled
        publication (publishing an unchanged state is a no-op cost).
    warm_on_publish:
        Warm every newly observed publication's reader eagerly.
    drift_threshold / drift_window / min_drift_samples / volume_factor:
        Forwarded to each model's :class:`~repro.forecast.drift.
        DriftDetector`.
    retune_cooldown:
        Minimum seconds between drift-triggered bandwidth retunes per
        model.
    min_retune_feedbacks:
        Feedback observations required in the retune workload before a
        re-optimisation is attempted.
    retune_starts / retune_seed:
        Forwarded to :func:`~repro.core.optimize.optimize_bandwidth`
        (few starts — a retune refines a tuned model, it does not train
        from scratch).
    """

    interval: float = 1.0
    horizon: Optional[float] = None
    forecaster: str = "linear"
    window: int = 8
    ewma_alpha: float = 0.3
    queries_per_shard: float = 256.0
    min_shards: int = 1
    max_shards: int = 8
    scale_down_patience: int = 3
    spike_factor: float = 2.0
    min_publish_staleness: int = 1
    warm_on_publish: bool = True
    drift_threshold: float = 3.0
    drift_window: int = 64
    min_drift_samples: int = 16
    volume_factor: Optional[float] = 8.0
    retune_cooldown: float = 30.0
    min_retune_feedbacks: int = 8
    retune_starts: int = 2
    retune_seed: int = 0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if self.horizon is not None and self.horizon < 0:
            raise ValueError("horizon must be non-negative")
        if self.queries_per_shard <= 0:
            raise ValueError("queries_per_shard must be positive")
        if self.min_shards < 1:
            raise ValueError("min_shards must be at least 1")
        if self.max_shards < self.min_shards:
            raise ValueError("max_shards must be >= min_shards")
        if self.scale_down_patience < 1:
            raise ValueError("scale_down_patience must be at least 1")
        if self.spike_factor <= 1.0:
            raise ValueError("spike_factor must exceed 1")
        if self.min_publish_staleness < 1:
            raise ValueError("min_publish_staleness must be at least 1")
        if self.retune_cooldown < 0:
            raise ValueError("retune_cooldown must be non-negative")
        if self.min_retune_feedbacks < 1:
            raise ValueError("min_retune_feedbacks must be at least 1")
        make_forecaster(
            self.forecaster,
            **(
                {"alpha": self.ewma_alpha}
                if self.forecaster == "ewma"
                else {"window": self.window}
            ),
        )  # fail fast on bad forecaster specs

    @property
    def effective_horizon(self) -> float:
        return self.interval if self.horizon is None else self.horizon


@dataclass(frozen=True)
class ControllerAction:
    """One actuator decision, for logs/tests/bench reporting."""

    #: ``"scale"``, ``"warm"``, ``"publish"`` or ``"retune"``.
    kind: str
    #: ``"table/col1,col2"`` label of the model acted on.
    model: str
    #: Actuator-specific detail (old/new shard counts, drift score, ...).
    detail: Dict[str, object] = field(default_factory=dict)


class _ModelState:
    """Per-served-model controller bookkeeping."""

    def __init__(
        self, server: SnapshotServer, config: ControllerConfig
    ) -> None:
        self.server = server
        if config.forecaster == "ewma":
            options = {"alpha": config.ewma_alpha}
        else:
            options = {"window": config.window}
        self.forecaster: Forecaster = make_forecaster(
            config.forecaster, **options
        )
        self.drift = DriftDetector(
            threshold=config.drift_threshold,
            window=config.drift_window,
            min_samples=config.min_drift_samples,
            volume_factor=config.volume_factor,
        )
        self.drift.set_reference_from_sample(server.published.state.sample)
        self.last_time: Optional[float] = None
        self.last_reads = 0
        self.last_frontend_requests = 0
        self.below_target_streak = 0
        self.warmed_sequence = 0
        self.last_retune: Optional[float] = None
        self.feedbacks: List[QueryFeedback] = []


class ProactiveController:
    """Forecast-driven actuator loop over a :class:`ModelRegistry`.

    Parameters
    ----------
    registry:
        The served-model map to control.  Models registered after
        construction are picked up on the next step.
    config:
        Tuning knobs (see :class:`ControllerConfig`).
    metrics:
        Registry for the controller's own telemetry *and* the trace tap
        feeding drift detection; ``None`` uses the process-wide one.
        Drift detection and trace-driven retuning need metrics enabled
        (the trace log lives in the registry); demand forecasting and
        autoscaling work either way via
        :attr:`~repro.serve.server.SnapshotServer.read_count`.
    frontend:
        Optional :class:`~repro.serve.frontend.EstimatorFrontend`.  The
        front end answers queries from the published reader directly
        (bypassing ``server.estimate_batch``), so when one is attached
        the controller reads demand from the lane's request counters and
        regions from :meth:`~repro.serve.frontend.EstimatorFrontend.
        recent_queries` instead of the server-side read counter.
    clock:
        Monotonic clock, injectable for deterministic tests.
    retune:
        Override for the drift actuator: called as
        ``retune(server, feedbacks)`` with the recent
        :class:`~repro.core.gradient.QueryFeedback` workload; the
        default re-optimises the writer's bandwidths and republishes.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        config: Optional[ControllerConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        frontend=None,
        clock: Callable[[], float] = time.monotonic,
        retune: Optional[Callable[[SnapshotServer, List[QueryFeedback]], None]] = None,
    ) -> None:
        self._registry_map = registry
        self.config = config if config is not None else ControllerConfig()
        self._metrics = metrics
        self._frontend = frontend
        self._clock = clock
        self._retune = retune
        self._states: Dict[ModelKey, _ModelState] = {}
        self._tap = TraceTap(self._registry())
        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self._lock = threading.Lock()
        #: Every action ever taken, oldest first (bench/test evidence).
        self.actions: List[ControllerAction] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ProactiveController":
        """Run :meth:`step` every ``config.interval`` seconds in a thread."""
        if self._thread is not None:
            return self
        self._stop_event.clear()

        def _loop() -> None:
            while not self._stop_event.wait(self.config.interval):
                try:
                    self.step()
                except Exception:
                    # The control loop must never die silently mid-run;
                    # a failed step is counted and the loop continues —
                    # the actuators are all idempotent.
                    self._registry().counter("controller.step_errors").inc()

        self._thread = threading.Thread(
            target=_loop, name="proactive-controller", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop_event.set()
        self._thread.join()
        self._thread = None

    def __enter__(self) -> "ProactiveController":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    # The control step
    # ------------------------------------------------------------------
    def step(self, now: Optional[float] = None) -> List[ControllerAction]:
        """One forecast-and-actuate pass over every served model.

        Returns the actions taken this step (also appended to
        :attr:`actions`).  The first step for a model only baselines its
        counters — forecasts need a measured interval.
        """
        with self._lock:
            now = self._clock() if now is None else float(now)
            actions: List[ControllerAction] = []
            self._ingest_traces()
            for key, server in self._registry_map.items():
                state = self._states.get(key)
                if state is None:
                    state = _ModelState(server, self.config)
                    self._states[key] = state
                elif state.server is not server:
                    # The key was re-registered with a different server;
                    # stale forecasts would mis-provision it.
                    state = _ModelState(server, self.config)
                    self._states[key] = state
                actions.extend(self._step_model(key, state, now))
            self.actions.extend(actions)
            return actions

    def _step_model(
        self,
        key: ModelKey,
        state: _ModelState,
        now: float,
    ) -> List[ControllerAction]:
        labels = {"model": key.label}
        registry = self._registry()
        actions: List[ControllerAction] = []
        server = state.server

        demand = self._demand(key, server)
        if state.last_time is None:
            # Baseline step: record counters, no rate measurable yet.
            state.last_time = now
            state.last_reads = demand
            return actions
        elapsed = now - state.last_time
        if elapsed <= 0:
            return actions
        rate = max(0.0, (demand - state.last_reads) / elapsed)
        state.last_time = now
        state.last_reads = demand
        state.forecaster.observe(now, rate)
        predicted = max(
            0.0, state.forecaster.forecast(self.config.effective_horizon)
        )
        registry.gauge("forecast.rate", labels).set(rate)
        registry.gauge("forecast.predicted_rate", labels).set(predicted)

        # Region signal: the frontend's recent boxes feed the drift
        # detector directly (trace-driven ingestion covers the
        # server-side path in _ingest_traces).
        recent_boxes = self._recent_boxes(key)
        for box in recent_boxes:
            center = tuple(
                (float(lo) + float(hi)) / 2.0
                for lo, hi in zip(box.low, box.high)
            )
            volume = 1.0
            for lo, hi in zip(box.low, box.high):
                volume *= max(0.0, float(hi) - float(lo))
            state.drift.observe(center, volume)

        # Warm runs last so it covers whatever publication the earlier
        # actuators (publish-ahead, retune) just created — a reader the
        # controller itself published must never be left cold.
        actions.extend(self._autoscale(state, predicted, labels))
        actions.extend(self._publish_ahead(state, rate, predicted, labels))
        actions.extend(self._retune_on_drift(state, now, labels))
        actions.extend(self._warm(state, recent_boxes, labels))
        for action in actions:
            registry.counter(
                f"controller.{action.kind}_events", labels
            ).inc()
        return actions

    # -- signals --------------------------------------------------------
    def _demand(self, key: ModelKey, server: SnapshotServer) -> int:
        """Cumulative queries answered for this model (any key kind).

        The front end evaluates published readers directly, so its lane
        counters see traffic ``server.read_count`` never does; both are
        cumulative, so their sum differences cleanly.  Single-table keys
        query the front end with the legacy ``(table, columns)``
        spelling (so simple stub frontends keep working); join-signature
        keys address their lane by :class:`ModelKey` directly.
        """
        demand = server.read_count
        if self._frontend is not None:
            try:
                if key.kind == TABLE_KIND:
                    stats = self._frontend.stats(key.tables[0], key.columns)
                else:
                    stats = self._frontend.stats(key)
                demand += stats.requests
            except KeyError:
                pass
        return demand

    def _recent_boxes(self, key: ModelKey) -> List[Box]:
        if self._frontend is None:
            return []
        try:
            if key.kind == TABLE_KIND:
                return self._frontend.recent_queries(
                    key.tables[0], key.columns
                )
            return self._frontend.recent_queries(key)
        except KeyError:
            return []

    def _ingest_traces(self) -> None:
        """Fold new estimation traces into every model's drift/retune state.

        Traces are not labelled per model (the registry is shared), so
        region records are attributed to the model whose dimensionality
        matches — exact when served models have distinct dimensions, and
        a conservative broadcast (same record to all same-dimension
        models) otherwise.
        """
        sample = self._tap.poll()
        if not sample.traces:
            return
        by_dim: Dict[int, List[_ModelState]] = {}
        for state in self._states.values():
            dims = int(state.server.published.state.sample.shape[1])
            by_dim.setdefault(dims, []).append(state)
        for trace in sample.traces:
            if trace.query_low is None or trace.query_high is None:
                continue
            states = by_dim.get(len(trace.query_low), ())
            for state in states:
                # Every bounded trace is region signal, whatever its
                # stage: a drifted feedback workload must register as
                # drift even when the query path bypasses tracing.
                center = trace.query_center
                if center is not None:
                    state.drift.observe(center, trace.query_volume)
                if trace.stage == "feedback" and trace.actual is not None:
                    try:
                        feedback = QueryFeedback(
                            Box(
                                np.asarray(trace.query_low),
                                np.asarray(trace.query_high),
                            ),
                            float(trace.actual),
                        )
                    except ValueError:
                        continue
                    state.feedbacks.append(feedback)
                    del state.feedbacks[: -4 * self.config.drift_window]

    # -- actuators ------------------------------------------------------
    def _autoscale(
        self,
        state: _ModelState,
        predicted: float,
        labels: Dict[str, str],
    ) -> List[ControllerAction]:
        backend = getattr(state.server.published.reader, "_backend", None)
        if not isinstance(backend, ShardedBackend):
            return []
        config = self.config
        target = max(
            config.min_shards,
            min(
                config.max_shards,
                int(math.ceil(predicted / config.queries_per_shard)) or 1,
            ),
        )
        current = backend.shards
        self._registry().gauge("controller.target_shards", labels).set(
            float(target)
        )
        if target > current:
            state.below_target_streak = 0
            backend.resize(target)
        elif target < current:
            # Hysteresis: shrink only after sustained low forecasts.
            state.below_target_streak += 1
            if state.below_target_streak < config.scale_down_patience:
                return []
            state.below_target_streak = 0
            backend.resize(target)
        else:
            state.below_target_streak = 0
            return []
        return [
            ControllerAction(
                kind="scale",
                model=labels["model"],
                detail={
                    "from": current,
                    "to": target,
                    "predicted_rate": predicted,
                },
            )
        ]

    def _publish_ahead(
        self,
        state: _ModelState,
        rate: float,
        predicted: float,
        labels: Dict[str, str],
    ) -> List[ControllerAction]:
        config = self.config
        server = state.server
        if server.staleness < config.min_publish_staleness:
            return []
        spiking = predicted >= config.spike_factor * max(rate, 1e-9)
        if not (spiking and predicted > 0.0):
            return []
        server.publish()
        return [
            ControllerAction(
                kind="publish",
                model=labels["model"],
                detail={"rate": rate, "predicted_rate": predicted},
            )
        ]

    def _warm(
        self,
        state: _ModelState,
        recent_boxes: List[Box],
        labels: Dict[str, str],
    ) -> List[ControllerAction]:
        if not self.config.warm_on_publish:
            return []
        server = state.server
        sequence = server.published.sequence
        if sequence == state.warmed_sequence:
            return []
        warmed = server.warm(recent_boxes if recent_boxes else None)
        state.warmed_sequence = sequence
        if not warmed:
            return []
        return [
            ControllerAction(
                kind="warm",
                model=labels["model"],
                detail={
                    "sequence": sequence,
                    "queries": len(recent_boxes),
                },
            )
        ]

    def _retune_on_drift(
        self,
        state: _ModelState,
        now: float,
        labels: Dict[str, str],
    ) -> List[ControllerAction]:
        config = self.config
        registry = self._registry()
        if not state.drift.has_reference:
            return []
        report = state.drift.check()
        registry.gauge("forecast.drift_score", labels).set(report.score)
        if not report.drifted:
            return []
        if (
            state.last_retune is not None
            and now - state.last_retune < config.retune_cooldown
        ):
            return []
        workload = state.feedbacks[-config.drift_window:]
        if len(workload) < config.min_retune_feedbacks:
            return []
        state.last_retune = now
        if self._retune is not None:
            self._retune(state.server, list(workload))
        elif not self._default_retune(state.server, workload):
            return []
        state.drift.rebase()
        return [
            ControllerAction(
                kind="retune",
                model=labels["model"],
                detail={
                    "drift_score": report.score,
                    "volume_ratio": report.volume_ratio,
                    "feedbacks": len(workload),
                },
            )
        ]

    def _default_retune(
        self, server: SnapshotServer, workload: List[QueryFeedback]
    ) -> bool:
        """Re-optimise the writer's bandwidths from the recent workload.

        Runs a short multi-start optimisation (Eq. 17 gradients) on the
        published state's sample, assigns the result through the writer
        model's bandwidth setter (which bumps the epoch and invalidates
        backends), and republishes so readers see the retuned model
        immediately.  Returns ``False`` — no action — for models
        without a settable ``bandwidth`` property.
        """
        model = server.model
        prop = getattr(type(model), "bandwidth", None)
        if not isinstance(prop, property) or prop.fset is None:
            return False
        sample = server.published.state.sample
        result = optimize_bandwidth(
            np.asarray(sample, dtype=np.float64),
            workload,
            starts=self.config.retune_starts,
            seed=self.config.retune_seed,
        )
        model.bandwidth = result.bandwidth
        server.publish()
        return True

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _registry(self) -> MetricsRegistry:
        return self._metrics if self._metrics is not None else get_registry()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProactiveController(models={len(self._states)}, "
            f"actions={len(self.actions)}, "
            f"running={self._thread is not None})"
        )
