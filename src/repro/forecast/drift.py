"""Predicate-region drift detection against the model's sample.

Learned estimators retrain when the *queried* region walks away from the
distribution the model was fitted on (the staleness triggers of Naru-
style estimators, PAPERS.md).  The KDE analogue: the bandwidth vector
was tuned for the feedback workload seen so far, so when query-box
centroids shift — measured in units of the sample's per-dimension spread
— the current bandwidths are tuned for the wrong region and Q-error will
degrade *after* the shift hits.  :class:`DriftDetector` raises that flag
early so the :class:`~repro.forecast.ProactiveController` can re-optimise
bandwidths before the errors arrive, upgrading the paper's reactive §4
loop to a predictive one.

Mechanics: the detector holds a per-dimension *reference* (mean and
scale, usually taken from the served model's sample) and a bounded
window of recent query-box centers/volumes.  ``check()`` scores the
shift of the recent center mean against the reference in scale units
(a z-score per dimension; the max is the headline score) and tracks the
ratio of recent mean query volume to the reference volume.  ``rebase``
re-anchors the reference after a retune so one drift episode fires one
retune, not an endless train of them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Sequence, Tuple

import numpy as np

__all__ = ["DriftDetector", "DriftReport"]

#: Scale floor so a constant dimension can't blow the z-score up.
_SCALE_FLOOR = 1e-12


@dataclass(frozen=True)
class DriftReport:
    """One drift check: headline score, per-dimension detail, verdict."""

    #: Max per-dimension z-score of the recent center mean.
    score: float
    #: Per-dimension z-scores, reference-scale units.
    dimension_scores: Tuple[float, ...]
    #: Recent mean query volume / reference volume (1.0 when unknown).
    volume_ratio: float
    #: Recent centers the verdict was computed over.
    samples: int
    #: True when the detector considers the workload drifted.
    drifted: bool


class DriftDetector:
    """Centroid/volume drift of recent query boxes vs a reference.

    Parameters
    ----------
    threshold:
        Headline z-score at or above which ``check()`` reports drift.
    window:
        Recent query centers/volumes retained (bounded deque).
    min_samples:
        Minimum recent centers before a verdict; below it ``check()``
        reports ``drifted=False`` regardless of the score.
    volume_factor:
        Also report drift when the recent/reference volume ratio leaves
        ``[1/volume_factor, volume_factor]`` — a workload that suddenly
        asks much wider (or narrower) boxes needs retuned bandwidths
        even if its centroid stayed put.  ``None`` disables the volume
        criterion.
    """

    def __init__(
        self,
        threshold: float = 3.0,
        window: int = 64,
        min_samples: int = 16,
        volume_factor: Optional[float] = 8.0,
    ) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if window < 1:
            raise ValueError("window must be at least 1")
        if min_samples < 1:
            raise ValueError("min_samples must be at least 1")
        if volume_factor is not None and volume_factor <= 1.0:
            raise ValueError("volume_factor must exceed 1")
        self.threshold = float(threshold)
        self.window = int(window)
        self.min_samples = int(min_samples)
        self.volume_factor = volume_factor
        self._reference_mean: Optional[np.ndarray] = None
        self._reference_scale: Optional[np.ndarray] = None
        self._reference_volume: Optional[float] = None
        self._centers: Deque[Tuple[float, ...]] = deque(maxlen=self.window)
        self._volumes: Deque[float] = deque(maxlen=self.window)

    # ------------------------------------------------------------------
    # Reference management
    # ------------------------------------------------------------------
    def set_reference(
        self,
        mean: Sequence[float],
        scale: Optional[Sequence[float]] = None,
    ) -> None:
        """Anchor the reference centroid (and optional per-dim scale)."""
        self._reference_mean = np.asarray(mean, dtype=np.float64)
        if scale is None:
            self._reference_scale = np.ones_like(self._reference_mean)
        else:
            self._reference_scale = np.maximum(
                np.asarray(scale, dtype=np.float64), _SCALE_FLOOR
            )
        if self._reference_mean.shape != self._reference_scale.shape:
            raise ValueError("mean and scale must have the same shape")

    def set_reference_from_sample(self, sample: np.ndarray) -> None:
        """Reference = the model sample's per-dimension mean and std.

        This is the anchoring the controller uses: "drift" then means
        the queried region walking away from the data distribution the
        served model represents, in units of that distribution's spread.
        """
        sample = np.asarray(sample, dtype=np.float64)
        self.set_reference(sample.mean(axis=0), sample.std(axis=0))

    @property
    def has_reference(self) -> bool:
        return self._reference_mean is not None

    # ------------------------------------------------------------------
    # Observation + verdict
    # ------------------------------------------------------------------
    def observe(
        self, center: Sequence[float], volume: Optional[float] = None
    ) -> None:
        """Record one query box's center (and optionally its volume)."""
        self._centers.append(tuple(float(c) for c in center))
        if volume is not None:
            self._volumes.append(float(volume))

    @property
    def samples(self) -> int:
        return len(self._centers)

    def check(self) -> DriftReport:
        """Score the recent window against the reference."""
        if self._reference_mean is None:
            raise RuntimeError(
                "set_reference (or set_reference_from_sample) first"
            )
        n = len(self._centers)
        if n == 0:
            return DriftReport(
                score=0.0,
                dimension_scores=tuple(
                    0.0 for _ in range(self._reference_mean.shape[0])
                ),
                volume_ratio=1.0,
                samples=0,
                drifted=False,
            )
        centers = np.asarray(self._centers, dtype=np.float64)
        if centers.shape[1] != self._reference_mean.shape[0]:
            raise ValueError(
                f"centers have {centers.shape[1]} dimensions, reference "
                f"has {self._reference_mean.shape[0]}"
            )
        recent_mean = centers.mean(axis=0)
        scores = np.abs(recent_mean - self._reference_mean) / np.maximum(
            self._reference_scale, _SCALE_FLOOR
        )
        score = float(scores.max())
        volume_ratio = 1.0
        volume_drift = False
        if self._volumes:
            recent_volume = float(np.mean(self._volumes))
            if self._reference_volume is None:
                # First window with volumes anchors the volume reference.
                self._reference_volume = recent_volume
            reference = max(self._reference_volume, _SCALE_FLOOR)
            volume_ratio = recent_volume / reference
            if self.volume_factor is not None:
                volume_drift = (
                    volume_ratio >= self.volume_factor
                    or volume_ratio <= 1.0 / self.volume_factor
                )
        drifted = n >= self.min_samples and (
            score >= self.threshold or volume_drift
        )
        return DriftReport(
            score=score,
            dimension_scores=tuple(float(s) for s in scores),
            volume_ratio=volume_ratio,
            samples=n,
            drifted=drifted,
        )

    def rebase(self, sample: Optional[np.ndarray] = None) -> None:
        """Re-anchor after a retune: new reference, empty recent window.

        With ``sample`` given the reference is re-derived from it;
        otherwise the recent center mean becomes the new reference
        centroid (scales are kept — the sample spread did not change
        just because the workload moved).
        """
        if sample is not None:
            self.set_reference_from_sample(sample)
        elif self._centers:
            centers = np.asarray(self._centers, dtype=np.float64)
            self._reference_mean = centers.mean(axis=0)
        if self._volumes:
            self._reference_volume = float(np.mean(self._volumes))
        self._centers.clear()
        self._volumes.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DriftDetector(threshold={self.threshold}, "
            f"samples={len(self._centers)}, "
            f"reference={'set' if self.has_reference else 'unset'})"
        )
