"""Lightweight time-series forecasters for the proactive control loop.

The controller needs *cheap, explainable* one-step-ahead predictions of
per-model query volume — the forecast-then-provision shape of
provisioning systems — not a learned model: each forecaster is O(window)
memory, O(1)–O(window) per observation, and fully deterministic.  Three
classical estimators cover the workload shapes the bench drives:

* :class:`MovingAverageForecaster` — robust level estimate; lags trends.
* :class:`EwmaForecaster` — exponentially weighted level; tracks bursts
  faster for the same memory, still horizon-flat.
* :class:`LinearTrendForecaster` — least-squares line over the recent
  ``(t, v)`` window; the only one whose forecast *extrapolates* with the
  horizon, so ramps are anticipated rather than chased.

All three share one contract: feed ``observe(t, value)`` with a
monotonic timestamp (see :class:`~repro.obs.trace.EstimationTrace`'s
``timestamp`` field — rates must come from timestamp spans, never record
counts) and read ``forecast(horizon)`` for the predicted value
``horizon`` seconds past the latest observation.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

__all__ = [
    "EwmaForecaster",
    "Forecaster",
    "LinearTrendForecaster",
    "MovingAverageForecaster",
    "make_forecaster",
]


class Forecaster:
    """Base contract: observe ``(t, value)`` points, predict ahead.

    ``observe`` timestamps must be non-decreasing (monotonic clock);
    ``forecast(horizon)`` predicts the series value ``horizon`` seconds
    after the most recent observation and raises ``ValueError`` before
    any observation arrived (a forecast from nothing is a bug in the
    caller, not a zero).
    """

    #: Registry name, set by subclasses.
    kind: str = ""

    def __init__(self) -> None:
        self._last_t: Optional[float] = None

    @property
    def observations(self) -> int:
        """Observations absorbed since construction / the last reset."""
        raise NotImplementedError

    def observe(self, t: float, value: float) -> None:
        if self._last_t is not None and t < self._last_t:
            raise ValueError(
                f"observation timestamps must be non-decreasing "
                f"({t} < {self._last_t}); use a monotonic clock"
            )
        self._last_t = float(t)
        self._observe(float(t), float(value))

    def forecast(self, horizon: float = 0.0) -> float:
        if self._last_t is None:
            raise ValueError("forecast() before any observation")
        if horizon < 0:
            raise ValueError("horizon must be non-negative")
        return self._forecast(float(horizon))

    def reset(self) -> None:
        self._last_t = None

    # -- subclass hooks -------------------------------------------------
    def _observe(self, t: float, value: float) -> None:
        raise NotImplementedError

    def _forecast(self, horizon: float) -> float:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(observations={self.observations})"


class MovingAverageForecaster(Forecaster):
    """Mean of the last ``window`` values; horizon-flat."""

    kind = "moving-average"

    def __init__(self, window: int = 8) -> None:
        super().__init__()
        if window < 1:
            raise ValueError("window must be at least 1")
        self.window = int(window)
        self._values: Deque[float] = deque(maxlen=self.window)

    @property
    def observations(self) -> int:
        return len(self._values)

    def _observe(self, t: float, value: float) -> None:
        self._values.append(value)

    def _forecast(self, horizon: float) -> float:
        return sum(self._values) / len(self._values)

    def reset(self) -> None:
        super().reset()
        self._values.clear()


class EwmaForecaster(Forecaster):
    """Exponentially weighted moving average; horizon-flat.

    ``level <- alpha * value + (1 - alpha) * level`` per observation —
    larger ``alpha`` chases bursts faster at the price of more noise.
    """

    kind = "ewma"

    def __init__(self, alpha: float = 0.3) -> None:
        super().__init__()
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must lie in (0, 1]")
        self.alpha = float(alpha)
        self._level: Optional[float] = None
        self._count = 0

    @property
    def observations(self) -> int:
        return self._count

    def _observe(self, t: float, value: float) -> None:
        if self._level is None:
            self._level = value
        else:
            self._level += self.alpha * (value - self._level)
        self._count += 1

    def _forecast(self, horizon: float) -> float:
        assert self._level is not None
        return self._level

    def reset(self) -> None:
        super().reset()
        self._level = None
        self._count = 0


class LinearTrendForecaster(Forecaster):
    """Least-squares line over the last ``window`` ``(t, value)`` points.

    The only forecaster here that uses the horizon: on an exactly linear
    series it recovers the slope exactly (the known-answer tests pin
    this) and ``forecast(h)`` extrapolates ``value(t_last + h)``.  With
    a single point (or zero time spread) it degrades to the level.
    """

    kind = "linear"

    def __init__(self, window: int = 8) -> None:
        super().__init__()
        if window < 2:
            raise ValueError("window must be at least 2")
        self.window = int(window)
        self._points: Deque[Tuple[float, float]] = deque(maxlen=self.window)

    @property
    def observations(self) -> int:
        return len(self._points)

    def _observe(self, t: float, value: float) -> None:
        self._points.append((t, value))

    def _fit(self) -> Tuple[float, float, float]:
        """``(intercept, slope, t_last)`` of the least-squares line.

        Times are centred on their mean before fitting so monotonic
        timestamps (large absolute values) cost no precision.
        """
        points = self._points
        n = len(points)
        t_last = points[-1][0]
        t_mean = sum(t for t, _ in points) / n
        v_mean = sum(v for _, v in points) / n
        stt = sum((t - t_mean) ** 2 for t, _ in points)
        if stt == 0.0:
            return v_mean, 0.0, t_last
        stv = sum((t - t_mean) * (v - v_mean) for t, v in points)
        slope = stv / stt
        return v_mean - slope * t_mean, slope, t_last

    @property
    def slope(self) -> float:
        """Fitted values-per-second slope (0.0 with <2 distinct times)."""
        if not self._points:
            return 0.0
        return self._fit()[1]

    def _forecast(self, horizon: float) -> float:
        intercept, slope, t_last = self._fit()
        return intercept + slope * (t_last + horizon)

    def reset(self) -> None:
        super().reset()
        self._points.clear()


_FORECASTERS = {
    MovingAverageForecaster.kind: MovingAverageForecaster,
    EwmaForecaster.kind: EwmaForecaster,
    LinearTrendForecaster.kind: LinearTrendForecaster,
}


def make_forecaster(kind: str, **options) -> Forecaster:
    """Instantiate a forecaster by registry name.

    ``kind`` is one of ``"moving-average"``, ``"ewma"``, ``"linear"``;
    ``options`` are forwarded to the constructor (``window=``,
    ``alpha=``).
    """
    try:
        cls = _FORECASTERS[kind]
    except KeyError:
        raise ValueError(
            f"unknown forecaster {kind!r} "
            f"(choices: {', '.join(sorted(_FORECASTERS))})"
        ) from None
    return cls(**options)
