"""Forecastable taps over the observability stream.

:class:`TraceTap` turns the bounded, append-only
:class:`~repro.obs.trace.TraceLog` into an *incremental* feed: each
:meth:`TraceTap.poll` returns exactly the records appended since the
previous poll (and an honest count of records the log's capacity bound
evicted before they could be read).  The forecast layer consumes the
feed for two signals:

* **region** — estimate-stage traces carry the query-box bounds the
  estimator saw (``query_low``/``query_high``), which
  :meth:`TapSample.centers` / :meth:`TapSample.volumes` project into the
  drift detector's inputs;
* **workload** — feedback-stage traces carry ``(bounds, actual)``
  pairs, exactly the :class:`~repro.core.gradient.QueryFeedback`
  observations a bandwidth re-optimisation needs
  (:meth:`TapSample.feedback_pairs`).

Rates are *never* inferred from record counts alone: records carry a
monotonic ``timestamp`` and :meth:`TapSample.rate` divides by the
timestamp span (the log bound silently evicts records, so counts say
nothing about elapsed time — the bug the timestamp field exists to
prevent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..obs.metrics import MetricsRegistry
from ..obs.trace import EstimationTrace

__all__ = ["TapSample", "TraceTap"]


@dataclass(frozen=True)
class TapSample:
    """One poll's worth of new traces, plus honest loss accounting."""

    #: Records returned in :attr:`traces` (appended since the last poll
    #: and still resident in the log).
    count: int
    #: Records appended since the last poll but already evicted by the
    #: log's capacity bound — counted so a slow poller knows its view
    #: is lossy instead of silently under-measuring.
    dropped: int
    traces: Tuple[EstimationTrace, ...]

    @property
    def observed(self) -> int:
        """Total records appended since the last poll (read + evicted)."""
        return self.count + self.dropped

    def rate(self) -> float:
        """Records per second over this sample's *timestamp* span.

        0.0 with fewer than two records (no span to divide by).
        """
        if len(self.traces) < 2:
            return 0.0
        span = self.traces[-1].timestamp - self.traces[0].timestamp
        if span <= 0.0:
            return 0.0
        return (len(self.traces) - 1) / span

    def centers(self) -> List[Tuple[float, ...]]:
        """Query-box centers of the traces that carried bounds."""
        return [
            t.query_center for t in self.traces if t.query_center is not None
        ]

    def volumes(self) -> List[float]:
        """Query-box volumes of the traces that carried bounds."""
        return [
            t.query_volume for t in self.traces if t.query_volume is not None
        ]

    def feedback_pairs(
        self,
    ) -> List[Tuple[Tuple[float, ...], Tuple[float, ...], float]]:
        """``(low, high, actual)`` triples from feedback-stage traces.

        The raw material of a bandwidth retune: the controller rebuilds
        :class:`~repro.core.gradient.QueryFeedback` objects from these.
        Actuals are clamped-checked by ``QueryFeedback`` itself, so the
        tap passes them through untouched.
        """
        return [
            (t.query_low, t.query_high, t.actual)
            for t in self.traces
            if (
                t.stage == "feedback"
                and t.actual is not None
                and t.query_low is not None
                and t.query_high is not None
            )
        ]


class TraceTap:
    """Incremental reader over a registry's trace log.

    Each instance keeps its own high-water mark (``TraceLog.total`` at
    the last poll), so several independent consumers — one controller
    per model group, a bench reporter — can tap the same log without
    stealing each other's records.  Construction starts the mark at the
    log's *current* total: a tap reads traffic from its own lifetime,
    not history it never asked for (pass ``from_start=True`` to include
    whatever the log still holds).
    """

    def __init__(
        self, registry: MetricsRegistry, *, from_start: bool = False
    ) -> None:
        self._registry = registry
        log = registry.traces
        self._seen = 0 if from_start else log.total

    @property
    def pending(self) -> int:
        """Records appended since the last poll (including any evicted)."""
        return max(0, self._registry.traces.total - self._seen)

    def poll(self, stage: Optional[str] = None) -> TapSample:
        """Consume everything appended since the previous poll.

        ``stage`` filters the returned traces (``"estimate"``,
        ``"feedback"``) without affecting the high-water mark — a
        stage-filtered poll still consumes the whole interval.
        """
        log = self._registry.traces
        total = log.total
        new = max(0, total - self._seen)
        self._seen = total
        if new == 0:
            return TapSample(count=0, dropped=0, traces=())
        resident = len(log)
        readable = min(new, resident)
        dropped = new - readable
        records = list(log)[resident - readable:]
        if stage is not None:
            records = [t for t in records if t.stage == stage]
        return TapSample(
            count=readable, dropped=dropped, traces=tuple(records)
        )
