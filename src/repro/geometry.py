"""Shared geometric vocabulary: hyper-rectangular query regions.

The paper (Section 2.1) restricts the estimation problem to query regions
that are hyper-rectangles, i.e. Cartesian products of per-attribute
intervals ``(l_1, u_1) x ... x (l_d, u_d)``.  Every component of this
library — the KDE estimator, the STHoles histogram, the workload
generators, and the relational substrate — communicates in terms of the
:class:`Box` type defined here.

:class:`QueryBatch` is the plural form: a whole workload of boxes stacked
into two ``(q, d)`` bound matrices, validated once at construction.  The
batched evaluation engine (``KernelDensityEstimator.selectivity_batch``
and the device layer's batched launches) consumes this type directly, so
per-query Python overhead is paid exactly once per batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Box", "QueryBatch", "RangeQuery", "intersect", "union_bounds"]


@dataclass(frozen=True)
class Box:
    """A closed axis-aligned hyper-rectangle ``[low_i, high_i]`` per dimension.

    Parameters
    ----------
    low:
        Lower bounds, one per dimension.
    high:
        Upper bounds, one per dimension.  Must satisfy ``high >= low``
        element-wise.
    """

    low: np.ndarray
    high: np.ndarray

    def __post_init__(self) -> None:
        low = np.asarray(self.low, dtype=np.float64)
        high = np.asarray(self.high, dtype=np.float64)
        if low.ndim != 1 or high.ndim != 1:
            raise ValueError("Box bounds must be one-dimensional arrays")
        if low.shape != high.shape:
            raise ValueError(
                f"bound shapes differ: {low.shape} vs {high.shape}"
            )
        if low.size == 0:
            raise ValueError("Box must have at least one dimension")
        if np.any(high < low):
            raise ValueError("Box requires high >= low in every dimension")
        object.__setattr__(self, "low", low)
        object.__setattr__(self, "high", high)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_center(cls, center: Sequence[float], widths: Sequence[float]) -> "Box":
        """Build a box from its center point and per-dimension widths."""
        center = np.asarray(center, dtype=np.float64)
        widths = np.asarray(widths, dtype=np.float64)
        if np.any(widths < 0):
            raise ValueError("widths must be non-negative")
        half = widths / 2.0
        return cls(center - half, center + half)

    @classmethod
    def unit(cls, dimensions: int) -> "Box":
        """The unit cube ``[0, 1]^d``."""
        return cls(np.zeros(dimensions), np.ones(dimensions))

    @classmethod
    def bounding(cls, points: np.ndarray, margin: float = 0.0) -> "Box":
        """Tightest box containing every row of ``points``, padded by ``margin``."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        low = points.min(axis=0) - margin
        high = points.max(axis=0) + margin
        return cls(low, high)

    # ------------------------------------------------------------------
    # Basic geometry
    # ------------------------------------------------------------------
    @property
    def dimensions(self) -> int:
        return self.low.shape[0]

    @property
    def widths(self) -> np.ndarray:
        return self.high - self.low

    @property
    def center(self) -> np.ndarray:
        return (self.low + self.high) / 2.0

    def volume(self) -> float:
        """Product of the side lengths (zero for degenerate boxes).

        Cached after the first call — boxes are immutable, and volume is
        on the hot path of the STHoles merge planner.
        """
        cached = self.__dict__.get("_volume")
        if cached is None:
            cached = float(np.prod(self.widths))
            object.__setattr__(self, "_volume", cached)
        return cached

    def is_degenerate(self) -> bool:
        """True when at least one side has zero length."""
        return bool(np.any(self.widths == 0.0))

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask of rows of ``points`` that lie inside the box."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        return np.all((points >= self.low) & (points <= self.high), axis=1)

    def contains_box(self, other: "Box") -> bool:
        """True when ``other`` lies fully inside this box."""
        return bool(
            np.all(other.low >= self.low) and np.all(other.high <= self.high)
        )

    def intersects(self, other: "Box") -> bool:
        """True when the boxes share at least a boundary point."""
        return bool(
            np.all(self.low <= other.high) and np.all(other.low <= self.high)
        )

    def intersect(self, other: "Box") -> Optional["Box"]:
        """Intersection box, or ``None`` when the boxes are disjoint."""
        low = np.maximum(self.low, other.low)
        high = np.minimum(self.high, other.high)
        if np.any(high < low):
            return None
        return Box(low, high)

    def clip_to(self, bounds: "Box") -> "Box":
        """Clip this box to ``bounds`` (which must intersect it)."""
        clipped = self.intersect(bounds)
        if clipped is None:
            raise ValueError("box does not intersect the clipping bounds")
        return clipped

    def expand(self, factor: float) -> "Box":
        """Scale the box about its center by ``factor`` per dimension."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return Box.from_center(self.center, self.widths * factor)

    def translate(self, offset: Sequence[float]) -> "Box":
        offset = np.asarray(offset, dtype=np.float64)
        return Box(self.low + offset, self.high + offset)

    def corners(self) -> np.ndarray:
        """All ``2^d`` corner points (only sensible for small ``d``)."""
        d = self.dimensions
        if d > 20:
            raise ValueError("too many dimensions to enumerate corners")
        grids = np.meshgrid(*[(self.low[i], self.high[i]) for i in range(d)])
        return np.stack([g.ravel() for g in grids], axis=1)

    def sample_uniform(
        self, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``count`` points uniformly from the box."""
        return rng.uniform(self.low, self.high, size=(count, self.dimensions))

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        """Iterate over per-dimension ``(low, high)`` interval tuples."""
        for lo, hi in zip(self.low, self.high):
            yield (float(lo), float(hi))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Box):
            return NotImplemented
        return bool(
            np.array_equal(self.low, other.low)
            and np.array_equal(self.high, other.high)
        )

    def __hash__(self) -> int:
        return hash((self.low.tobytes(), self.high.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"[{lo:g}, {hi:g}]" for lo, hi in self)
        return f"Box({parts})"


@dataclass(frozen=True)
class QueryBatch:
    """A stack of ``q`` axis-aligned query boxes sharing one dimensionality.

    Parameters
    ----------
    low:
        ``(q, d)`` matrix of lower bounds, one row per query.
    high:
        ``(q, d)`` matrix of upper bounds.  Must satisfy ``high >= low``
        element-wise (degenerate zero-width queries are allowed, exactly
        as for :class:`Box`).

    The bounds are validated once here; the batched evaluation paths then
    operate on the raw arrays without re-checking every query.
    """

    low: np.ndarray
    high: np.ndarray

    def __post_init__(self) -> None:
        low = np.atleast_2d(np.asarray(self.low, dtype=np.float64))
        high = np.atleast_2d(np.asarray(self.high, dtype=np.float64))
        if low.ndim != 2 or high.ndim != 2:
            raise ValueError("QueryBatch bounds must be (q, d) matrices")
        if low.shape != high.shape:
            raise ValueError(
                f"bound shapes differ: {low.shape} vs {high.shape}"
            )
        if low.shape[0] == 0:
            raise ValueError("QueryBatch must contain at least one query")
        if low.shape[1] == 0:
            raise ValueError("QueryBatch must have at least one dimension")
        if not (np.all(np.isfinite(low)) and np.all(np.isfinite(high))):
            raise ValueError("QueryBatch bounds must be finite")
        if np.any(high < low):
            raise ValueError("QueryBatch requires high >= low everywhere")
        object.__setattr__(self, "low", low)
        object.__setattr__(self, "high", high)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_boxes(cls, boxes: Iterable[Box]) -> "QueryBatch":
        """Stack a sequence of :class:`Box` es into one batch."""
        boxes = list(boxes)
        if not boxes:
            raise ValueError("QueryBatch.from_boxes requires at least one box")
        dims = boxes[0].dimensions
        for box in boxes:
            if box.dimensions != dims:
                raise ValueError(
                    f"all boxes must share one dimensionality; "
                    f"got {box.dimensions} after {dims}"
                )
        low = np.stack([box.low for box in boxes])
        high = np.stack([box.high for box in boxes])
        return cls(low, high)

    @classmethod
    def coerce(cls, queries: Union["QueryBatch", Box, Sequence[Box]]) -> "QueryBatch":
        """Accept a batch, a single box, or a box sequence uniformly."""
        if isinstance(queries, QueryBatch):
            return queries
        if isinstance(queries, Box):
            return cls.from_boxes([queries])
        return cls.from_boxes(queries)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.low.shape[0]

    @property
    def dimensions(self) -> int:
        return self.low.shape[1]

    def box(self, index: int) -> Box:
        """The ``index``-th query as a :class:`Box`."""
        return Box(self.low[index].copy(), self.high[index].copy())

    def __iter__(self) -> Iterator[Box]:
        for index in range(len(self)):
            yield self.box(index)

    def __getitem__(self, index) -> Union[Box, "QueryBatch"]:
        """Integer indexing yields a :class:`Box`, slicing a sub-batch."""
        if isinstance(index, slice):
            return QueryBatch(self.low[index].copy(), self.high[index].copy())
        return self.box(int(index))

    def widths(self) -> np.ndarray:
        """``(q, d)`` matrix of per-query side lengths."""
        return self.high - self.low

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryBatch):
            return NotImplemented
        return bool(
            np.array_equal(self.low, other.low)
            and np.array_equal(self.high, other.high)
        )

    def __hash__(self) -> int:
        return hash((self.low.tobytes(), self.high.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QueryBatch(q={len(self)}, d={self.dimensions})"


# A range query *is* a box; the alias exists so call sites can say what
# they mean ("the query region" vs "a bucket's bounding box").
RangeQuery = Box


def intersect(a: Box, b: Box) -> Optional[Box]:
    """Module-level convenience wrapper around :meth:`Box.intersect`."""
    return a.intersect(b)


def union_bounds(boxes: Iterable[Box]) -> Box:
    """Tightest box containing every box in ``boxes``."""
    boxes = list(boxes)
    if not boxes:
        raise ValueError("union_bounds requires at least one box")
    low = np.min([b.low for b in boxes], axis=0)
    high = np.max([b.high for b in boxes], axis=0)
    return Box(low, high)
