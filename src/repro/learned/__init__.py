"""Learned selectivity-estimator baselines (numpy-only compact versions).

The §6 evaluation compares the paper's KDE against its contemporaries
(STHoles, AVI, sampling).  This package adds the two deep-learning
baselines the field moved to afterwards, reduced to framework-free,
memory-budgeted forms that plug into the same
:class:`~repro.baselines.base.SelectivityEstimator` protocol:

* :class:`NaruEstimator` — an *unsupervised* discretized autoregressive
  chain trained by maximum likelihood on the ANALYZE sample, answering
  range queries by progressive sampling (à la "Deep Unsupervised
  Cardinality Estimation", Yang et al.).
* :class:`MSCNRegressor` — a *supervised* featurized query→selectivity
  MLP trained online from executed-query feedback (à la
  "Multi-Attribute Selectivity Estimation Using Deep Learning", Hasan
  et al.), exercising the batched ``feedback_many`` protocol.

Both honour the §6.2 memory budget via ``memory_bytes()`` and are
registered with :func:`repro.create_estimator` as ``kind="naru"`` and
``kind="mscn"``.
"""

from .mscn import MSCNRegressor, mscn_hidden_budget
from .naru import NaruEstimator, naru_bin_budget

__all__ = [
    "MSCNRegressor",
    "NaruEstimator",
    "mscn_hidden_budget",
    "naru_bin_budget",
]
