"""Hasan-style learned query→selectivity regressor (compact, numpy-only).

"Multi-Attribute Selectivity Estimation Using Deep Learning" (Hasan et
al., PAPERS.md) — and the MSCN line of work it builds on — treats
selectivity estimation as *supervised regression*: featurize the query's
per-attribute range predicates, train a small neural network on executed
queries with their observed selectivities, predict for new queries.

:class:`MSCNRegressor` reproduces that recipe without a deep-learning
framework: a one-hidden-layer tanh MLP over normalized ``(lo, hi,
width)`` predicate features, trained online — every :meth:`feedback` is
one RMSprop step, every :meth:`feedback_many` one mini-batch step — so
it exercises the repo's batched feedback protocol end to end.  The
regression runs in *logit space* (squared error between predicted and
true log-odds), which gives multiplicative-error-like training pressure
across the many orders of magnitude selectivities span, exactly the
motivation for the Q-error metric the replay bench reports.

Unlike the sample-trained baselines the model starts blind: before the
first feedback it predicts its prior.  What it buys in exchange is
drift-tracking — the workload *is* the training set, so a shifting log
re-trains it for free.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from ..geometry import Box
from ..baselines.base import (
    FLOAT_BYTES,
    SelectivityEstimator,
    memory_budget_bytes,
)

__all__ = ["MSCNRegressor", "mscn_hidden_budget"]

#: Features per dimension: normalized low, normalized high, width.
_FEATURES_PER_DIM = 3

#: Hidden-layer cap; past this the model stops being "compact".
_MAX_HIDDEN = 64

#: Selectivity clamp for the logit transform (half a row in a 100k
#: table); predictions and targets live in (eps, 1 - eps).
_EPS = 5e-6


def mscn_hidden_budget(dimensions: int, budget_bytes: int) -> int:
    """Hidden units whose parameters (plus RMSprop state) fit the budget.

    The model stores ``W1 (h, f)``, ``b1 (h,)``, ``w2 (h,)``, ``b2`` and
    one RMSprop accumulator per parameter, so the budget buys
    ``floats / 2`` parameters.
    """
    if dimensions < 1:
        raise ValueError("dimensions must be at least 1")
    if budget_bytes < 1:
        raise ValueError("budget_bytes must be positive")
    features = _FEATURES_PER_DIM * dimensions
    floats = budget_bytes // (2 * FLOAT_BYTES)  # params + RMSprop state
    hidden = (floats - 1 - 2 * dimensions) // (features + 2)
    return int(min(max(hidden, 2), _MAX_HIDDEN))


class MSCNRegressor(SelectivityEstimator):
    """Feedback-trained MLP regressor over featurized range queries.

    Parameters
    ----------
    bounds:
        Attribute-space box used to normalize predicate bounds into
        ``[0, 1]`` features.  Derived from ``sample`` when omitted.
    sample:
        Optional ``(s, d)`` sample, used only to derive ``bounds`` (the
        model never trains on data rows — its training set is the query
        feedback stream).
    hidden:
        Hidden-layer width; derived from ``budget_bytes`` when omitted.
    budget_bytes:
        Memory budget; the paper's ``d * 4 kB`` (Section 6.2) when
        omitted.
    learning_rate / decay:
        RMSprop step size and second-moment decay.
    epochs:
        Gradient passes :meth:`feedback_many` makes over each batch
        (single :meth:`feedback` calls always take one step).
    prior:
        Selectivity predicted before any training signal arrives.
    seed:
        Seed (int or :class:`numpy.random.SeedSequence`) for weight
        initialisation; identically seeded regressors trained on the
        same stream predict identically.
    """

    name = "MSCN"

    def __init__(
        self,
        bounds: Optional[Box] = None,
        sample: Optional[np.ndarray] = None,
        *,
        hidden: Optional[int] = None,
        budget_bytes: Optional[int] = None,
        learning_rate: float = 0.05,
        decay: float = 0.9,
        epochs: int = 4,
        prior: float = 0.05,
        seed: Union[None, int, np.random.SeedSequence] = 0,
    ) -> None:
        if bounds is None:
            if sample is None:
                raise ValueError("provide bounds= or a sample to derive them")
            sample = np.asarray(sample, dtype=np.float64)
            if sample.ndim != 2 or sample.shape[0] == 0:
                raise ValueError("sample must be a non-empty (s, d) array")
            bounds = Box.bounding(sample, margin=1e-9)
        if learning_rate <= 0.0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 < decay < 1.0:
            raise ValueError("decay must lie in (0, 1)")
        if epochs < 1:
            raise ValueError("epochs must be at least 1")
        if not 0.0 < prior < 1.0:
            raise ValueError("prior must lie in (0, 1)")
        self._bounds = bounds
        dimensions = bounds.dimensions
        widths = bounds.widths
        self._scale = np.where(widths > 0.0, widths, 1.0)
        budget = budget_bytes or memory_budget_bytes(dimensions)
        if hidden is None:
            hidden = mscn_hidden_budget(dimensions, budget)
        if hidden < 1:
            raise ValueError("hidden must be at least 1")
        features = _FEATURES_PER_DIM * dimensions
        if isinstance(seed, np.random.SeedSequence):
            rng = np.random.default_rng(seed)
        else:
            rng = np.random.default_rng(np.random.SeedSequence(seed))
        # Glorot-ish first layer; zero output weights so the untrained
        # model predicts exactly its prior (b2 = logit(prior)).
        self._w1 = rng.normal(
            scale=1.0 / np.sqrt(features), size=(hidden, features)
        )
        self._b1 = np.zeros(hidden)
        self._w2 = np.zeros(hidden)
        self._b2 = float(np.log(prior / (1.0 - prior)))
        self._learning_rate = float(learning_rate)
        self._decay = float(decay)
        self._epochs = int(epochs)
        # RMSprop second-moment accumulators, one per parameter tensor.
        self._v_w1 = np.zeros_like(self._w1)
        self._v_b1 = np.zeros_like(self._b1)
        self._v_w2 = np.zeros_like(self._w2)
        self._v_b2 = 0.0
        self._feedback_count = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def dimensions(self) -> int:
        return self._bounds.dimensions

    @property
    def hidden(self) -> int:
        return self._w1.shape[0]

    @property
    def feedback_count(self) -> int:
        """Queries whose true selectivity the model has trained on."""
        return self._feedback_count

    def memory_bytes(self) -> int:
        parameters = (
            self._w1.size + self._b1.size + self._w2.size + 1
        )
        return 2 * parameters * FLOAT_BYTES  # weights + RMSprop state

    # ------------------------------------------------------------------
    # Featurization and forward pass
    # ------------------------------------------------------------------
    def _featurize(self, low: np.ndarray, high: np.ndarray) -> np.ndarray:
        """``(q, 3d)`` feature matrix from ``(q, d)`` bound matrices."""
        lo = (low - self._bounds.low) / self._scale
        hi = (high - self._bounds.low) / self._scale
        lo = np.clip(lo, -1.0, 2.0)
        hi = np.clip(hi, -1.0, 2.0)
        return np.concatenate([lo, hi, hi - lo], axis=1)

    def _forward(self, features: np.ndarray):
        hidden = np.tanh(features @ self._w1.T + self._b1)
        logits = hidden @ self._w2 + self._b2
        return hidden, logits

    def estimate(self, query: Box) -> float:
        if query.dimensions != self.dimensions:
            raise ValueError(
                f"query has {query.dimensions} dimensions, "
                f"estimator has {self.dimensions}"
            )
        _, logits = self._forward(
            self._featurize(query.low[None, :], query.high[None, :])
        )
        return float(1.0 / (1.0 + np.exp(-logits[0])))

    def estimate_many(self, queries: Sequence[Box]) -> np.ndarray:
        queries = list(queries)
        if not queries:
            return np.empty(0, dtype=np.float64)
        low = np.stack([q.low for q in queries])
        high = np.stack([q.high for q in queries])
        if low.shape[1] != self.dimensions:
            raise ValueError(
                f"query batch has {low.shape[1]} dimensions, "
                f"estimator has {self.dimensions}"
            )
        _, logits = self._forward(self._featurize(low, high))
        return 1.0 / (1.0 + np.exp(-logits))

    # ------------------------------------------------------------------
    # Training: the feedback stream is the training set
    # ------------------------------------------------------------------
    def feedback(self, query: Box, true_selectivity: float) -> None:
        self.feedback_many([query], [true_selectivity])

    def feedback_many(
        self, queries: Sequence[Box], true_selectivities: Sequence[float]
    ) -> None:
        queries = list(queries)
        truths = np.asarray(list(true_selectivities), dtype=np.float64)
        if len(queries) != truths.shape[0]:
            raise ValueError(
                "need exactly one true selectivity per query, got "
                f"{len(queries)} queries and {truths.shape[0]} values"
            )
        if not queries:
            return
        if np.any(truths < 0.0) or np.any(truths > 1.0):
            raise ValueError("true selectivities must lie in [0, 1]")
        low = np.stack([q.low for q in queries])
        high = np.stack([q.high for q in queries])
        if low.shape[1] != self.dimensions:
            raise ValueError(
                f"query batch has {low.shape[1]} dimensions, "
                f"estimator has {self.dimensions}"
            )
        features = self._featurize(low, high)
        clamped = np.clip(truths, _EPS, 1.0 - _EPS)
        targets = np.log(clamped / (1.0 - clamped))
        epochs = self._epochs if len(queries) > 1 else 1
        for _ in range(epochs):
            self._step(features, targets)
        self._feedback_count += len(queries)

    def _step(self, features: np.ndarray, targets: np.ndarray) -> None:
        """One RMSprop step on mean squared logit error over the batch."""
        hidden, logits = self._forward(features)
        residual = (logits - targets) / features.shape[0]  # (q,)
        grad_w2 = hidden.T @ residual
        grad_b2 = float(residual.sum())
        back = residual[:, None] * self._w2[None, :] * (1.0 - hidden**2)
        grad_w1 = back.T @ features
        grad_b1 = back.sum(axis=0)

        rate, decay, eps = self._learning_rate, self._decay, 1e-8
        self._v_w1 = decay * self._v_w1 + (1.0 - decay) * grad_w1**2
        self._v_b1 = decay * self._v_b1 + (1.0 - decay) * grad_b1**2
        self._v_w2 = decay * self._v_w2 + (1.0 - decay) * grad_w2**2
        self._v_b2 = decay * self._v_b2 + (1.0 - decay) * grad_b2**2
        self._w1 -= rate * grad_w1 / (np.sqrt(self._v_w1) + eps)
        self._b1 -= rate * grad_b1 / (np.sqrt(self._v_b1) + eps)
        self._w2 -= rate * grad_w2 / (np.sqrt(self._v_w2) + eps)
        self._b2 -= rate * grad_b2 / (np.sqrt(self._v_b2) + eps)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MSCNRegressor(d={self.dimensions}, hidden={self.hidden}, "
            f"trained_on={self._feedback_count})"
        )
