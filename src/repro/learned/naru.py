"""Naru-style autoregressive density baseline (compact, numpy-only).

"Deep Unsupervised Cardinality Estimation" (Yang et al., PAPERS.md)
models the joint tuple distribution autoregressively —
``P(x) = prod_j P(x_j | x_{<j})`` — with a neural density estimator, and
answers range queries by *progressive sampling*: draw paths dimension by
dimension restricted to the query's per-dimension interval, accumulating
the in-range probability mass of each step.

:class:`NaruEstimator` is the budget-honest reproduction of that recipe
on this repo's substrate: each attribute is discretized into per-dimension
quantile bins, and the autoregressive conditionals are a *conditional
histogram chain* — ``P(bin_j | bin_{j-1})`` tables estimated by maximum
likelihood (bin-count ratios with Laplace smoothing) over the ANALYZE
sample.  The chain truncates the conditioning context to the previous
attribute, which is what makes the model fit the Section 6.2 memory
budget of ``d * 4 kB``: a full context is exponential, a neural context
needs a training loop and a framework this repo deliberately does not
depend on.  Range queries are answered exactly like Naru answers them —
vectorised progressive sampling over the factored model, with in-bucket
uniformity supplying the fractional mass of partially covered bins.

The estimator is *unsupervised*: it trains once on the sample and
ignores query feedback (the :meth:`feedback` hook validates and
discards, like the other static baselines).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from ..geometry import Box
from ..baselines.base import (
    FLOAT_BYTES,
    SelectivityEstimator,
    memory_budget_bytes,
)

__all__ = ["NaruEstimator", "naru_bin_budget"]

#: Hard cap on bins per dimension, regardless of budget: conditional
#: tables grow quadratically and past this point extra resolution stops
#: paying for itself on 1k-point samples.
_MAX_BINS = 64


def naru_bin_budget(dimensions: int, budget_bytes: int) -> int:
    """Bins per dimension a chain model may hold in ``budget_bytes``.

    The model stores one ``(B,)`` marginal, ``d - 1`` conditional
    ``(B, B)`` tables and ``d`` edge vectors of ``B + 1`` floats, so the
    dominant term is ``(d - 1) * B^2`` and the budget solves a quadratic.
    """
    if dimensions < 1:
        raise ValueError("dimensions must be at least 1")
    if budget_bytes < 1:
        raise ValueError("budget_bytes must be positive")
    floats = budget_bytes // FLOAT_BYTES
    best = 2
    for bins in range(2, _MAX_BINS + 1):
        needed = (
            bins  # marginal
            + (dimensions - 1) * bins * bins  # conditionals
            + dimensions * (bins + 1)  # edges
        )
        if needed <= floats:
            best = bins
        else:
            break
    return best


class NaruEstimator(SelectivityEstimator):
    """Discretized autoregressive chain answering ranges by progressive sampling.

    Parameters
    ----------
    sample:
        ``(s, d)`` random sample of the relation (the ANALYZE sample all
        KDE variants share).
    bins:
        Bins per dimension; derived from ``budget_bytes`` when omitted.
    budget_bytes:
        Memory budget the model must fit; the paper's ``d * 4 kB``
        (Section 6.2) when omitted.
    paths:
        Progressive-sampling paths per query.  More paths cut estimator
        variance at linear cost; 64 keeps the per-query noise well under
        the chain's own modelling error.
    smoothing:
        Laplace pseudo-count added to every (conditional) bin, keeping
        unseen transitions at small-but-nonzero mass.
    seed:
        Seed (int or :class:`numpy.random.SeedSequence`) for the
        progressive-sampling RNG; a freshly built estimator replays a
        query sequence deterministically.
    """

    name = "Naru"

    def __init__(
        self,
        sample: np.ndarray,
        bins: Optional[int] = None,
        *,
        budget_bytes: Optional[int] = None,
        paths: int = 64,
        smoothing: float = 1.0,
        seed: Union[None, int, np.random.SeedSequence] = 0,
    ) -> None:
        sample = np.asarray(sample, dtype=np.float64)
        if sample.ndim != 2 or sample.shape[0] == 0:
            raise ValueError("sample must be a non-empty (s, d) array")
        if paths < 1:
            raise ValueError("paths must be at least 1")
        if smoothing < 0.0:
            raise ValueError("smoothing must be non-negative")
        dimensions = sample.shape[1]
        budget = budget_bytes or memory_budget_bytes(dimensions)
        if bins is None:
            bins = naru_bin_budget(dimensions, budget)
        if bins < 2:
            raise ValueError("bins must be at least 2")
        self._paths = int(paths)
        # Kept as a SeedSequence (not a Generator): every estimate()
        # spawns a fresh generator from it, so estimates are
        # deterministic functions of the query — the same query always
        # draws the same sampling paths, batched evaluation matches the
        # looped one bit-for-bit, and queries share common random
        # numbers (a variance-reduction freebie).
        if isinstance(seed, np.random.SeedSequence):
            self._seed_sequence = seed
        else:
            self._seed_sequence = np.random.SeedSequence(seed)

        # -- discretization: per-dimension quantile (equi-depth) edges.
        self._edges: List[np.ndarray] = []
        codes = np.empty(sample.shape, dtype=np.intp)
        for j in range(dimensions):
            edges = np.unique(
                np.quantile(sample[:, j], np.linspace(0.0, 1.0, bins + 1))
            )
            if edges.size < 2:
                # Constant column: one zero-width bin.  The degenerate
                # branch of :meth:`_range_fractions` scores it 1 when
                # the constant lies in range and 0 otherwise — an
                # artificial positive width would wrongly prorate the
                # mass over span the data never occupies.
                edges = np.array([edges[0], edges[0]])
            self._edges.append(edges)
            codes[:, j] = np.clip(
                np.searchsorted(edges, sample[:, j], side="right") - 1,
                0,
                edges.size - 2,
            )

        # -- maximum-likelihood chain factors with Laplace smoothing.
        counts0 = np.bincount(codes[:, 0], minlength=self._bins(0)).astype(
            np.float64
        )
        counts0 += smoothing
        self._marginal = counts0 / counts0.sum()
        self._conditionals: List[np.ndarray] = []
        for j in range(1, dimensions):
            prev_bins, cur_bins = self._bins(j - 1), self._bins(j)
            joint = np.zeros((prev_bins, cur_bins), dtype=np.float64)
            np.add.at(joint, (codes[:, j - 1], codes[:, j]), 1.0)
            joint += smoothing
            self._conditionals.append(joint / joint.sum(axis=1, keepdims=True))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _bins(self, dim: int) -> int:
        return self._edges[dim].size - 1

    @property
    def dimensions(self) -> int:
        return len(self._edges)

    @property
    def paths(self) -> int:
        return self._paths

    def bin_counts(self) -> List[int]:
        """Actual bins per dimension (quantile dedup may shrink some)."""
        return [self._bins(j) for j in range(self.dimensions)]

    def memory_bytes(self) -> int:
        floats = self._marginal.size
        floats += sum(table.size for table in self._conditionals)
        floats += sum(edges.size for edges in self._edges)
        return floats * FLOAT_BYTES

    # ------------------------------------------------------------------
    # Estimation: progressive sampling over the chain
    # ------------------------------------------------------------------
    def _range_fractions(self, dim: int, low: float, high: float) -> np.ndarray:
        """In-range fraction of every bin of ``dim`` under in-bin uniformity."""
        edges = self._edges[dim]
        left, right = edges[:-1], edges[1:]
        widths = right - left
        overlap = np.minimum(high, right) - np.maximum(low, left)
        with np.errstate(divide="ignore", invalid="ignore"):
            fractions = np.where(widths > 0.0, overlap / widths, 0.0)
        # Zero-width (duplicate-value) bins: inside iff the point is in range.
        degenerate = widths <= 0.0
        if np.any(degenerate):
            fractions = np.where(
                degenerate, ((left >= low) & (left <= high)).astype(float),
                fractions,
            )
        return np.clip(fractions, 0.0, 1.0)

    def estimate(self, query: Box) -> float:
        if query.dimensions != self.dimensions:
            raise ValueError(
                f"query has {query.dimensions} dimensions, "
                f"estimator has {self.dimensions}"
            )
        # Step 0 is exact: the first factor has no conditioning context.
        weights = self._marginal * self._range_fractions(
            0, float(query.low[0]), float(query.high[0])
        )
        step_mass = float(weights.sum())
        if step_mass <= 0.0:
            return 0.0
        mass = np.full(self._paths, step_mass)
        rng = np.random.default_rng(self._seed_sequence)
        current = self._sample_rows(
            weights[None, :] / step_mass, self._paths, rng
        )
        for j in range(1, self.dimensions):
            fractions = self._range_fractions(
                j, float(query.low[j]), float(query.high[j])
            )
            conditional = self._conditionals[j - 1][current]  # (paths, B_j)
            weights = conditional * fractions[None, :]
            step = weights.sum(axis=1)
            mass *= step
            if j == self.dimensions - 1:
                break
            alive = step > 0.0
            if not np.any(alive):
                break
            probabilities = np.zeros_like(weights)
            probabilities[alive] = weights[alive] / step[alive, None]
            # Dead paths carry zero mass; park them in bin 0.
            probabilities[~alive, 0] = 1.0
            current = self._sample_rows(probabilities, self._paths, rng)
        return float(min(max(mass.mean(), 0.0), 1.0))

    def _sample_rows(
        self,
        probabilities: np.ndarray,
        count: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """One categorical draw per row of ``probabilities`` (vectorised).

        Rows either all share one distribution (shape ``(1, B)``) or carry
        one distribution each (shape ``(count, B)``).
        """
        cumulative = np.cumsum(probabilities, axis=1)
        cumulative[:, -1] = 1.0  # guard rounding at the top end
        draws = rng.random(count)
        if probabilities.shape[0] == 1:
            return np.searchsorted(cumulative[0], draws, side="right").clip(
                0, probabilities.shape[1] - 1
            )
        chosen = (draws[:, None] >= cumulative).sum(axis=1)
        return np.clip(chosen, 0, probabilities.shape[1] - 1)

    def feedback(self, query: Box, true_selectivity: float) -> None:
        """Validate-and-discard: the model is unsupervised (data-trained)."""
        if not 0.0 <= true_selectivity <= 1.0:
            raise ValueError("true selectivity must lie in [0, 1]")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NaruEstimator(d={self.dimensions}, bins={self.bin_counts()}, "
            f"paths={self._paths})"
        )
