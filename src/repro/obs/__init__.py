"""``repro.obs`` — the observability layer (metrics, spans, traces).

One instrumentation layer that every component reports into:

* :class:`MetricsRegistry` — counters, gauges, fixed log-bucket
  histograms and timers; process-wide by default, injectable everywhere
  (``metrics=`` knobs), and a zero-overhead :class:`NullRegistry` when
  disabled.
* :func:`span` — lightweight nestable tracing with thread-local context
  and picklable :class:`SpanContext` propagation into sharded workers.
* :class:`EstimationTrace` — the structured per-query record (predicted
  vs. true selectivity, loss, model epochs, backend, cache counters,
  per-shard / per-device-kernel seconds).
* :func:`export_metrics` — the one exporter front door (JSON with an
  embedded per-device profile section, or Prometheus text format);
  :func:`to_json` / :func:`to_prometheus` are its underlying renderers.

Enable with :func:`enable_metrics`; everything instrumented picks the
live registry up on its next operation::

    from repro import obs
    registry = obs.enable_metrics()
    ...  # run queries
    print(obs.export_metrics(registry, format="prometheus"))
"""

from .export import (
    device_profile,
    dump_json,
    export_metrics,
    to_json,
    to_prometheus,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Timer,
    disable_metrics,
    enable_metrics,
    get_registry,
    metrics_enabled,
    set_registry,
)
from .spans import Span, SpanContext, current_span_context, span
from .trace import EstimationTrace, TraceLog

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "EstimationTrace",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "Span",
    "SpanContext",
    "Timer",
    "TraceLog",
    "current_span_context",
    "device_profile",
    "disable_metrics",
    "dump_json",
    "enable_metrics",
    "export_metrics",
    "get_registry",
    "metrics_enabled",
    "set_registry",
    "span",
    "to_json",
    "to_prometheus",
]
