"""Exporters: JSON dump and Prometheus text exposition format.

Both render a :class:`~repro.obs.metrics.MetricsRegistry` snapshot —
JSON for offline analysis (the bench CLI's ``--metrics-json``) and the
Prometheus `text format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ for
scraping a long-lived serving process.
"""

from __future__ import annotations

import json
import re
from typing import Dict, Optional

from .metrics import MetricsRegistry

__all__ = ["to_json", "dump_json", "to_prometheus"]


def to_json(registry: MetricsRegistry, indent: Optional[int] = 2) -> str:
    """The registry snapshot as a JSON document."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=False)


def dump_json(
    registry: MetricsRegistry, path: str, indent: Optional[int] = 2
) -> str:
    """Write the JSON snapshot to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_json(registry, indent=indent))
        handle.write("\n")
    return path


_NAME_SANITISER = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    sanitised = _NAME_SANITISER.sub("_", name)
    return sanitised if not sanitised[:1].isdigit() else f"_{sanitised}"


def _prom_labels(labels, extra: Optional[Dict[str, str]] = None) -> str:
    pairs = list(labels) + sorted((extra or {}).items())
    if not pairs:
        return ""
    rendered = ",".join(
        '{}="{}"'.format(_prom_name(k), str(v).replace('"', '\\"'))
        for k, v in pairs
    )
    return f"{{{rendered}}}"


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render counters, gauges and histograms in the text format.

    Spans are exposed as ``span_seconds_total`` / ``span_count`` pairs
    labelled by path; traces are a log, not a metric, and are omitted
    (export them with :func:`to_json`).
    """
    lines = []
    seen_types: Dict[str, str] = {}

    def _type_line(name: str, kind: str) -> None:
        if seen_types.get(name) != kind:
            seen_types[name] = kind
            lines.append(f"# TYPE {name} {kind}")

    for counter in sorted(
        registry.iter_counters(), key=lambda c: (c.name, c.labels)
    ):
        name = _prom_name(counter.name)
        _type_line(name, "counter")
        lines.append(f"{name}{_prom_labels(counter.labels)} {counter.value:g}")

    for gauge in sorted(
        registry.iter_gauges(), key=lambda g: (g.name, g.labels)
    ):
        name = _prom_name(gauge.name)
        _type_line(name, "gauge")
        lines.append(f"{name}{_prom_labels(gauge.labels)} {gauge.value:g}")

    for histogram in sorted(
        registry.iter_histograms(), key=lambda h: (h.name, h.labels)
    ):
        name = _prom_name(histogram.name)
        _type_line(name, "histogram")
        cumulative = 0
        for index, bucket_count in enumerate(histogram.bucket_counts):
            cumulative += bucket_count
            bound = (
                "+Inf"
                if index == len(histogram.bounds)
                else f"{histogram.bounds[index]:g}"
            )
            labels = _prom_labels(histogram.labels, {"le": bound})
            lines.append(f"{name}_bucket{labels} {cumulative}")
        lines.append(
            f"{name}_sum{_prom_labels(histogram.labels)} {histogram.sum:g}"
        )
        lines.append(
            f"{name}_count{_prom_labels(histogram.labels)} {histogram.count}"
        )

    for key, entry in registry.span_summary().items():
        labels = {"path": key}
        _type_line("span_seconds_total", "counter")
        lines.append(
            "span_seconds_total"
            + _prom_labels((), labels)
            + f" {entry['seconds']:g}"
        )
        _type_line("span_count", "counter")
        lines.append(
            "span_count" + _prom_labels((), labels) + f" {entry['count']:g}"
        )

    return "\n".join(lines) + ("\n" if lines else "")
