"""Exporters: one front door (:func:`export_metrics`) over two formats.

:func:`export_metrics` is the canonical way to get metrics out of the
process — JSON for offline analysis (the bench CLI's ``--metrics-json``)
or the Prometheus `text format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ for
scraping a long-lived serving process.  The JSON payload is the registry
snapshot plus a ``"devices"`` section (per-device
:func:`device_profile`), so the forecast taps and bench reporting read
everything — serving counters, breaker state, device time split — from
one document instead of stitching three ad-hoc surfaces together.

:func:`to_json` / :func:`to_prometheus` remain as the underlying
renderers; :func:`dump_json` is a deprecated alias for
``export_metrics(..., path=...)``.
"""

from __future__ import annotations

import json
import re
import warnings
from typing import Dict, List, Optional

from .metrics import MetricsRegistry, get_registry

__all__ = [
    "device_profile",
    "dump_json",
    "export_metrics",
    "to_json",
    "to_prometheus",
]

#: Single-shot flag for the ``dump_json`` deprecation shim.
_warned_dump_json = False


def to_json(registry: MetricsRegistry, indent: Optional[int] = 2) -> str:
    """The registry snapshot as a JSON document."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=False)


def dump_json(
    registry: MetricsRegistry, path: str, indent: Optional[int] = 2
) -> str:
    """Deprecated: use ``export_metrics(registry, path=path)`` instead.

    Kept as a thin shim (warns once per process) because it predates the
    unified exporter; note it returns the *path* where
    :func:`export_metrics` returns the rendered document.
    """
    global _warned_dump_json
    if not _warned_dump_json:
        _warned_dump_json = True
        warnings.warn(
            "dump_json is deprecated; use "
            'export_metrics(registry, format="json", path=path)',
            DeprecationWarning,
            stacklevel=2,
        )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_json(registry, indent=indent))
        handle.write("\n")
    return path


def _device_names(registry: MetricsRegistry) -> List[str]:
    """Devices that metered anything into ``registry``, sorted."""
    names = set()
    for histogram in registry.iter_histograms():
        if histogram.name in (
            "device.kernel.seconds",
            "device.transfer.seconds",
        ):
            device = dict(histogram.labels).get("device")
            if device:
                names.add(device)
    return sorted(names)


def device_profile(
    registry: MetricsRegistry, device: str
) -> Dict[str, object]:
    """Where one device's modelled time went — a view over ``registry``.

    Returns a dict with one entry per kernel (launch count + total
    modelled seconds), per-direction transfer totals (bytes + seconds),
    and the aggregate split between compute and transfer time, all read
    back from the ``device.kernel.seconds`` / ``device.transfer.*``
    aggregates labelled ``device=<device>``.
    :meth:`~repro.device.runtime.DeviceContext.profile` is a thin
    wrapper over this for the context's own registry and device name.
    """
    kernels: Dict[str, Dict[str, float]] = {}
    transfers: Dict[str, Dict[str, float]] = {
        direction: {"count": 0, "bytes": 0, "seconds": 0.0}
        for direction in ("to_device", "to_host")
    }
    for histogram in registry.iter_histograms():
        labels = dict(histogram.labels)
        if labels.get("device") != device:
            continue
        if histogram.name == "device.kernel.seconds":
            kernels[labels["kernel"]] = {
                "launches": histogram.count,
                "seconds": histogram.sum,
            }
        elif histogram.name == "device.transfer.seconds":
            entry = transfers.get(labels.get("direction"))
            if entry is not None:
                entry["count"] = histogram.count
                entry["seconds"] = histogram.sum
    for direction, entry in transfers.items():
        entry["bytes"] = int(
            registry.counter_value(
                "device.transfer.bytes",
                {"device": device, "direction": direction},
            )
        )
    kernel_total = sum(entry["seconds"] for entry in kernels.values())
    transfer_total = sum(entry["seconds"] for entry in transfers.values())
    return {
        "device": device,
        "kernels": kernels,
        "transfers": transfers,
        "kernel_seconds": kernel_total,
        "transfer_seconds": transfer_total,
        "total_seconds": kernel_total + transfer_total,
    }


def export_metrics(
    registry: Optional[MetricsRegistry] = None,
    format: str = "json",
    *,
    path: Optional[str] = None,
    indent: Optional[int] = 2,
) -> str:
    """Render every metric surface of ``registry`` in one document.

    Parameters
    ----------
    registry:
        Registry to export; ``None`` uses the process-wide one.
    format:
        ``"json"`` — the registry snapshot (counters, gauges,
        histograms, spans, traces) plus a ``"devices"`` section with one
        :func:`device_profile` per device that metered work; or
        ``"prometheus"`` — the text exposition format (device metrics
        appear as their underlying histograms/counters there).
    path:
        When given, the rendered document is also written to this file
        (with a trailing newline).
    indent:
        JSON indentation (ignored for Prometheus).

    Returns the rendered document.
    """
    if registry is None:
        registry = get_registry()
    if format == "json":
        payload = registry.snapshot()
        payload["devices"] = {
            device: device_profile(registry, device)
            for device in _device_names(registry)
        }
        rendered = json.dumps(payload, indent=indent, sort_keys=False)
    elif format == "prometheus":
        rendered = to_prometheus(registry)
    else:
        raise ValueError(
            f'format must be "json" or "prometheus", got {format!r}'
        )
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(rendered)
            if not rendered.endswith("\n"):
                handle.write("\n")
    return rendered


_NAME_SANITISER = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    sanitised = _NAME_SANITISER.sub("_", name)
    return sanitised if not sanitised[:1].isdigit() else f"_{sanitised}"


def _prom_labels(labels, extra: Optional[Dict[str, str]] = None) -> str:
    pairs = list(labels) + sorted((extra or {}).items())
    if not pairs:
        return ""
    rendered = ",".join(
        '{}="{}"'.format(_prom_name(k), str(v).replace('"', '\\"'))
        for k, v in pairs
    )
    return f"{{{rendered}}}"


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render counters, gauges and histograms in the text format.

    Spans are exposed as ``span_seconds_total`` / ``span_count`` pairs
    labelled by path; traces are a log, not a metric, and are omitted
    (export them with :func:`to_json`).
    """
    lines = []
    seen_types: Dict[str, str] = {}

    def _type_line(name: str, kind: str) -> None:
        if seen_types.get(name) != kind:
            seen_types[name] = kind
            lines.append(f"# TYPE {name} {kind}")

    for counter in sorted(
        registry.iter_counters(), key=lambda c: (c.name, c.labels)
    ):
        name = _prom_name(counter.name)
        _type_line(name, "counter")
        lines.append(f"{name}{_prom_labels(counter.labels)} {counter.value:g}")

    for gauge in sorted(
        registry.iter_gauges(), key=lambda g: (g.name, g.labels)
    ):
        name = _prom_name(gauge.name)
        _type_line(name, "gauge")
        lines.append(f"{name}{_prom_labels(gauge.labels)} {gauge.value:g}")

    for histogram in sorted(
        registry.iter_histograms(), key=lambda h: (h.name, h.labels)
    ):
        name = _prom_name(histogram.name)
        _type_line(name, "histogram")
        cumulative = 0
        for index, bucket_count in enumerate(histogram.bucket_counts):
            cumulative += bucket_count
            bound = (
                "+Inf"
                if index == len(histogram.bounds)
                else f"{histogram.bounds[index]:g}"
            )
            labels = _prom_labels(histogram.labels, {"le": bound})
            lines.append(f"{name}_bucket{labels} {cumulative}")
        lines.append(
            f"{name}_sum{_prom_labels(histogram.labels)} {histogram.sum:g}"
        )
        lines.append(
            f"{name}_count{_prom_labels(histogram.labels)} {histogram.count}"
        )

    for key, entry in registry.span_summary().items():
        labels = {"path": key}
        _type_line("span_seconds_total", "counter")
        lines.append(
            "span_seconds_total"
            + _prom_labels((), labels)
            + f" {entry['seconds']:g}"
        )
        _type_line("span_count", "counter")
        lines.append(
            "span_count" + _prom_labels((), labels) + f" {entry['count']:g}"
        )

    return "\n".join(lines) + ("\n" if lines else "")
