"""Process-wide but injectable metrics: counters, gauges, histograms, timers.

The observability layer every component of the estimator reports into —
the same shape learned-estimator serving stacks use to monitor drift
(per-query error traces, cache effectiveness, modelled kernel time).
Design constraints, in order:

1. **Zero overhead when disabled.**  The default process registry is a
   :class:`NullRegistry` whose instruments are shared do-nothing
   singletons; hot paths pay one attribute read and one ``enabled``
   branch, and allocate nothing.
2. **Injectable.**  Every instrumented component takes a ``metrics=``
   knob; ``None`` defers to the process-wide registry *at call time*, so
   :func:`enable_metrics` flips instrumentation on for models that
   already exist.
3. **Fixed log-scale histogram buckets.**  Latencies span six orders of
   magnitude between a cache hit and a cold sharded evaluation; the
   default buckets form a geometric ladder so one layout serves every
   timer and exports cleanly to Prometheus.

Instruments are keyed on ``(name, labels)``; asking for the same pair
twice returns the same instrument, so callers never cache them unless
they are on a hot path.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Tuple

from .trace import EstimationTrace, TraceLog

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NullRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "set_registry",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
]

#: Fixed log-scale histogram buckets (seconds): a geometric ladder from
#: one microsecond to ~268 s with factor 4, plus the implicit +Inf
#: bucket.  Fixed so every exported histogram is mergeable.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(1e-6 * 4.0 ** i for i in range(15))

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Dict[str, str]]) -> _LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count (queries served, cache hits, ...)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: _LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """A value that can go up and down (cache size, pool width, ...)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: _LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Distribution over fixed log-scale buckets.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``; the final
    slot is the +Inf bucket.  Counts are cumulative only at export time
    (Prometheus semantics); internally each slot is independent.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "sum")

    def __init__(
        self,
        name: str,
        labels: _LabelKey = (),
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError("buckets must be strictly increasing")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class Timer:
    """Context manager observing elapsed wall seconds into a histogram."""

    __slots__ = ("histogram", "_started")

    def __init__(self, histogram: Histogram) -> None:
        self.histogram = histogram
        self._started = 0.0

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.histogram.observe(time.perf_counter() - self._started)
        return False


class _SpanAggregate:
    """Per-(path, labels) span accumulation (count + total seconds)."""

    __slots__ = ("count", "seconds")

    def __init__(self) -> None:
        self.count = 0
        self.seconds = 0.0


class MetricsRegistry:
    """Holds every instrument, span aggregate and estimation trace.

    One registry per logical scope: the process-wide default (see
    :func:`enable_metrics`), or injected per component (each
    :class:`~repro.device.runtime.DeviceContext` owns one so its
    ``profile()`` never mixes devices).
    """

    #: Hot paths branch on this; the null registry sets it ``False``.
    enabled: bool = True

    def __init__(self, trace_capacity: int = 4096) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, _LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, _LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, _LabelKey], Histogram] = {}
        self._spans: Dict[Tuple[str, _LabelKey], _SpanAggregate] = {}
        self.traces = TraceLog(capacity=trace_capacity)
        self._query_seq = 0

    # ------------------------------------------------------------------
    # Instrument accessors (get-or-create)
    # ------------------------------------------------------------------
    def counter(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> Counter:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(
                    key, Counter(name, key[1])
                )
        return instrument

    def gauge(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(key, Gauge(name, key[1]))
        return instrument

    def histogram(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    key, Histogram(name, key[1], buckets)
                )
        return instrument

    def timer(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> Timer:
        return Timer(self.histogram(name, labels))

    # ------------------------------------------------------------------
    # Spans & traces
    # ------------------------------------------------------------------
    def record_span(
        self,
        path: Tuple[str, ...],
        seconds: float,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        """Fold one finished span into the per-path aggregate."""
        key = ("/".join(path), _label_key(labels))
        aggregate = self._spans.get(key)
        if aggregate is None:
            with self._lock:
                aggregate = self._spans.setdefault(key, _SpanAggregate())
        aggregate.count += 1
        aggregate.seconds += seconds

    def span_summary(self) -> Dict[str, Dict[str, float]]:
        """``{path{labels}: {count, seconds}}`` over all finished spans."""
        return {
            _format_key(path, labels): {
                "count": agg.count,
                "seconds": agg.seconds,
            }
            for (path, labels), agg in sorted(self._spans.items())
        }

    def next_query_id(self) -> int:
        """Monotone per-registry query id for estimation traces."""
        with self._lock:
            self._query_seq += 1
            return self._query_seq

    def record_trace(self, trace: EstimationTrace) -> None:
        self.traces.append(trace)

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------
    def iter_counters(self) -> Iterator[Counter]:
        return iter(self._counters.values())

    def iter_gauges(self) -> Iterator[Gauge]:
        return iter(self._gauges.values())

    def iter_histograms(self) -> Iterator[Histogram]:
        return iter(self._histograms.values())

    def counter_value(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> float:
        """Current value of a counter (0 if it never incremented)."""
        instrument = self._counters.get((name, _label_key(labels)))
        return instrument.value if instrument is not None else 0.0

    def sum_counters(self, name: str) -> float:
        """Sum of a counter over all label sets (e.g. total cache hits)."""
        return sum(
            c.value for (n, _), c in self._counters.items() if n == name
        )

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict snapshot of everything (the JSON export payload)."""
        return {
            "counters": {
                _format_key(n, l): c.value
                for (n, l), c in sorted(self._counters.items())
            },
            "gauges": {
                _format_key(n, l): g.value
                for (n, l), g in sorted(self._gauges.items())
            },
            "histograms": {
                _format_key(n, l): {
                    "count": h.count,
                    "sum": h.sum,
                    "mean": h.mean,
                    "buckets": {
                        _bucket_label(h.bounds, i): count
                        for i, count in enumerate(h.bucket_counts)
                        if count
                    },
                }
                for (n, l), h in sorted(self._histograms.items())
            },
            "spans": self.span_summary(),
            "traces": [trace.as_dict() for trace in self.traces],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(counters={len(self._counters)}, "
            f"histograms={len(self._histograms)}, spans={len(self._spans)}, "
            f"traces={len(self.traces)})"
        )


def _format_key(name: str, labels: _LabelKey) -> str:
    if not labels:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{rendered}}}"


def _bucket_label(bounds: Tuple[float, ...], index: int) -> str:
    return "+Inf" if index == len(bounds) else f"{bounds[index]:.3g}"


# ----------------------------------------------------------------------
# The disabled registry: shared no-op singletons, zero allocation
# ----------------------------------------------------------------------
class _NullInstrument:
    """One object stands in for every disabled counter/gauge/histogram."""

    __slots__ = ()
    name = ""
    labels: _LabelKey = ()
    value = 0.0
    count = 0
    sum = 0.0
    mean = 0.0
    bounds: Tuple[float, ...] = ()
    bucket_counts: List[int] = []

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """The zero-overhead disabled registry (the process default).

    Every accessor returns the same inert singleton; nothing is stored,
    nothing is allocated, and :attr:`enabled` lets hot paths skip their
    instrumentation blocks entirely.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(trace_capacity=1)

    def counter(self, name, labels=None):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def gauge(self, name, labels=None):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def histogram(self, name, labels=None, buckets=DEFAULT_BUCKETS):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def timer(self, name, labels=None):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def record_span(self, path, seconds, labels=None) -> None:
        pass

    def record_trace(self, trace: EstimationTrace) -> None:
        pass


# ----------------------------------------------------------------------
# The process-wide registry
# ----------------------------------------------------------------------
_NULL_REGISTRY = NullRegistry()
_registry: MetricsRegistry = _NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The current process-wide registry (a no-op one when disabled)."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process-wide registry; returns it."""
    global _registry
    if not isinstance(registry, MetricsRegistry):
        raise TypeError(
            "registry must be a MetricsRegistry, "
            f"got {type(registry).__name__}"
        )
    _registry = registry
    return registry


def enable_metrics(
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Turn process-wide instrumentation on; returns the live registry.

    Components constructed *before* this call pick the new registry up on
    their next operation (they resolve ``metrics=None`` dynamically).
    """
    return set_registry(registry if registry is not None else MetricsRegistry())


def disable_metrics() -> None:
    """Restore the zero-overhead null registry."""
    global _registry
    _registry = _NULL_REGISTRY


def metrics_enabled() -> bool:
    return _registry.enabled
