"""Lightweight span-based tracing with context propagation.

A span times one named stage of the hot path::

    with span("estimate_batch", backend="cached"):
        with span("column_masses"):
            ...

Spans nest through a thread-local stack: the inner span's recorded path
is ``estimate_batch/column_masses``.  When the active registry is the
disabled null registry, :func:`span` returns a shared inert singleton —
no allocation, no clock read.

Cross-process propagation (the sharded backend) works by value, not by
ambient state: :func:`current_span_context` snapshots the active path
into a picklable :class:`SpanContext`, the host ships it to the worker
inside the shard payload, the worker times its work and returns a plain
``(path, seconds)`` record parented on that context, and the host folds
it into the registry.  Worker processes therefore never need a live
registry of their own.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .metrics import MetricsRegistry, get_registry

__all__ = ["Span", "SpanContext", "span", "current_span_context"]


_ACTIVE = threading.local()


def _stack():
    stack = getattr(_ACTIVE, "spans", None)
    if stack is None:
        stack = _ACTIVE.spans = []
    return stack


@dataclass(frozen=True)
class SpanContext:
    """Picklable snapshot of the active span path.

    Ships across process boundaries in the sharded backend's payload so
    worker-side timings re-attach under the host's span tree.
    """

    path: Tuple[str, ...] = ()

    def child(self, name: str) -> Tuple[str, ...]:
        """The path a child span of ``name`` would record under."""
        return self.path + (name,)


def current_span_context() -> SpanContext:
    """Snapshot of the calling thread's active span path (may be empty)."""
    stack = _stack()
    return SpanContext(path=stack[-1].path if stack else ())


class Span:
    """A live timed span; use via :func:`span`, not directly."""

    __slots__ = ("name", "registry", "labels", "path", "seconds", "_started")

    def __init__(
        self,
        name: str,
        registry: MetricsRegistry,
        labels: Optional[Dict[str, str]],
    ) -> None:
        self.name = name
        self.registry = registry
        self.labels = labels
        self.path: Tuple[str, ...] = ()
        self.seconds = 0.0
        self._started = 0.0

    def __enter__(self) -> "Span":
        stack = _stack()
        parent: Tuple[str, ...] = stack[-1].path if stack else ()
        self.path = parent + (self.name,)
        stack.append(self)
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.seconds = time.perf_counter() - self._started
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        else:  # pragma: no cover - exit out of order (generator misuse)
            try:
                stack.remove(self)
            except ValueError:
                pass
        self.registry.record_span(self.path, self.seconds, self.labels)
        return False


class _NullSpan:
    """Shared inert span for the disabled path."""

    __slots__ = ()
    name = ""
    path: Tuple[str, ...] = ()
    seconds = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def span(
    name: str,
    registry: Optional[MetricsRegistry] = None,
    **labels: str,
):
    """A context manager timing ``name`` under the active span path.

    ``registry=None`` resolves the process-wide registry at entry; when
    that registry is disabled the shared no-op span is returned.
    """
    registry = registry if registry is not None else get_registry()
    if not registry.enabled:
        return _NULL_SPAN
    return Span(name, registry, labels or None)
