"""Structured per-query estimation traces.

An :class:`EstimationTrace` is the unit record of the serving loop: one
query's predicted (and, once feedback arrived, true) selectivity plus
the model state it was answered from — the drift signal that learned
cardinality estimators log to detect staleness (cf. Yang et al. 2019).

Traces are append-only and bounded: :class:`TraceLog` keeps the most
recent ``capacity`` records so a long-lived serving process never grows
its trace memory without bound.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

__all__ = ["EstimationTrace", "TraceLog"]


@dataclass(frozen=True)
class EstimationTrace:
    """One per-query estimation record.

    ``actual`` and ``loss`` are ``None`` for estimate-only traces (no
    feedback yet); feedback-loop traces fill them in.  Cache counters are
    deltas attributable to this trace's evaluation, not running totals;
    ``shard_seconds`` holds per-shard worker wall seconds (sharded
    backend only) and ``device_kernel_seconds`` the per-kernel modelled
    seconds of a device evaluation (device layer only).

    ``timestamp`` is ``time.monotonic()`` at record construction: rate
    estimation over a trace window divides counts by the *timestamp*
    span, never by the record count (records are evicted by the log
    bound, so counts alone say nothing about elapsed time).

    ``query_low``/``query_high`` are the query box bounds when the
    emitter had them — the predicate-region signal the drift detectors
    in :mod:`repro.forecast` consume (centroid shift, volume drift).
    """

    query_id: int
    predicted: float
    backend: str
    actual: Optional[float] = None
    loss: Optional[float] = None
    bandwidth_epoch: int = 0
    sample_epoch: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    shard_seconds: Optional[Tuple[float, ...]] = None
    device_kernel_seconds: Optional[Dict[str, float]] = None
    stage: str = "estimate"
    #: Monotonic emission time; never compare against wall clocks.
    timestamp: float = field(default_factory=time.monotonic)
    query_low: Optional[Tuple[float, ...]] = None
    query_high: Optional[Tuple[float, ...]] = None

    @property
    def absolute_error(self) -> Optional[float]:
        if self.actual is None:
            return None
        return abs(self.predicted - self.actual)

    @property
    def query_center(self) -> Optional[Tuple[float, ...]]:
        """Per-dimension centroid of the query box (``None`` when unknown)."""
        if self.query_low is None or self.query_high is None:
            return None
        return tuple(
            (lo + hi) / 2.0
            for lo, hi in zip(self.query_low, self.query_high)
        )

    @property
    def query_volume(self) -> Optional[float]:
        """Volume of the query box (``None`` when bounds are unknown)."""
        if self.query_low is None or self.query_high is None:
            return None
        volume = 1.0
        for lo, hi in zip(self.query_low, self.query_high):
            volume *= max(0.0, hi - lo)
        return volume

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready dict (drops ``None`` optionals for compactness)."""
        record: Dict[str, object] = {
            "query_id": self.query_id,
            "stage": self.stage,
            "timestamp": self.timestamp,
            "predicted": self.predicted,
            "backend": self.backend,
            "bandwidth_epoch": self.bandwidth_epoch,
            "sample_epoch": self.sample_epoch,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }
        if self.query_low is not None and self.query_high is not None:
            record["query_low"] = list(self.query_low)
            record["query_high"] = list(self.query_high)
        if self.actual is not None:
            record["actual"] = self.actual
            record["absolute_error"] = self.absolute_error
        if self.loss is not None:
            record["loss"] = self.loss
        if self.shard_seconds is not None:
            record["shard_seconds"] = list(self.shard_seconds)
        if self.device_kernel_seconds is not None:
            record["device_kernel_seconds"] = dict(self.device_kernel_seconds)
        return record


@dataclass
class TraceLog:
    """Bounded append-only log of the most recent estimation traces."""

    capacity: int = 4096
    _records: deque = field(init=False, repr=False)
    #: Total traces ever appended (including ones evicted by the bound).
    total: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("trace capacity must be at least 1")
        self._records = deque(maxlen=self.capacity)

    def append(self, trace: EstimationTrace) -> None:
        self._records.append(trace)
        self.total += 1

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[EstimationTrace]:
        return iter(self._records)

    def __getitem__(self, index) -> EstimationTrace:
        return list(self._records)[index]

    def last(self) -> Optional[EstimationTrace]:
        return self._records[-1] if self._records else None

    def clear(self) -> None:
        self._records.clear()
