"""Snapshot-isolated serving, model registry, and crash-safe checkpoints.

This package is the runtime home of the state/engine split: estimators
mutate under feedback (Sections 5.2 and 5.4 of the paper) while readers
are served immutable :class:`~repro.core.state.ModelState` snapshots
published per completed epoch.

* :class:`SnapshotServer` — read-copy-update publication; lock-free reads.
* :class:`ModelRegistry` — thread-safe ``(table, columns)`` → server map.
* :class:`CheckpointManager` — periodic atomic checkpoints, last-K
  retention, corrupt-skipping warm start.
* :class:`EstimatorFrontend` — asyncio micro-batching front end:
  admission queues coalescing concurrent single-query requests into one
  batched evaluation per model, load shedding (:class:`Overloaded`),
  and a watchdog degrading to stale-snapshot serving.
"""

from .checkpoint import CheckpointManager
from .frontend import (
    EstimatorFrontend,
    FrontendConfig,
    FrontendSession,
    LaneStats,
    Overloaded,
)
from .registry import ModelRegistry
from .server import PublishedSnapshot, SnapshotServer

__all__ = [
    "CheckpointManager",
    "EstimatorFrontend",
    "FrontendConfig",
    "FrontendSession",
    "LaneStats",
    "ModelRegistry",
    "Overloaded",
    "PublishedSnapshot",
    "SnapshotServer",
]
