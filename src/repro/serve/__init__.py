"""Snapshot-isolated serving, model registry, and crash-safe checkpoints.

This package is the runtime home of the state/engine split: estimators
mutate under feedback (Sections 5.2 and 5.4 of the paper) while readers
are served immutable :class:`~repro.core.state.ModelState` snapshots
published per completed epoch.

* :class:`ModelKey` / :class:`JoinEdge` — canonical join-signature
  model identity: single-table column sets, PK-FK join samples, and
  theta-join pairs (``repro.serve.keys``).
* :class:`SnapshotServer` — read-copy-update publication; lock-free reads.
* :class:`ModelRegistry` — thread-safe ``ModelKey`` → server map
  (legacy ``(table, columns)`` spellings coerce).
* :class:`CheckpointManager` — periodic atomic checkpoints, last-K
  retention, corrupt-skipping warm start; key-namespaced directories.
* :class:`EstimatorFrontend` — asyncio micro-batching front end:
  admission queues coalescing concurrent single-query requests into one
  batched evaluation per model, load shedding (:class:`Overloaded`),
  a watchdog degrading to stale-snapshot serving, and the plan-level
  :meth:`~EstimatorFrontend.plan_cardinalities` entry point.
"""

from .checkpoint import CheckpointManager
from .frontend import (
    EstimatorFrontend,
    FrontendConfig,
    FrontendSession,
    LaneStats,
    Overloaded,
    PlanEstimate,
)
from .keys import JoinEdge, ModelKey
from .registry import ModelRegistry
from .server import PublishedSnapshot, SnapshotServer

__all__ = [
    "CheckpointManager",
    "EstimatorFrontend",
    "FrontendConfig",
    "FrontendSession",
    "JoinEdge",
    "LaneStats",
    "ModelKey",
    "ModelRegistry",
    "Overloaded",
    "PlanEstimate",
    "PublishedSnapshot",
    "SnapshotServer",
]
