"""Crash-safe periodic checkpointing of served model state.

A self-tuning model is only as good as the feedback it has absorbed;
losing the process loses the tuned bandwidths and the maintained sample.
:class:`CheckpointManager` persists :class:`~repro.core.state.ModelState`
snapshots on a feedback-count cadence and warm-starts from the newest
readable checkpoint on startup.

Durability properties, all inherited from :meth:`ModelState.save`:

* writes are atomic (tmp file + ``fsync`` + ``os.replace``) — a crash
  mid-write leaves the previous checkpoint intact;
* loads are checksum-verified — a torn or bit-rotted file is rejected
  with :class:`~repro.core.state.CheckpointError`, and
  :meth:`warm_start` silently falls back to the next-newest file;
* retention keeps only the last *K* checkpoints so the directory stays
  bounded.
"""

from __future__ import annotations

import os
import re
import time
import warnings
from typing import List, Optional, Protocol, Tuple, runtime_checkable

from ..core.state import CheckpointError, ModelState
from ..faults.injector import FaultInjector
from ..obs import MetricsRegistry, get_registry
from .keys import ModelKey

__all__ = ["CheckpointManager", "Checkpointable"]

_CHECKPOINT_RE = re.compile(r"^model-(\d{8})\.ckpt$")


@runtime_checkable
class Checkpointable(Protocol):
    """Anything with snapshot()/restore() — a model or a SnapshotServer."""

    def snapshot(self) -> ModelState: ...

    def restore(self, state: ModelState) -> None: ...


class CheckpointManager:
    """Periodic checkpoints with last-K retention and warm start.

    Parameters
    ----------
    target:
        Object whose state is persisted — any estimator family or a
        :class:`~repro.serve.server.SnapshotServer` (whose ``snapshot``
        takes the writer lock, so checkpoints are always whole-epoch).
    directory:
        Checkpoint directory; created if missing.
    keep_last:
        Retention: number of most recent checkpoints to keep.
    every_feedbacks:
        Cadence for :meth:`maybe_checkpoint`.  When the target exposes a
        ``feedback_count`` (SnapshotServer does) a checkpoint is cut once
        that many *new* feedbacks accumulated; otherwise every
        ``every_feedbacks``-th call triggers one.
    metrics:
        Metrics registry; defaults to the process-global one.
    faults:
        Optional :class:`~repro.faults.injector.FaultInjector`;
        ``("checkpoint", "torn")`` specs truncate the just-written file
        mid-payload, simulating a crash between ``os.replace`` and the
        data reaching disk on a filesystem that reorders the two.  The
        checksum layer must then reject the file on load.
    key:
        Optional model identity — a :class:`~repro.serve.keys.ModelKey`
        or a legacy ``(table, columns)`` pair.  When given, checkpoints
        live under ``directory/<key.slug>/`` so one checkpoint root can
        hold every served model (single-table and join-signature alike)
        without filename collisions.  When the target is a
        :class:`~repro.serve.server.SnapshotServer` that already carries
        a key, that key is used automatically.
    """

    def __init__(
        self,
        target: Checkpointable,
        directory: str,
        *,
        keep_last: int = 3,
        every_feedbacks: int = 100,
        metrics: Optional[MetricsRegistry] = None,
        faults: Optional[FaultInjector] = None,
        key=None,
    ) -> None:
        if keep_last < 1:
            raise ValueError("keep_last must be at least 1")
        if every_feedbacks < 1:
            raise ValueError("every_feedbacks must be at least 1")
        if not hasattr(target, "snapshot") or not hasattr(target, "restore"):
            raise TypeError(
                "target must expose snapshot() and restore(); got "
                f"{type(target).__name__}"
            )
        if key is None:
            key = getattr(target, "key", None)
        if key is not None:
            key = ModelKey.coerce(key)
            directory = os.path.join(directory, key.slug)
        self._key: Optional[ModelKey] = key
        self._target = target
        self._directory = directory
        self._keep_last = keep_last
        self._every_feedbacks = every_feedbacks
        self._metrics = metrics
        self._faults = faults
        self._calls_since_checkpoint = 0
        self._last_feedback_count: Optional[int] = None
        os.makedirs(directory, exist_ok=True)
        self._next_index = 1 + max(
            (index for index, _ in self._scan()), default=0
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def directory(self) -> str:
        """The effective directory (key-namespaced when a key is bound)."""
        return self._directory

    @property
    def key(self) -> Optional[ModelKey]:
        """The model identity namespacing this manager, or ``None``.

        A warm start of a *fresh* target must name the same identity
        (pass ``key=`` or restore through a keyed server) to find the
        files a keyed manager wrote.
        """
        return self._key

    def checkpoints(self) -> List[str]:
        """Existing checkpoint paths, oldest first."""
        return [path for _, path in self._scan()]

    def latest(self) -> Optional[str]:
        """Newest checkpoint path, or ``None`` when the directory is empty."""
        paths = self.checkpoints()
        return paths[-1] if paths else None

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def checkpoint(self) -> str:
        """Snapshot the target, persist it atomically, prune old files."""
        registry = self._registry()
        started = time.perf_counter()
        state = self._target.snapshot()
        path = os.path.join(
            self._directory, f"model-{self._next_index:08d}.ckpt"
        )
        state.save(path)
        self._maybe_tear(path)
        self._next_index += 1
        self._calls_since_checkpoint = 0
        self._last_feedback_count = self._feedback_count()
        self._prune()
        registry.counter("checkpoint.writes").inc()
        registry.histogram("checkpoint.seconds").observe(
            time.perf_counter() - started
        )
        return path

    def emergency(self, state: Optional[ModelState] = None) -> str:
        """Cut a checkpoint outside the cadence (first-failure flush).

        Called by the degradation path (see
        :meth:`~repro.serve.server.SnapshotServer.feedback`) with the
        last *known-good* published state, so a writer that corrupted
        the live model mid-update never poisons the emergency file.
        Falls back to a fresh target snapshot when no state is given.
        Does not reset the periodic cadence.
        """
        registry = self._registry()
        if state is None:
            state = self._target.snapshot()
        path = os.path.join(
            self._directory, f"model-{self._next_index:08d}.ckpt"
        )
        state.save(path)
        self._maybe_tear(path)
        self._next_index += 1
        self._prune()
        registry.counter("checkpoint.writes").inc()
        registry.counter("checkpoint.emergency_writes").inc()
        return path

    def _maybe_tear(self, path: str) -> None:
        """Injected torn write: truncate the file mid-payload."""
        if self._faults is None:
            return
        spec = self._faults.draw("checkpoint", path=path)
        if spec is None or spec.kind != "torn":
            return
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(max(1, size // 2))

    def maybe_checkpoint(self) -> Optional[str]:
        """Checkpoint when the feedback cadence elapsed; else ``None``."""
        feedbacks = self._feedback_count()
        if feedbacks is not None:
            if self._last_feedback_count is None:
                # First sighting: anchor the cadence without checkpointing.
                self._last_feedback_count = feedbacks
                return None
            if feedbacks - self._last_feedback_count >= self._every_feedbacks:
                return self.checkpoint()
            return None
        self._calls_since_checkpoint += 1
        if self._calls_since_checkpoint >= self._every_feedbacks:
            return self.checkpoint()
        return None

    # ------------------------------------------------------------------
    # Warm start
    # ------------------------------------------------------------------
    def warm_start(self) -> Optional[str]:
        """Restore the target from the newest readable checkpoint.

        Tries checkpoints newest-first; unreadable files (truncated by a
        crash, checksum mismatch, future format version) are skipped and
        counted under the ``checkpoint.corrupt_skipped`` metric.  Returns
        the path restored from, or ``None`` when no checkpoint loaded.
        """
        registry = self._registry()
        for _, path in reversed(self._scan()):
            try:
                state = ModelState.load(path)
            except CheckpointError:
                registry.counter("checkpoint.corrupt_skipped").inc()
                continue
            self._target.restore(state)
            self._last_feedback_count = self._feedback_count()
            registry.counter("checkpoint.warm_starts").inc()
            return path
        return None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _registry(self) -> MetricsRegistry:
        return self._metrics if self._metrics is not None else get_registry()

    def _feedback_count(self) -> Optional[int]:
        count = getattr(self._target, "feedback_count", None)
        return int(count) if count is not None else None

    def _scan(self) -> List[Tuple[int, str]]:
        entries: List[Tuple[int, str]] = []
        for name in os.listdir(self._directory):
            match = _CHECKPOINT_RE.match(name)
            if match:
                entries.append(
                    (int(match.group(1)), os.path.join(self._directory, name))
                )
        entries.sort()
        return entries

    def _prune(self) -> None:
        entries = self._scan()
        for _, path in entries[: -self._keep_last or None]:
            try:
                os.remove(path)
            except FileNotFoundError:  # pragma: no cover - concurrent cleanup
                pass
            except OSError as error:
                # A read-only directory (or similar) must not *silently*
                # disable retention — the directory would grow unbounded.
                self._registry().counter("checkpoint.prune_errors").inc()
                warnings.warn(
                    f"checkpoint retention could not remove {path}: {error}",
                    RuntimeWarning,
                    stacklevel=3,
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        who = f"key={self._key.label!r}, " if self._key is not None else ""
        return (
            f"CheckpointManager({who}directory={self._directory!r}, "
            f"keep_last={self._keep_last}, "
            f"checkpoints={len(self.checkpoints())})"
        )
