"""Asyncio micro-batching front end over the model registry.

The paper measures per-query estimation latency (Section 6), but a
selectivity service faces *concurrent* single-query clients — and PR 1
made batched evaluation cheap precisely so that concurrency could be
turned into throughput.  :class:`EstimatorFrontend` is the piece in
between: an asyncio admission layer that

* accepts single estimates from many client sessions,
* **coalesces** requests that arrive while a batch is in flight into one
  :class:`~repro.geometry.QueryBatch` per served model — lanes are keyed
  by :class:`~repro.serve.keys.ModelKey`, with the legacy
  ``(table, columns)`` spelling coerced at admission,
* answers each batch with a single
  :meth:`~repro.serve.server.SnapshotServer.estimate_batch`-equivalent
  evaluation against **one consistent published snapshot**, and
* fans the per-query results back to the waiting futures.

Coalescing needs no artificial delay: batch evaluation runs on the
default thread-pool executor, so the event loop stays live and every
request admitted while an evaluation is running joins the next batch.
Under closed-loop load the batch size therefore tracks the number of
concurrent clients.

Backpressure and load shedding
------------------------------
Each model lane bounds its admission queue at
:attr:`FrontendConfig.max_queue_depth`.  A request arriving at a full
queue is **shed**: it fails fast with :class:`Overloaded` (a typed
error clients can catch and retry) and increments the
``frontend.shed`` counter.  Shedding keeps the latency of admitted
requests bounded — the alternative, an unbounded queue, converts
overload into unbounded p99.

Degraded serving
----------------
A watchdog task samples every lane each
:attr:`FrontendConfig.watchdog_interval` seconds.  When recent batch
latency exceeds :attr:`FrontendConfig.latency_threshold` or the lane's
writer reports new errors, the watchdog trips the lane's
:class:`~repro.faults.breaker.CircuitBreaker` (the PR 5 machinery).
While the breaker is open the lane serves from its *pinned* last
known-good publication — stale but consistent answers instead of
errors — and the breaker's half-open probe re-arms live serving once a
probe batch succeeds.  A live batch that raises falls back to the
pinned snapshot the same way, so clients of a degraded lane still get
answers.

Metrics (``repro.obs``)
-----------------------
Per-lane labels are ``{"model": "table/col1,col2"}``.

===================================  =========  =================================
``frontend.requests``                counter    requests admitted
``frontend.shed``                    counter    requests shed by admission control
``frontend.batches``                 counter    coalesced batches evaluated
``frontend.stale_batches``           counter    batches served from the pinned snapshot
``frontend.queue_depth``             gauge      admission-queue depth
``frontend.coalescing``              histogram  batch size (coalescing factor)
``frontend.batch_seconds``           histogram  batch evaluation latency (p50/p99)
``frontend.watchdog_trips``          counter    watchdog trips, labelled ``reason=``
``frontend.sessions``                gauge      open client sessions
``breaker.state``/``.transitions``   gauge/ctr  per-lane breaker telemetry
===================================  =========  =================================
"""

from __future__ import annotations

import asyncio
import itertools
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.backends import get_backend
from ..faults.breaker import CLOSED, CircuitBreaker, export_breaker_metrics
from ..geometry import Box, QueryBatch
from ..obs import MetricsRegistry, get_registry
from .keys import ModelKey
from .registry import ModelRegistry
from .server import PublishedSnapshot, SnapshotServer

__all__ = [
    "COALESCING_BUCKETS",
    "EstimatorFrontend",
    "FrontendConfig",
    "FrontendSession",
    "LaneStats",
    "Overloaded",
    "PlanEstimate",
]

#: Buckets for the coalescing-factor histogram: batch sizes are small
#: integers, so a power-of-two ladder reads better than the default
#: microsecond ladder shared by the latency timers.
COALESCING_BUCKETS: Tuple[float, ...] = tuple(float(2**i) for i in range(11))


class Overloaded(RuntimeError):
    """Request shed by admission control (queue full or front end down).

    Typed so clients can distinguish load shedding — safe to retry after
    backing off — from estimation errors, which are not.
    """


@dataclass(frozen=True)
class FrontendConfig:
    """Tuning knobs for :class:`EstimatorFrontend`.

    Parameters
    ----------
    max_batch_size:
        Upper bound on requests coalesced into one evaluation.  Bounds
        the latency cost a request can pay for riding a large batch.
    max_queue_depth:
        Admission-queue bound per model lane; arrivals beyond it are
        shed with :class:`Overloaded`.
    watchdog_interval:
        Seconds between watchdog health sweeps.
    latency_threshold:
        Recent batch latency (seconds) above which the watchdog trips
        the lane to degraded serving.
    latency_window:
        Number of recent batches the latency check considers.
    writer_error_threshold:
        New writer errors observed between two sweeps that trip the lane.
    breaker_recovery:
        Seconds a tripped lane stays degraded before the breaker admits
        a half-open live probe.
    reader_backend:
        Execution backend the front end applies to served models that do
        not already pin one: a registry name (e.g. ``"grid"`` to serve
        every lane from the sublinear grid backend) or a zero-argument
        factory returning a fresh backend — the same spelling
        :class:`~repro.serve.server.SnapshotServer` and
        :meth:`~repro.serve.registry.ModelRegistry.register` accept.
        Applied to a lane's :class:`~repro.serve.server.SnapshotServer`
        on first use via
        :meth:`~repro.serve.server.SnapshotServer.set_reader_backend`;
        a server constructed with its own ``reader_backend`` wins over
        this default.  ``None`` leaves servers untouched.
    recent_query_window:
        Per-lane bound on the recently admitted query boxes retained for
        :meth:`EstimatorFrontend.recent_queries` — the predicate-region
        tap the :mod:`repro.forecast` drift detector and cache-warming
        actuator consume.
    """

    max_batch_size: int = 256
    max_queue_depth: int = 1024
    watchdog_interval: float = 0.25
    latency_threshold: float = 0.5
    latency_window: int = 16
    writer_error_threshold: int = 1
    breaker_recovery: float = 5.0
    reader_backend: Union[str, Callable[[], object], None] = None
    recent_query_window: int = 256

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1")
        if self.watchdog_interval <= 0:
            raise ValueError("watchdog_interval must be positive")
        if self.latency_threshold <= 0:
            raise ValueError("latency_threshold must be positive")
        if self.latency_window < 1:
            raise ValueError("latency_window must be at least 1")
        if self.writer_error_threshold < 1:
            raise ValueError("writer_error_threshold must be at least 1")
        if self.breaker_recovery < 0:
            raise ValueError("breaker_recovery must be non-negative")
        if self.recent_query_window < 1:
            raise ValueError("recent_query_window must be at least 1")
        if self.reader_backend is not None:
            if isinstance(self.reader_backend, str):
                get_backend(self.reader_backend)  # fail fast on unknown names
            elif not callable(self.reader_backend):
                raise TypeError(
                    "reader_backend must be a registry name, a "
                    "zero-argument factory, or None; got "
                    f"{type(self.reader_backend).__name__}"
                )


@dataclass
class LaneStats:
    """Point-in-time counters for one model lane (or the whole front end)."""

    requests: int = 0
    answered: int = 0
    shed: int = 0
    batches: int = 0
    stale_batches: int = 0
    watchdog_trips: int = 0
    queue_depth: int = 0
    #: Mean requests answered per evaluated batch.
    coalescing_factor: float = 0.0

    def _merge(self, other: "LaneStats") -> None:
        self.requests += other.requests
        self.answered += other.answered
        self.shed += other.shed
        self.batches += other.batches
        self.stale_batches += other.stale_batches
        self.watchdog_trips += other.watchdog_trips
        self.queue_depth += other.queue_depth


class _Lane:
    """One model's admission queue, dispatcher task, and breaker."""

    def __init__(
        self,
        key: ModelKey,
        server: SnapshotServer,
        config: FrontendConfig,
    ) -> None:
        self.key = key
        self.server = server
        self.labels = {"model": key.label}
        self.queue: Deque[Tuple[Box, asyncio.Future]] = deque()
        self.wakeup = asyncio.Event()
        self.breaker = CircuitBreaker(
            failure_threshold=1, recovery_after=config.breaker_recovery
        )
        #: Last known-good publication; degraded serving answers from it.
        self.pinned: PublishedSnapshot = server.published
        self.dimensions = int(server.published.state.sample.shape[1])
        self.seen_writer_errors = server.writer_errors
        self.recent_seconds: Deque[float] = deque(maxlen=config.latency_window)
        #: Recently admitted query boxes — the forecast taps' region signal.
        self.recent_queries: Deque[Box] = deque(
            maxlen=config.recent_query_window
        )
        self.exported_transitions = 0
        self.task: Optional[asyncio.Task] = None
        self.stats = LaneStats()
        #: Bumped on every trip; the dispatcher compares generations so a
        #: trip landing while a batch is in flight is not undone by that
        #: batch's ``record_success``.
        self.trip_generation = 0

    def trip(self) -> None:
        """Force the breaker open; degraded serving from the pinned snapshot."""
        self.trip_generation += 1
        self.breaker.record_failure()
        self.recent_seconds.clear()


@dataclass(frozen=True)
class PlanEstimate:
    """Result of :meth:`EstimatorFrontend.plan_cardinalities`.

    Carries the optimiser's chosen plan together with the evidence used
    to price it: the per-table predicate selectivities answered through
    the admission batch, and the cost model's rung log recording which
    estimation route priced each plan node.
    """

    #: The chosen join plan (a ``JoinPlan`` from :mod:`repro.db.optimizer`).
    plan: object
    #: ``table -> predicate selectivity`` answered by the front end.
    base_selectivities: Dict[str, float]
    #: The cost model's per-node pricing records, in pricing order.
    pricing: Tuple[object, ...]

    @property
    def order(self) -> Tuple[str, ...]:
        return self.plan.order

    @property
    def cardinalities(self) -> Tuple[float, ...]:
        return tuple(node.cardinality for node in self.plan.nodes)


class FrontendSession:
    """One client's handle on the front end.

    Sessions are bookkeeping, not isolation: they give the service a
    per-client identity (connection accounting, the ``frontend.sessions``
    gauge) while every estimate still flows through the shared admission
    queues.  Use as an async context manager or call :meth:`close`.
    """

    def __init__(self, frontend: "EstimatorFrontend", session_id: int) -> None:
        self._frontend = frontend
        self.session_id = session_id
        self.requests = 0
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    async def estimate(
        self,
        table: "Union[str, ModelKey]",
        columns: Optional[Sequence[str]] = None,
        query: Optional[Box] = None,
    ) -> float:
        if self._closed:
            raise RuntimeError(f"session {self.session_id} is closed")
        self.requests += 1
        return await self._frontend.estimate(table, columns, query)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._frontend._session_closed(self)

    async def __aenter__(self) -> "FrontendSession":
        return self

    async def __aexit__(self, *exc) -> bool:
        self.close()
        return False


class EstimatorFrontend:
    """Asyncio estimator service in front of a :class:`ModelRegistry`.

    Parameters
    ----------
    registry:
        The :class:`~repro.serve.registry.ModelRegistry` of
        ``ModelKey -> SnapshotServer`` entries to serve from.
    config:
        Tuning knobs; defaults are service-sized (see
        :class:`FrontendConfig`).
    metrics:
        Metrics registry; ``None`` defers to the process-wide one at
        call time, like every other instrumented component.

    Usage::

        frontend = EstimatorFrontend(registry)
        await frontend.start()
        value = await frontend.estimate("orders", ("price", "qty"), box)
        await frontend.stop()

    or ``async with EstimatorFrontend(registry) as frontend: ...``.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        config: Optional[FrontendConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._registry_map = registry
        self._config = config if config is not None else FrontendConfig()
        self._metrics = metrics
        self._lanes: Dict[ModelKey, _Lane] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._watchdog_task: Optional[asyncio.Task] = None
        self._started = False
        self._session_ids = itertools.count(1)
        self._open_sessions = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def config(self) -> FrontendConfig:
        return self._config

    @property
    def started(self) -> bool:
        return self._started

    async def start(self) -> "EstimatorFrontend":
        """Bind to the running event loop and start the watchdog."""
        if self._started:
            return self
        self._loop = asyncio.get_running_loop()
        self._started = True
        self._watchdog_task = self._loop.create_task(self._watchdog_loop())
        return self

    async def stop(self) -> None:
        """Stop dispatchers and fail queued requests with :class:`Overloaded`."""
        if not self._started:
            return
        self._started = False
        tasks: List[asyncio.Task] = []
        if self._watchdog_task is not None:
            self._watchdog_task.cancel()
            tasks.append(self._watchdog_task)
            self._watchdog_task = None
        for lane in self._lanes.values():
            if lane.task is not None:
                lane.task.cancel()
                tasks.append(lane.task)
                lane.task = None
            while lane.queue:
                _, future = lane.queue.popleft()
                if not future.done():
                    future.set_exception(Overloaded("front end stopped"))
            self._gauge("frontend.queue_depth", lane).set(0)
        for task in tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._lanes.clear()

    async def __aenter__(self) -> "EstimatorFrontend":
        return await self.start()

    async def __aexit__(self, *exc) -> bool:
        await self.stop()
        return False

    def session(self) -> FrontendSession:
        """Open a new client session."""
        session = FrontendSession(self, next(self._session_ids))
        self._open_sessions += 1
        self._registry().gauge("frontend.sessions").set(self._open_sessions)
        return session

    def _session_closed(self, session: FrontendSession) -> None:
        self._open_sessions -= 1
        self._registry().gauge("frontend.sessions").set(self._open_sessions)

    # ------------------------------------------------------------------
    # Client path
    # ------------------------------------------------------------------
    async def estimate(
        self,
        table: Union[str, ModelKey],
        columns: Optional[Sequence[str]] = None,
        query: Optional[Box] = None,
    ) -> float:
        """Estimate one query's selectivity through the admission queue.

        Call as ``estimate(table, columns, box)`` (legacy spelling) or
        ``estimate(key, box)`` with any
        :class:`~repro.serve.keys.ModelKey` — join-signature lanes
        (join-sample and theta-join models) are addressable only through
        the key form.

        Raises :class:`Overloaded` when the model's queue is at
        ``max_queue_depth`` (shed; retry after backoff), ``KeyError``
        when no model is registered for the key, and ``ValueError`` for
        dimension mismatches or non-finite bounds.
        """
        if not self._started:
            raise RuntimeError("EstimatorFrontend.start() has not been called")
        if isinstance(table, ModelKey) and query is None:
            query = columns  # estimate(key, box)
            columns = None
        key = ModelKey.coerce(table, columns)
        # Validate before resolving the lane so a bad request can't spawn
        # a dispatcher task, and reject non-finite bounds per-client here:
        # Box tolerates inf/NaN but QueryBatch does not, so an admitted
        # poisoned box would otherwise fail the whole coalesced batch.
        if not isinstance(query, Box):
            raise TypeError(
                f"query must be a Box, got {type(query).__name__}"
            )
        if not (
            np.all(np.isfinite(query.low)) and np.all(np.isfinite(query.high))
        ):
            raise ValueError("query bounds must be finite")
        lane = self._lanes.get(key)
        if lane is None:
            server = self._registry_map.get(key)  # KeyError if absent
            dimensions = int(server.published.state.sample.shape[1])
        else:
            dimensions = lane.dimensions
        if query.dimensions != dimensions:
            raise ValueError(
                f"query has {query.dimensions} dimensions, model "
                f"{key.label} has {dimensions}"
            )
        if lane is None:
            lane = self._lane(key)
        if len(lane.queue) >= self._config.max_queue_depth:
            lane.stats.shed += 1
            self._registry().counter("frontend.shed", lane.labels).inc()
            raise Overloaded(
                f"admission queue for {lane.labels['model']} is at "
                f"{self._config.max_queue_depth}; retry after backoff"
            )
        assert self._loop is not None
        future: asyncio.Future = self._loop.create_future()
        lane.queue.append((query, future))
        lane.recent_queries.append(query)
        lane.stats.requests += 1
        registry = self._registry()
        registry.counter("frontend.requests", lane.labels).inc()
        self._gauge("frontend.queue_depth", lane).set(len(lane.queue))
        lane.wakeup.set()
        return await future

    async def plan_cardinalities(
        self,
        query,
        *,
        key_width: float = 1.0,
        join_rows=None,
        method: str = "dp",
    ) -> PlanEstimate:
        """Price every node of a ``JoinQuery`` in one admission batch.

        The plan-level entry point: all per-table predicate
        selectivities are admitted *concurrently*, so they coalesce into
        the in-flight batch of their lane (one evaluation per served
        model rather than one per plan node), then a
        :class:`~repro.db.optimizer.RegistryCostModel` seeded with those
        answers prices the join edges from served snapshots and
        :func:`~repro.db.optimizer.optimize_join_order` (DP by default)
        picks the plan on the event loop's executor.

        Parameters mirror :class:`~repro.db.optimizer.RegistryCostModel`:
        ``key_width`` is the equi-join key width used by the joint
        integral rung, ``join_rows`` optionally maps join-sample
        :class:`~repro.serve.keys.ModelKey` (or edge tuples) to
        estimated join cardinalities.

        Raises ``KeyError`` when a predicated table has no registered
        model, like :meth:`estimate` does for a single query.
        """
        from ..db.optimizer import RegistryCostModel, optimize_join_order

        if not self._started:
            raise RuntimeError("EstimatorFrontend.start() has not been called")
        resolved = []
        for name in sorted(query.predicates):
            key, box = RegistryCostModel.resolve_table_model(
                self._registry_map, query, name
            )
            resolved.append((name, key, box))
        values = await asyncio.gather(
            *(self.estimate(key, box) for _, key, box in resolved)
        )
        base_selectivities = {
            name: float(value)
            for (name, _, _), value in zip(resolved, values)
        }
        model = RegistryCostModel(
            self._registry_map,
            key_width=key_width,
            join_rows=join_rows,
            base_selectivities=base_selectivities,
        )
        assert self._loop is not None
        plan = await self._loop.run_in_executor(
            None, lambda: optimize_join_order(query, model, method=method)
        )
        return PlanEstimate(
            plan=plan,
            base_selectivities=base_selectivities,
            pricing=tuple(model.pricing),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(
        self,
        table: "Union[str, ModelKey, None]" = None,
        columns: Optional[Sequence[str]] = None,
    ) -> LaneStats:
        """Counters for one model lane, or aggregated over all lanes.

        Addresses a lane by ``(table, columns)`` or by
        :class:`~repro.serve.keys.ModelKey`.  A registered model that
        has not yet received traffic reports all-zero stats; an
        unregistered one raises ``KeyError``.
        """
        if table is not None:
            if columns is None and not isinstance(table, ModelKey):
                raise ValueError("columns is required when table is given")
            key = ModelKey.coerce(table, columns)
            lane = self._lanes.get(key)
            if lane is None:
                self._registry_map.get(key)  # KeyError if absent
                return LaneStats()
            return self._lane_stats(lane)
        total = LaneStats()
        for lane in self._lanes.values():
            total._merge(self._lane_stats(lane))
        if total.batches:
            total.coalescing_factor = total.answered / total.batches
        return total

    def recent_queries(
        self,
        table: Union[str, ModelKey],
        columns: Optional[Sequence[str]] = None,
    ) -> List[Box]:
        """Recently admitted query boxes for one model lane (oldest first).

        Bounded by :attr:`FrontendConfig.recent_query_window`.  The
        forecast controller feeds these to
        :meth:`~repro.serve.server.SnapshotServer.warm` (region-aware
        cache warming) and to its drift detector.  A registered model
        with no traffic yet returns an empty list; an unregistered one
        raises ``KeyError``.
        """
        key = ModelKey.coerce(table, columns)
        lane = self._lanes.get(key)
        if lane is None:
            self._registry_map.get(key)  # KeyError if absent
            return []
        return list(lane.recent_queries)

    def degraded(
        self,
        table: Union[str, ModelKey],
        columns: Optional[Sequence[str]] = None,
    ) -> bool:
        """Whether the lane currently serves from its pinned snapshot.

        A registered model with no traffic yet is not degraded; an
        unregistered one raises ``KeyError``.
        """
        key = ModelKey.coerce(table, columns)
        lane = self._lanes.get(key)
        if lane is None:
            self._registry_map.get(key)  # KeyError if absent
            return False
        return lane.breaker.state != CLOSED

    def trip(
        self,
        table: Union[str, ModelKey],
        columns: Optional[Sequence[str]] = None,
        reason: str = "manual",
    ) -> None:
        """Trip one lane to degraded (stale-snapshot) serving now.

        The operator/testing entry point to the same mechanism the
        watchdog uses; the lane recovers through the breaker's half-open
        probe like any other trip.  With a :class:`ModelKey` first
        argument the second positional may be the reason string.
        """
        if isinstance(table, ModelKey) and isinstance(columns, str):
            reason = columns  # trip(key, "reason")
            columns = None
        lane = self._lane(ModelKey.coerce(table, columns))
        self._trip_lane(lane, reason)

    def _lane_stats(self, lane: _Lane) -> LaneStats:
        stats = LaneStats(
            requests=lane.stats.requests,
            answered=lane.stats.answered,
            shed=lane.stats.shed,
            batches=lane.stats.batches,
            stale_batches=lane.stats.stale_batches,
            watchdog_trips=lane.stats.watchdog_trips,
            queue_depth=len(lane.queue),
        )
        if stats.batches:
            stats.coalescing_factor = stats.answered / stats.batches
        return stats

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _registry(self) -> MetricsRegistry:
        return self._metrics if self._metrics is not None else get_registry()

    def _gauge(self, name: str, lane: _Lane):
        return self._registry().gauge(name, lane.labels)

    def _lane(self, key: ModelKey) -> _Lane:
        lane = self._lanes.get(key)
        if lane is None:
            server = self._registry_map.get(key)  # KeyError if absent
            if (
                self._config.reader_backend is not None
                and server.reader_backend is None
            ):
                # Config default; a server that pinned its own spec wins.
                server.set_reader_backend(self._config.reader_backend)
            lane = _Lane(key, server, self._config)
            assert self._loop is not None
            lane.task = self._loop.create_task(self._run_lane(lane))
            self._lanes[key] = lane
        return lane

    async def _run_lane(self, lane: _Lane) -> None:
        """Dispatcher: drain the queue, evaluate one batch, fan out."""
        assert self._loop is not None
        while True:
            while not lane.queue:
                lane.wakeup.clear()
                await lane.wakeup.wait()
            count = min(len(lane.queue), self._config.max_batch_size)
            requests = [lane.queue.popleft() for _ in range(count)]
            self._gauge("frontend.queue_depth", lane).set(len(lane.queue))
            registry = self._registry()
            started = time.perf_counter()
            stale = False
            try:
                # Inside the try: a batch that fails validation (despite
                # admission checks) must fail its own futures below, not
                # kill the dispatcher and strand every queued client.
                batch = QueryBatch(
                    np.stack([box.low for box, _ in requests]),
                    np.stack([box.high for box, _ in requests]),
                )
                generation = lane.trip_generation
                live = lane.breaker.allow()
                if live:
                    publication = lane.server.published
                    try:
                        values = await self._loop.run_in_executor(
                            None, publication.reader.selectivity_batch, batch
                        )
                    except Exception:
                        lane.breaker.record_failure()
                        registry.counter(
                            "frontend.live_errors", lane.labels
                        ).inc()
                        stale = True
                    else:
                        if lane.trip_generation == generation:
                            lane.breaker.record_success()
                            lane.pinned = publication
                        # else: a watchdog/manual trip landed while this
                        # batch was in flight — the success predates the
                        # trip, so it must not close the breaker.
                else:
                    stale = True
                if stale:
                    # Degraded: answer from the pinned last known-good
                    # publication — stale but consistent, never an error.
                    values = await self._loop.run_in_executor(
                        None, lane.pinned.reader.selectivity_batch, batch
                    )
            except asyncio.CancelledError:
                # Only stop() cancels dispatchers; the in-flight batch
                # can't be re-queued (stop has already drained the
                # queue), so its clients get the shutdown error too.
                for _, future in requests:
                    if not future.done():
                        future.set_exception(Overloaded("front end stopped"))
                raise
            except Exception as error:
                # Even the pinned engine failed (poisoned batch?): the
                # waiting clients get the error, the lane stays up.
                for _, future in requests:
                    if not future.done():
                        future.set_exception(error)
                continue
            seconds = time.perf_counter() - started
            lane.recent_seconds.append(seconds)
            lane.stats.batches += 1
            lane.stats.answered += len(requests)
            if stale:
                lane.stats.stale_batches += 1
                registry.counter("frontend.stale_batches", lane.labels).inc()
            registry.counter("frontend.batches", lane.labels).inc()
            registry.histogram(
                "frontend.coalescing", lane.labels, buckets=COALESCING_BUCKETS
            ).observe(float(len(requests)))
            registry.histogram(
                "frontend.batch_seconds", lane.labels
            ).observe(seconds)
            for (_, future), value in zip(requests, values):
                if not future.done():
                    future.set_result(float(value))

    # ------------------------------------------------------------------
    # Watchdog
    # ------------------------------------------------------------------
    async def _watchdog_loop(self) -> None:
        while True:
            await asyncio.sleep(self._config.watchdog_interval)
            self.check_health()

    def check_health(self) -> List[Tuple[str, str]]:
        """One watchdog sweep over every lane; returns ``(model, reason)`` trips.

        Runs automatically every ``watchdog_interval`` seconds while the
        front end is started; callable directly for deterministic tests
        and operational probes.
        """
        trips: List[Tuple[str, str]] = []
        registry = self._registry()
        for lane in self._lanes.values():
            writer_errors = lane.server.writer_errors
            new_errors = writer_errors - lane.seen_writer_errors
            lane.seen_writer_errors = writer_errors
            reason = None
            if new_errors >= self._config.writer_error_threshold:
                reason = "writer_errors"
            elif (
                lane.recent_seconds
                and max(lane.recent_seconds) > self._config.latency_threshold
            ):
                reason = "latency"
            if reason is not None and lane.breaker.state == CLOSED:
                self._trip_lane(lane, reason)
                trips.append((lane.labels["model"], reason))
            lane.exported_transitions = export_breaker_metrics(
                lane.breaker, registry, lane.labels, lane.exported_transitions
            )
        return trips

    def _trip_lane(self, lane: _Lane, reason: str) -> None:
        lane.trip()
        lane.stats.watchdog_trips += 1
        self._registry().counter(
            "frontend.watchdog_trips", {**lane.labels, "reason": reason}
        ).inc()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EstimatorFrontend(lanes={len(self._lanes)}, "
            f"started={self._started}, sessions={self._open_sessions})"
        )
