"""Canonical model identity: the join-signature-aware :class:`ModelKey`.

The paper trains one estimator per table/column combination the
optimiser asks about, and its Section 8 sketches two further model
families over *join* results: KDEs built from PK-FK join samples, and
theta-join pairs priced by joint integrals over two single-table
models.  A registry keyed by a bare ``(table, columns)`` tuple cannot
name the join families, so every layer that identifies a served model —
:class:`~repro.serve.registry.ModelRegistry`,
:class:`~repro.serve.server.SnapshotServer` naming,
:class:`~repro.serve.checkpoint.CheckpointManager` directories,
front-end admission lanes, the forecast controller's demand accounting —
keys on the :class:`ModelKey` defined here instead.

A :class:`ModelKey` is a frozen, hashable, totally ordered value with
three kinds:

``table``
    A single-table column set — the classic ``(table, columns)``
    identity.  :meth:`ModelKey.coerce` converts legacy pairs, so every
    pre-existing call site keeps working unchanged.
``join-sample``
    A model built over a sample of a join *result* (the PK-FK route):
    identified by the set of joined tables plus the canonicalised join
    edges, with the sample's column layout recorded as qualified
    ``table.column`` names.
``theta-join``
    A pair of single-table models priced together through the joint
    integral route: identified by exactly one canonicalised edge.

Canonicalisation makes structurally equal signatures compare equal:
edge orientation is normalised (``fact.k = dim.k`` and ``dim.k =
fact.k`` are the same edge), edges are sorted, and the table set is
sorted — so a key built from a query always finds the key a model was
registered under, whichever way round the join was written.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import Iterable, Sequence, Tuple, Union

__all__ = ["JoinEdge", "ModelKey", "TABLE", "JOIN_SAMPLE", "THETA_JOIN"]

#: The three model-identity kinds.
TABLE = "table"
JOIN_SAMPLE = "join-sample"
THETA_JOIN = "theta-join"

_KINDS = (TABLE, JOIN_SAMPLE, THETA_JOIN)

#: Characters that survive into a filesystem slug unchanged.
_SLUG_UNSAFE = re.compile(r"[^A-Za-z0-9._-]+")


def _check_name(value: str, what: str) -> str:
    if not isinstance(value, str) or not value:
        raise ValueError(f"{what} must be a non-empty string, got {value!r}")
    return value


def _columns_tuple(columns: Sequence[str], what: str) -> Tuple[str, ...]:
    if isinstance(columns, str):
        raise TypeError(f"{what} must be a sequence of names, not a string")
    cols = tuple(str(c) for c in columns)
    if not cols:
        raise ValueError(f"{what} must be non-empty")
    return cols


@dataclass(frozen=True, order=True)
class JoinEdge:
    """One canonicalised equi/theta join edge between two table columns.

    Construct through :meth:`of`, which normalises orientation so the
    lexicographically smaller ``(table, column)`` endpoint is always on
    the left — a key built from either spelling of the edge compares
    equal.
    """

    left_table: str
    left_column: str
    right_table: str
    right_column: str

    def __post_init__(self) -> None:
        _check_name(self.left_table, "left_table")
        _check_name(self.right_table, "right_table")
        _check_name(self.left_column, "left_column")
        _check_name(self.right_column, "right_column")
        if (self.left_table, self.left_column) > (
            self.right_table,
            self.right_column,
        ):
            raise ValueError(
                "JoinEdge endpoints are not canonicalised; build edges "
                "with JoinEdge.of(...)"
            )

    @classmethod
    def of(
        cls,
        left_table: str,
        left_column: Union[str, int],
        right_table: str,
        right_column: Union[str, int],
    ) -> "JoinEdge":
        """Build an edge with normalised endpoint order."""
        a = (_check_name(left_table, "left_table"), str(left_column))
        b = (_check_name(right_table, "right_table"), str(right_column))
        if a > b:
            a, b = b, a
        return cls(a[0], a[1], b[0], b[1])

    @property
    def tables(self) -> Tuple[str, str]:
        return (self.left_table, self.right_table)

    def __str__(self) -> str:
        return (
            f"{self.left_table}.{self.left_column}"
            f"={self.right_table}.{self.right_column}"
        )


@dataclass(frozen=True, order=True)
class ModelKey:
    """Canonical, hashable identity of one served estimator.

    Build through the classmethods — :meth:`for_table`,
    :meth:`for_join_sample`, :meth:`for_theta_join`, or the legacy
    coercion :meth:`coerce` — rather than the raw constructor; they
    perform the canonicalisation the equality/hash semantics rely on.
    """

    kind: str
    #: Sorted tuple of the tables the model covers (one for ``table``).
    tables: Tuple[str, ...]
    #: Ordered column names; qualified ``table.column`` for join kinds.
    columns: Tuple[str, ...]
    #: Canonicalised, sorted join edges (empty for ``table`` keys).
    edges: Tuple[JoinEdge, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"kind must be one of {_KINDS}, got {self.kind!r}"
            )
        if not self.tables:
            raise ValueError("a ModelKey needs at least one table")
        for table in self.tables:
            _check_name(table, "table")
        if tuple(sorted(set(self.tables))) != self.tables:
            raise ValueError("tables must be sorted and unique")
        if not self.columns:
            raise ValueError("a ModelKey needs at least one column")
        if self.kind == TABLE:
            if len(self.tables) != 1:
                raise ValueError("a table key covers exactly one table")
            if self.edges:
                raise ValueError("a table key has no join edges")
        else:
            if not self.edges:
                raise ValueError(f"a {self.kind} key needs join edges")
            if self.kind == THETA_JOIN and len(self.edges) != 1:
                raise ValueError("a theta-join key has exactly one edge")
            if tuple(sorted(self.edges)) != self.edges:
                raise ValueError("edges must be sorted")
            referenced = {t for edge in self.edges for t in edge.tables}
            if not referenced.issubset(set(self.tables)):
                raise ValueError("edge references a table outside the key")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def for_table(cls, table: str, columns: Sequence[str]) -> "ModelKey":
        """The single-table column-set identity (the legacy key)."""
        return cls(
            kind=TABLE,
            tables=(_check_name(table, "table"),),
            columns=_columns_tuple(columns, "columns"),
        )

    @classmethod
    def for_join_sample(
        cls,
        edges: Iterable[Union[JoinEdge, Tuple]],
        columns: Sequence[str],
    ) -> "ModelKey":
        """Identity of a model built over a join-result sample.

        ``edges`` accepts :class:`JoinEdge` instances or raw
        ``(left_table, left_column, right_table, right_column)`` tuples
        (the :class:`~repro.db.optimizer.JoinQuery` spelling, column
        indices included); orientation and order are canonicalised.
        ``columns`` is the sample's column layout as qualified
        ``table.column`` names, in sample order.
        """
        canonical = tuple(sorted(cls._as_edges(edges)))
        if not canonical:
            raise ValueError("a join-sample key needs at least one edge")
        tables = tuple(sorted({t for e in canonical for t in e.tables}))
        return cls(
            kind=JOIN_SAMPLE,
            tables=tables,
            columns=_columns_tuple(columns, "columns"),
            edges=canonical,
        )

    @classmethod
    def for_theta_join(
        cls,
        left_table: str,
        left_column: Union[str, int],
        right_table: str,
        right_column: Union[str, int],
    ) -> "ModelKey":
        """Identity of a theta-join pair priced via joint integrals."""
        edge = JoinEdge.of(left_table, left_column, right_table, right_column)
        tables = tuple(sorted(set(edge.tables)))
        columns = (
            f"{edge.left_table}.{edge.left_column}",
            f"{edge.right_table}.{edge.right_column}",
        )
        return cls(
            kind=THETA_JOIN, tables=tables, columns=columns, edges=(edge,)
        )

    @classmethod
    def coerce(cls, key, columns=None) -> "ModelKey":
        """Canonicalise any accepted key spelling to a :class:`ModelKey`.

        Accepts a :class:`ModelKey` (returned unchanged), a legacy
        ``(table, columns)`` pair — either as one 2-tuple or as two
        arguments — and raises ``TypeError``/``ValueError`` for
        anything else.  This is the single choke point through which
        every pre-refactor ``(table, columns)`` call site reaches the
        re-keyed registry.
        """
        if isinstance(key, ModelKey):
            if columns is not None:
                raise TypeError(
                    "columns must be omitted when a ModelKey is given"
                )
            return key
        if columns is not None:
            return cls.for_table(key, columns)
        if isinstance(key, tuple) and len(key) == 2:
            table, cols = key
            return cls.for_table(table, cols)
        raise TypeError(
            "expected a ModelKey or a (table, columns) pair, got "
            f"{key!r}"
        )

    @staticmethod
    def _as_edges(edges: Iterable) -> Tuple[JoinEdge, ...]:
        out = []
        for edge in edges:
            if isinstance(edge, JoinEdge):
                out.append(edge)
            elif isinstance(edge, tuple) and len(edge) == 4:
                out.append(JoinEdge.of(*edge))
            else:
                raise TypeError(
                    "edges must be JoinEdge or 4-tuples "
                    "(left_table, left_column, right_table, right_column); "
                    f"got {edge!r}"
                )
        return tuple(out)

    # ------------------------------------------------------------------
    # Derived identities
    # ------------------------------------------------------------------
    @property
    def table(self) -> str:
        """The single table of a ``table`` key (ValueError otherwise)."""
        if self.kind != TABLE:
            raise ValueError(f"a {self.kind} key spans {self.tables}")
        return self.tables[0]

    @property
    def label(self) -> str:
        """Human/metrics label.

        Table keys keep the historical ``table/col1,col2`` spelling (so
        per-model metric labels are stable across the re-keying); join
        kinds read ``t1*t2[kind:edge;edge]``.
        """
        if self.kind == TABLE:
            return f"{self.tables[0]}/{','.join(self.columns)}"
        edges = ";".join(str(edge) for edge in self.edges)
        return f"{'*'.join(self.tables)}[{self.kind}:{edges}]"

    @property
    def slug(self) -> str:
        """Filesystem-safe name, unique per key.

        The sanitised label keeps directories readable; the appended
        digest keeps distinct keys distinct even when sanitisation
        collides (e.g. columns ``a,b`` vs ``a.b``).
        """
        text = _SLUG_UNSAFE.sub("_", self.label).strip("_")[:80]
        digest = hashlib.sha1(
            repr(
                (self.kind, self.tables, self.columns, self.edges)
            ).encode("utf-8")
        ).hexdigest()[:8]
        return f"{text}-{digest}"

    def covers_edge(self, edge: Union[JoinEdge, Tuple]) -> bool:
        """Whether this key's signature contains the given join edge."""
        (candidate,) = self._as_edges([edge])
        return candidate in self.edges

    def __str__(self) -> str:
        return self.label

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ModelKey({self.label!r})"
