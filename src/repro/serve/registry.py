"""Registry of served models keyed by join signature.

A selectivity estimation service holds one KDE model per identity the
optimiser asks about.  Historically that identity was a bare
``(table, columns)`` pair; the paper's Section 8 join routes add models
built over PK-FK join samples and theta-join pairs, so the registry now
keys on the canonical :class:`~repro.serve.keys.ModelKey` — which
covers all three kinds — while every legacy ``(table, columns)`` call
site keeps working through :meth:`ModelKey.coerce`.

:class:`ModelRegistry` is the thread-safe map from that identity to the
:class:`~repro.serve.server.SnapshotServer` wrapping the model.
Registering a bare estimator wraps it in a server automatically, so
callers interact with one uniform snapshot-isolated surface.  Every
accessor accepts either spelling::

    registry.register("orders", ("price", "qty"), model)      # legacy
    registry.register(ModelKey.for_table("orders", ("price", "qty")), model)
    registry.register(ModelKey.for_join_sample(edges, cols), join_model)

    registry.get("orders", ("price", "qty"))
    registry.get(ModelKey.for_join_sample(edges, cols))
"""

from __future__ import annotations

import threading
import warnings
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from .keys import ModelKey
from .server import SnapshotModel, SnapshotServer

__all__ = ["ModelRegistry"]

#: Single-shot flag for the ``backend=`` → ``reader_backend=`` shim.
_warned_backend_kwarg = False


def _coerce_reader_backend(reader_backend, backend):
    """Resolve the 1.1 ``reader_backend=`` spelling against the old kwarg.

    ``backend=`` was the pre-forecast spelling of the same knob; it
    warns once per process and keeps working.  Passing both is an error
    — silently preferring either would hide a caller bug.
    """
    global _warned_backend_kwarg
    if backend is None:
        return reader_backend
    if reader_backend is not None:
        raise TypeError(
            "pass reader_backend= only; backend= is its deprecated alias"
        )
    if not _warned_backend_kwarg:
        _warned_backend_kwarg = True
        warnings.warn(
            "ModelRegistry.register(backend=...) is deprecated; use "
            "reader_backend=... (the same spelling SnapshotServer and "
            "FrontendConfig use)",
            DeprecationWarning,
            stacklevel=3,
        )
    return backend


def _resolve_key(key_or_table, columns) -> ModelKey:
    """Coerce the two accepted spellings to a canonical :class:`ModelKey`.

    ``(ModelKey, None)`` and ``(table, columns)`` are both valid;
    everything else raises the same TypeError/ValueError the legacy
    ``_make_key`` validation raised.
    """
    return ModelKey.coerce(key_or_table, columns)


class ModelRegistry:
    """Thread-safe ``ModelKey -> SnapshotServer`` map.

    Keys are join signatures (:class:`~repro.serve.keys.ModelKey`);
    every accessor also accepts the legacy ``(table, columns)``
    spelling, which coerces to a ``table``-kind key.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._servers: Dict[ModelKey, SnapshotServer] = {}

    def register(
        self,
        table: Union[str, ModelKey],
        columns: Optional[Sequence[str]] = None,
        model: "SnapshotModel | SnapshotServer | None" = None,
        *,
        replace: bool = False,
        metrics=None,
        checkpoints=None,
        on_publish=None,
        reader_backend=None,
        backend=None,
    ) -> SnapshotServer:
        """Register ``model`` under a key.

        Call as ``register(table, columns, model)`` (legacy spelling) or
        ``register(key, model)`` with a :class:`ModelKey` — the second
        positional argument is the model when the first is already a
        key.  Bare estimators are wrapped in a :class:`SnapshotServer`;
        an existing server instance is registered as-is.
        Re-registering an occupied key raises unless ``replace=True``.

        ``metrics``, ``checkpoints``, ``on_publish`` and
        ``reader_backend`` (a registry name or zero-argument factory,
        e.g. ``reader_backend="grid"`` to serve reads from the sublinear
        grid backend — the same spelling :class:`SnapshotServer` and
        :class:`~repro.serve.frontend.FrontendConfig` use) are forwarded
        to the :class:`SnapshotServer` constructor when a bare estimator
        is wrapped, so registry-created servers keep
        emergency-checkpoint protection, publication observers and the
        chosen read path.  ``backend=`` is the deprecated pre-1.1 alias
        of ``reader_backend=`` (warns once per process).  Passing any of
        them with an already-constructed server raises: the server was
        configured at construction and silently ignoring the kwargs
        would drop exactly that configuration.
        """
        if isinstance(table, ModelKey):
            if model is None:
                model = columns
                columns = None
            if model is None:
                raise TypeError("register(key, model): model is required")
            key = _resolve_key(table, columns)
        else:
            key = _resolve_key(table, columns)
            if model is None:
                raise TypeError(
                    "register(table, columns, model): model is required"
                )
        reader_backend = _coerce_reader_backend(reader_backend, backend)
        if isinstance(model, SnapshotServer):
            rejected = [
                name
                for name, value in (
                    ("metrics", metrics),
                    ("checkpoints", checkpoints),
                    ("on_publish", on_publish),
                    ("reader_backend", reader_backend),
                )
                if value is not None
            ]
            if rejected:
                raise ValueError(
                    f"cannot apply {', '.join(rejected)} to an "
                    "already-constructed SnapshotServer; configure the "
                    "server at construction instead"
                )
            server = model
        else:
            server = SnapshotServer(
                model,
                metrics=metrics,
                checkpoints=checkpoints,
                on_publish=on_publish,
                reader_backend=reader_backend,
            )
        if server.key is None:
            server.key = key
        with self._lock:
            if not replace and key in self._servers:
                raise KeyError(
                    f"model already registered for {key.label!r}; "
                    "pass replace=True to swap it"
                )
            self._servers[key] = server
        return server

    def get(
        self,
        table: Union[str, ModelKey],
        columns: Optional[Sequence[str]] = None,
    ) -> SnapshotServer:
        """Return the server for the key; KeyError if absent."""
        key = _resolve_key(table, columns)
        with self._lock:
            try:
                return self._servers[key]
            except KeyError:
                raise KeyError(
                    f"no model registered for {key.label!r}"
                ) from None

    def lookup(
        self,
        table: Union[str, ModelKey],
        columns: Optional[Sequence[str]] = None,
    ) -> Optional[SnapshotServer]:
        """Like :meth:`get` but returns ``None`` when absent."""
        key = _resolve_key(table, columns)
        with self._lock:
            return self._servers.get(key)

    def unregister(
        self,
        table: Union[str, ModelKey],
        columns: Optional[Sequence[str]] = None,
    ) -> Optional[SnapshotServer]:
        """Remove and return the server for the key (``None`` if absent)."""
        key = _resolve_key(table, columns)
        with self._lock:
            return self._servers.pop(key, None)

    def keys(self) -> List[ModelKey]:
        with self._lock:
            return sorted(self._servers)

    def items(self) -> List[Tuple[ModelKey, SnapshotServer]]:
        with self._lock:
            return sorted(self._servers.items())

    def __contains__(self, key: object) -> bool:
        if not isinstance(key, ModelKey):
            if not (isinstance(key, tuple) and len(key) == 2):
                return False
            try:
                key = ModelKey.coerce(key)
            except (TypeError, ValueError):
                return False
        with self._lock:
            return key in self._servers

    def __len__(self) -> int:
        with self._lock:
            return len(self._servers)

    def __iter__(self) -> Iterator[ModelKey]:
        return iter(self.keys())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ModelRegistry(models={len(self)})"
