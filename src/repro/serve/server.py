"""Snapshot-isolated serving on top of :class:`~repro.core.state.ModelState`.

The paper's estimator is *self-tuning*: every query-feedback pair mutates
bandwidths (Section 5.2) and, under inserts, the sample itself
(Section 5.4).  Serving estimates straight off the mutating model would
let a concurrent reader observe a half-applied RMSprop step — some
dimensions already moved, others not — which is exactly the kind of
torn state the snapshot/engine split exists to rule out.

:class:`SnapshotServer` applies read-copy-update publication:

* **Readers** never lock.  :meth:`estimate` grabs ``self._published`` —
  one attribute load, atomic under the GIL — and evaluates against the
  immutable :class:`~repro.core.state.ModelState` captured there.  The
  reader engine is a static :class:`~repro.core.estimator.KernelDensityEstimator`
  built once per publication via ``from_state``.
* **The writer** serialises feedback under a lock and, whenever the
  model's ``(bandwidth_epoch, sample_epoch)`` pair advances, snapshots
  the model and swaps the published record in a single assignment.
  Readers therefore only ever see whole-epoch states: a published
  snapshot reflects *all* of the bandwidth step that produced it.

Staleness — the number of feedback observations absorbed by the writer
but not yet visible to readers — is tracked and exported through
:mod:`repro.obs` alongside the publication count.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from ..core.estimator import KernelDensityEstimator
from ..core.state import ModelState
from ..geometry import Box
from ..obs import MetricsRegistry, get_registry

__all__ = ["PublishedSnapshot", "SnapshotServer", "SnapshotModel"]


@runtime_checkable
class SnapshotModel(Protocol):
    """Anything servable: an estimator exposing snapshot/restore/feedback."""

    def snapshot(self) -> ModelState: ...

    def restore(self, state: ModelState) -> None: ...

    def feedback(self, query: Box, true_selectivity: float): ...


@dataclass(frozen=True)
class PublishedSnapshot:
    """One immutable publication: state, reader engine, and sequence number.

    Swapped wholesale so a reader can never pair the state of one
    publication with the engine of another.
    """

    state: ModelState
    reader: KernelDensityEstimator
    sequence: int
    feedback_count: int

    @property
    def epochs(self) -> Tuple[int, int]:
        return self.state.epochs


class SnapshotServer:
    """Read-copy-update wrapper around one self-tuning model.

    Parameters
    ----------
    model:
        The writer model.  Any of the three estimator families works —
        ``KernelDensityEstimator``, ``SelfTuningKDE`` or ``DeviceKDE`` —
        because the reader engine is rebuilt from the published
        :class:`ModelState` with ``KernelDensityEstimator.from_state``,
        which accepts every state kind.
    metrics:
        Metrics registry; defaults to the process-global one.
    on_publish:
        Optional callback invoked (under the writer lock, immediately
        *before* the record becomes visible to readers) with each newly
        published :class:`PublishedSnapshot`.  Used by tests and by
        checkpoint glue that wants to persist exactly the served states.
    """

    def __init__(
        self,
        model: SnapshotModel,
        *,
        metrics: Optional[MetricsRegistry] = None,
        on_publish: Optional[Callable[[PublishedSnapshot], None]] = None,
    ) -> None:
        if not hasattr(model, "snapshot") or not hasattr(model, "feedback"):
            raise TypeError(
                "model must expose snapshot() and feedback(); got "
                f"{type(model).__name__}"
            )
        self._model = model
        self._metrics = metrics
        self._on_publish = on_publish
        self._lock = threading.RLock()
        self._feedback_count = 0
        self._published: PublishedSnapshot  # assigned by _publish_locked
        with self._lock:
            self._publish_locked(self._model.snapshot())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def model(self) -> SnapshotModel:
        """The writer model (mutate only through :meth:`feedback`)."""
        return self._model

    @property
    def published(self) -> PublishedSnapshot:
        """The current publication record (lock-free)."""
        return self._published

    @property
    def published_state(self) -> ModelState:
        """The :class:`ModelState` readers currently evaluate against."""
        return self._published.state

    @property
    def publish_count(self) -> int:
        """Number of publications, including the initial one."""
        return self._published.sequence

    @property
    def feedback_count(self) -> int:
        """Total feedback observations absorbed by the writer."""
        return self._feedback_count

    @property
    def staleness(self) -> int:
        """Writer feedbacks not yet reflected in the published snapshot."""
        published = self._published
        return max(0, self._feedback_count - published.feedback_count)

    # ------------------------------------------------------------------
    # Reader path (lock-free)
    # ------------------------------------------------------------------
    def estimate(self, query: Box) -> float:
        """Selectivity estimate against the latest published snapshot."""
        published = self._published  # single atomic attribute load
        value = float(published.reader.selectivity(query))
        self._registry().counter("serve.reads").inc()
        return value

    def estimate_batch(self, queries) -> np.ndarray:
        """Batched estimates, all against one consistent snapshot."""
        published = self._published
        values = published.reader.selectivity_batch(queries)
        self._registry().counter("serve.reads").inc(len(values))
        return values

    # ------------------------------------------------------------------
    # Writer path (serialised)
    # ------------------------------------------------------------------
    def feedback(self, query: Box, true_selectivity: float):
        """Apply one feedback observation and publish completed epochs.

        The model mutates under the writer lock; publication happens only
        when the model's epoch pair advanced, so readers observe either
        the pre-step or the post-step state — never a partial step.
        Models without epoch counters (``DeviceKDE``) publish after every
        feedback, which is trivially whole-step for the same reason: the
        snapshot is taken after ``feedback`` returns.
        """
        with self._lock:
            result = self._model.feedback(query, true_selectivity)
            self._feedback_count += 1
            if self._model_epochs() != self._published.epochs:
                self._publish_locked(self._model.snapshot())
            else:
                self._registry().gauge("serve.staleness").set(self.staleness)
            return result

    def publish(self) -> PublishedSnapshot:
        """Force publication of the writer's current state."""
        with self._lock:
            self._publish_locked(self._model.snapshot())
            return self._published

    def restore(self, state: ModelState) -> None:
        """Restore the writer from ``state`` and republish immediately."""
        with self._lock:
            self._model.restore(state)
            self._publish_locked(self._model.snapshot())

    def snapshot(self) -> ModelState:
        """Consistent snapshot of the *writer* (for checkpointing)."""
        with self._lock:
            return self._model.snapshot()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _registry(self) -> MetricsRegistry:
        return self._metrics if self._metrics is not None else get_registry()

    def _model_epochs(self) -> Tuple[int, int]:
        # Fall back to (-1, -1) for models without epoch counters so the
        # comparison against any published state always differs → publish
        # on every feedback.
        bandwidth = getattr(self._model, "bandwidth_epoch", None)
        sample = getattr(self._model, "sample_epoch", None)
        if bandwidth is None or sample is None:
            return (-1, -1)
        return (int(bandwidth), int(sample))

    def _publish_locked(self, state: ModelState) -> None:
        sequence = getattr(self, "_published", None)
        next_sequence = 1 if sequence is None else sequence.sequence + 1
        reader = KernelDensityEstimator.from_state(state)
        record = PublishedSnapshot(
            state=state,
            reader=reader,
            sequence=next_sequence,
            feedback_count=self._feedback_count,
        )
        # The callback runs first, while the record is still invisible:
        # observers that log publications (tests, checkpoint glue) are
        # guaranteed to know about a record before any reader can see it.
        if self._on_publish is not None:
            self._on_publish(record)
        # The single store below is the linearisation point: readers that
        # loaded the old record keep a fully consistent (state, reader)
        # pair; new readers see the new pair.
        self._published = record
        registry = self._registry()
        registry.counter("serve.publishes").inc()
        registry.gauge("serve.staleness").set(0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        published = self._published
        return (
            f"SnapshotServer(model={type(self._model).__name__}, "
            f"publishes={published.sequence}, feedbacks={self._feedback_count}, "
            f"staleness={self.staleness})"
        )
