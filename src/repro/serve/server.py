"""Snapshot-isolated serving on top of :class:`~repro.core.state.ModelState`.

The paper's estimator is *self-tuning*: every query-feedback pair mutates
bandwidths (Section 5.2) and, under inserts, the sample itself
(Section 5.4).  Serving estimates straight off the mutating model would
let a concurrent reader observe a half-applied RMSprop step — some
dimensions already moved, others not — which is exactly the kind of
torn state the snapshot/engine split exists to rule out.

:class:`SnapshotServer` applies read-copy-update publication:

* **Readers** never lock.  :meth:`estimate` grabs ``self._published`` —
  one attribute load, atomic under the GIL — and evaluates against the
  immutable :class:`~repro.core.state.ModelState` captured there.  The
  reader engine is a static :class:`~repro.core.estimator.KernelDensityEstimator`
  built once per publication via ``from_state``.
* **The writer** serialises feedback under a lock and, whenever the
  model's ``(bandwidth_epoch, sample_epoch)`` pair advances, snapshots
  the model and swaps the published record in a single assignment.
  Readers therefore only ever see whole-epoch states: a published
  snapshot reflects *all* of the bandwidth step that produced it.

Staleness — the number of feedback observations absorbed by the writer
but not yet visible to readers — is tracked and exported through
:mod:`repro.obs` alongside the publication count.

Degradation: the RCU split also makes the server fail *soft*.  A writer
exception during :meth:`feedback` can leave the writer model torn, but
it cannot touch the published snapshot — readers keep answering from the
last good publication.  The server counts writer failures
(``serve.writer_errors``), raises a ``serve.degraded`` gauge while the
writer is suspect, and — when wired to a
:class:`~repro.serve.checkpoint.CheckpointManager` — cuts an *emergency
checkpoint* of the last published (known-good) state on the first
failure, so the tuned model survives even if the process is about to go
down with the writer.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import (
    Callable,
    Optional,
    Protocol,
    Tuple,
    Union,
    runtime_checkable,
)

import numpy as np

from ..core.backends import ExecutionBackend, get_backend
from ..core.estimator import KernelDensityEstimator
from ..core.state import ModelState
from ..geometry import Box
from ..obs import MetricsRegistry, get_registry
from ..obs.trace import EstimationTrace
from .keys import ModelKey

__all__ = ["PublishedSnapshot", "SnapshotServer", "SnapshotModel"]


def _as_model_key(value) -> ModelKey:
    """Coerce a server identity (ModelKey or ``(table, columns)``)."""
    return ModelKey.coerce(value)


def _validate_reader_spec(spec) -> None:
    """Reject invalid ``reader_backend`` specs early, with a clear error."""
    if spec is None:
        return
    if isinstance(spec, ExecutionBackend):
        raise TypeError(
            "reader_backend must be a registry name or zero-argument "
            "factory, not a backend instance: every publication builds "
            "a fresh reader, and a backend binds to exactly one estimator"
        )
    if isinstance(spec, str):
        get_backend(spec)  # fail fast on unknown names
        return
    if not callable(spec):
        raise TypeError(
            "reader_backend must be None, a registry name, or a "
            f"zero-argument factory; got {type(spec).__name__}"
        )


def _query_bounds(queries):
    """``(q, d)`` low/high float matrices from a batch or Box iterable."""
    if hasattr(queries, "low") and hasattr(queries, "high"):
        return (
            np.asarray(queries.low, dtype=np.float64),
            np.asarray(queries.high, dtype=np.float64),
        )
    lows = []
    highs = []
    for query in queries:
        lows.append(np.asarray(query.low, dtype=np.float64))
        highs.append(np.asarray(query.high, dtype=np.float64))
    if not lows:
        return None, None
    return np.stack(lows), np.stack(highs)


@runtime_checkable
class SnapshotModel(Protocol):
    """Anything servable: an estimator exposing snapshot/restore/feedback."""

    def snapshot(self) -> ModelState: ...

    def restore(self, state: ModelState) -> None: ...

    def feedback(self, query: Box, true_selectivity: float): ...


@dataclass(frozen=True)
class PublishedSnapshot:
    """One immutable publication: state, reader engine, and sequence number.

    Swapped wholesale so a reader can never pair the state of one
    publication with the engine of another.
    """

    state: ModelState
    reader: KernelDensityEstimator
    sequence: int
    feedback_count: int

    @property
    def epochs(self) -> Tuple[int, int]:
        return self.state.epochs


class SnapshotServer:
    """Read-copy-update wrapper around one self-tuning model.

    Parameters
    ----------
    model:
        The writer model.  Any of the three estimator families works —
        ``KernelDensityEstimator``, ``SelfTuningKDE`` or ``DeviceKDE`` —
        because the reader engine is rebuilt from the published
        :class:`ModelState` with ``KernelDensityEstimator.from_state``,
        which accepts every state kind.
    metrics:
        Metrics registry; defaults to the process-global one.
    on_publish:
        Optional callback invoked (under the writer lock, immediately
        *before* the record becomes visible to readers) with each newly
        published :class:`PublishedSnapshot`.  Used by tests and by
        checkpoint glue that wants to persist exactly the served states.
    checkpoints:
        Optional :class:`~repro.serve.checkpoint.CheckpointManager`
        (or anything with an ``emergency(state)`` method).  On the
        *first* writer failure the server hands it the last published
        state for an out-of-cadence emergency checkpoint.
    reader_backend:
        Execution backend for the *reader* engines: a registry name
        (``"grid"``, ``"hashing"``, ...) or a zero-argument factory
        returning a fresh :class:`~repro.core.backends.ExecutionBackend`.
        ``None`` (default) keeps the reference backend.  A backend
        *instance* is rejected: every publication builds a fresh reader
        and a backend binds to exactly one estimator, so an instance
        could only serve the first publication.
    key:
        Optional :class:`~repro.serve.keys.ModelKey` identity.  Purely
        nominal — it names the server in ``repr`` and lets operational
        glue (checkpoint directories, dashboards) identify which join
        signature a server answers for.  When ``None``, the registry
        assigns its key at registration time; once set it is immutable
        (a server serving two identities would corrupt both names).
    """

    def __init__(
        self,
        model: SnapshotModel,
        *,
        metrics: Optional[MetricsRegistry] = None,
        on_publish: Optional[Callable[[PublishedSnapshot], None]] = None,
        checkpoints=None,
        reader_backend: Union[str, Callable[[], ExecutionBackend], None] = None,
        key=None,
    ) -> None:
        if not hasattr(model, "snapshot") or not hasattr(model, "feedback"):
            raise TypeError(
                "model must expose snapshot() and feedback(); got "
                f"{type(model).__name__}"
            )
        _validate_reader_spec(reader_backend)
        if key is not None:
            key = _as_model_key(key)
        self._key = key
        self._model = model
        self._metrics = metrics
        self._on_publish = on_publish
        self._checkpoints = checkpoints
        self._reader_backend = reader_backend
        self._lock = threading.RLock()
        self._reads = 0
        self._feedback_count = 0
        self._writer_errors = 0
        self._publish_callback_errors = 0
        self._degraded = False
        self._published: PublishedSnapshot  # assigned by _publish_locked
        with self._lock:
            self._publish_locked(self._model.snapshot())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def model(self) -> SnapshotModel:
        """The writer model (mutate only through :meth:`feedback`)."""
        return self._model

    @property
    def key(self):
        """The server's :class:`~repro.serve.keys.ModelKey`, or ``None``.

        Set once — at construction or by the first
        :meth:`~repro.serve.registry.ModelRegistry.register` that binds
        the server to an identity.
        """
        return self._key

    @key.setter
    def key(self, value) -> None:
        value = _as_model_key(value)
        if self._key is not None and self._key != value:
            raise ValueError(
                f"server already keyed as {self._key.label!r}; "
                f"cannot re-key as {value.label!r}"
            )
        self._key = value

    @property
    def published(self) -> PublishedSnapshot:
        """The current publication record (lock-free)."""
        return self._published

    @property
    def reader_backend(self) -> Union[str, Callable[[], ExecutionBackend], None]:
        """The backend spec fresh reader engines are built with."""
        return self._reader_backend

    def set_reader_backend(
        self, spec: Union[str, Callable[[], ExecutionBackend], None]
    ) -> None:
        """Swap the reader backend spec and republish with it immediately.

        Republication rebuilds the reader for the *currently published*
        state (not the writer's possibly mid-epoch state), so readers
        keep seeing whole-epoch snapshots — only the evaluation strategy
        changes.
        """
        _validate_reader_spec(spec)
        with self._lock:
            self._reader_backend = spec
            self._publish_locked(self._published.state)

    @property
    def published_state(self) -> ModelState:
        """The :class:`ModelState` readers currently evaluate against."""
        return self._published.state

    @property
    def publish_count(self) -> int:
        """Number of publications, including the initial one."""
        return self._published.sequence

    @property
    def feedback_count(self) -> int:
        """Total feedback observations absorbed by the writer."""
        return self._feedback_count

    @property
    def staleness(self) -> int:
        """Writer feedbacks not yet reflected in the published snapshot."""
        published = self._published
        return max(0, self._feedback_count - published.feedback_count)

    @property
    def writer_errors(self) -> int:
        """Writer (feedback-path) exceptions observed so far."""
        return self._writer_errors

    @property
    def publish_callback_errors(self) -> int:
        """``on_publish`` callback exceptions swallowed so far.

        A raising callback never aborts a publication (the writer has
        already advanced by then); it is counted here and in the
        ``serve.publish_callback_errors`` metric instead.
        """
        return self._publish_callback_errors

    @property
    def degraded(self) -> bool:
        """True while the writer is suspect; readers still answer.

        Raised by the first writer failure, cleared by the next feedback
        that completes (or an explicit :meth:`restore`/:meth:`publish`).
        """
        return self._degraded

    # ------------------------------------------------------------------
    # Reader path (lock-free)
    # ------------------------------------------------------------------
    def estimate(self, query: Box) -> float:
        """Selectivity estimate against the latest published snapshot."""
        published = self._published  # single atomic attribute load
        value = float(published.reader.selectivity(query))
        self._reads += 1
        self._registry().counter("serve.reads").inc()
        return value

    def estimate_batch(self, queries) -> np.ndarray:
        """Batched estimates, all against one consistent snapshot."""
        published = self._published
        values = published.reader.selectivity_batch(queries)
        self._reads += len(values)
        self._registry().counter("serve.reads").inc(len(values))
        return values

    @property
    def read_count(self) -> int:
        """Queries answered through this server's reader path.

        A plain demand counter (kept even when metrics are disabled) —
        the signal the :class:`~repro.forecast.ProactiveController`
        differences to estimate per-model query rate.  Best-effort under
        concurrency: the lock-free reader path never synchronises, so a
        rare lost increment is possible and acceptable for a rate
        signal.
        """
        return self._reads

    def warm(self, queries=None) -> bool:
        """Eagerly build the published reader's derived state.

        Delegates to the reader backend's
        :meth:`~repro.core.backends.ExecutionBackend.warm`: grid/hashing
        readers build their tables/index for the published epochs,
        cached readers pre-compute the CDF columns of the given forecast
        ``queries`` (a :class:`~repro.geometry.QueryBatch` or an
        iterable of :class:`~repro.geometry.Box`), sharded readers
        pre-spin their pool.  Returns ``True`` when the backend did any
        eager work.  Warming races publications harmlessly: it operates
        on one loaded publication record, and a backend warmed for a
        superseded epoch pair simply holds orphaned state that can never
        be served (epoch-keyed lookups miss it).
        """
        published = self._published
        backend = getattr(published.reader, "_backend", None)
        if backend is None:
            return False
        low = high = None
        if queries is not None:
            low, high = _query_bounds(queries)
        warmed = bool(backend.warm(low, high))
        if warmed:
            self._registry().counter("serve.warms").inc()
        return warmed

    # ------------------------------------------------------------------
    # Writer path (serialised)
    # ------------------------------------------------------------------
    def feedback(self, query: Box, true_selectivity: float):
        """Apply one feedback observation and publish completed epochs.

        The model mutates under the writer lock; publication happens only
        when the model's epoch pair advanced, so readers observe either
        the pre-step or the post-step state — never a partial step.
        Models without epoch counters (``DeviceKDE``) publish after every
        feedback, which is trivially whole-step for the same reason: the
        snapshot is taken after ``feedback`` returns.

        A writer exception degrades, never corrupts, the served model:
        the published snapshot is untouched (readers keep answering), the
        failure is counted and — on the first one, if a checkpoint
        manager is wired — the last published state is flushed as an
        emergency checkpoint.  The exception then propagates so the
        feedback source sees the failure.
        """
        with self._lock:
            registry = self._registry()
            if registry.enabled:
                # Pre-step: predicted against the reader the feedback
                # source actually saw (the current publication).
                self._record_feedback_trace(registry, query, true_selectivity)
            try:
                result = self._model.feedback(query, true_selectivity)
            except Exception:
                self._writer_failed_locked()
                raise
            self._feedback_count += 1
            if self._degraded:
                self._degraded = False
                self._registry().gauge("serve.degraded").set(0)
            if self._model_epochs() != self._published.epochs:
                self._publish_locked(self._model.snapshot())
            else:
                self._registry().gauge("serve.staleness").set(self.staleness)
            return result

    def publish(self) -> PublishedSnapshot:
        """Force publication of the writer's current state."""
        with self._lock:
            self._publish_locked(self._model.snapshot())
            return self._published

    def restore(self, state: ModelState) -> None:
        """Restore the writer from ``state`` and republish immediately.

        Also the recovery path for a degraded writer: restoring the
        last published state yields a consistent writer again.
        """
        with self._lock:
            self._model.restore(state)
            self._publish_locked(self._model.snapshot())

    def snapshot(self) -> ModelState:
        """Consistent snapshot of the *writer* (for checkpointing)."""
        with self._lock:
            return self._model.snapshot()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _registry(self) -> MetricsRegistry:
        return self._metrics if self._metrics is not None else get_registry()

    def _record_feedback_trace(
        self, registry: MetricsRegistry, query: Box, actual: float
    ) -> None:
        """Emit one completed ``stage="feedback"`` trace for this cycle.

        The serving-path analogue of the trace
        :class:`~repro.db.feedback.FeedbackLoop` emits: predicted comes
        from the *published* reader (one extra read-path evaluation,
        metrics-on only), carrying the query bounds the forecast layer's
        drift detector and retune workload builder consume.
        ``read_count`` is deliberately not bumped — the demand signal
        stays pure query traffic.  Trace failures never fail feedback.
        """
        published = self._published
        try:
            predicted = float(published.reader.selectivity(query))
            registry.record_trace(
                EstimationTrace(
                    query_id=registry.next_query_id(),
                    predicted=predicted,
                    backend=type(published.reader._backend).__name__,
                    actual=float(actual),
                    loss=(predicted - float(actual)) ** 2,
                    bandwidth_epoch=published.epochs[0],
                    sample_epoch=published.epochs[1],
                    stage="feedback",
                    query_low=tuple(float(v) for v in query.low),
                    query_high=tuple(float(v) for v in query.high),
                )
            )
        except Exception:
            registry.counter("serve.trace_errors").inc()

    def _writer_failed_locked(self) -> None:
        """Account a writer failure; flush an emergency checkpoint once."""
        first = not self._degraded
        self._writer_errors += 1
        self._degraded = True
        registry = self._registry()
        registry.counter("serve.writer_errors").inc()
        registry.gauge("serve.degraded").set(1)
        if first and self._checkpoints is not None:
            emergency = getattr(self._checkpoints, "emergency", None)
            if emergency is not None:
                try:
                    # The *published* state is known-good; the writer may
                    # be mid-corruption, so never snapshot it here.
                    emergency(self._published.state)
                except Exception:
                    registry.counter("serve.emergency_failures").inc()

    def _model_epochs(self) -> Tuple[int, int]:
        # Fall back to (-1, -1) for models without epoch counters so the
        # comparison against any published state always differs → publish
        # on every feedback.
        bandwidth = getattr(self._model, "bandwidth_epoch", None)
        sample = getattr(self._model, "sample_epoch", None)
        if bandwidth is None or sample is None:
            return (-1, -1)
        return (int(bandwidth), int(sample))

    def _publish_locked(self, state: ModelState) -> None:
        sequence = getattr(self, "_published", None)
        next_sequence = 1 if sequence is None else sequence.sequence + 1
        spec = self._reader_backend
        if spec is None:
            backend = None
        elif isinstance(spec, str):
            backend = get_backend(spec)
        else:
            backend = spec()
        reader = KernelDensityEstimator.from_state(state, backend=backend)
        record = PublishedSnapshot(
            state=state,
            reader=reader,
            sequence=next_sequence,
            feedback_count=self._feedback_count,
        )
        # The callback runs first, while the record is still invisible:
        # observers that log publications (tests, checkpoint glue) are
        # guaranteed to know about a record before any reader can see it.
        # A raising callback must not abort publication: by this point
        # the writer model has already advanced, so bailing out would
        # leave readers permanently stale relative to the writer.  The
        # failure is counted instead and publication proceeds.
        if self._on_publish is not None:
            try:
                self._on_publish(record)
            except Exception:
                self._publish_callback_errors += 1
                self._registry().counter("serve.publish_callback_errors").inc()
        # The single store below is the linearisation point: readers that
        # loaded the old record keep a fully consistent (state, reader)
        # pair; new readers see the new pair.
        self._published = record
        if self._degraded:
            self._degraded = False
            self._registry().gauge("serve.degraded").set(0)
        registry = self._registry()
        registry.counter("serve.publishes").inc()
        registry.gauge("serve.staleness").set(0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        published = self._published
        who = f"key={self._key.label!r}, " if self._key is not None else ""
        return (
            f"SnapshotServer({who}model={type(self._model).__name__}, "
            f"publishes={published.sequence}, feedbacks={self._feedback_count}, "
            f"staleness={self.staleness})"
        )
