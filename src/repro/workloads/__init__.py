"""Query workload generators (static DT/DV/UT/UV and the dynamic stream)."""

from .dynamic import (
    DeleteClusterEvent,
    DynamicEvent,
    EvolvingClusterWorkload,
    InsertEvent,
    QueryEvent,
)
from .generators import WORKLOAD_KINDS, WorkloadSpec, generate_workload

__all__ = [
    "DeleteClusterEvent",
    "DynamicEvent",
    "EvolvingClusterWorkload",
    "InsertEvent",
    "QueryEvent",
    "WORKLOAD_KINDS",
    "WorkloadSpec",
    "generate_workload",
]
