"""The evolving-database workload of the dynamic-data experiment (§6.5).

The scenario mirrors an archiving database: new data arrives in fresh
clusters and is queried frequently; old clusters are eventually deleted
(moved to an archive) and queried rarely.

Structure (faithful to the paper's description):

* Load 4,500 tuples evenly distributed over three random clusters.
* Run ten cycles.  Each cycle gradually inserts 1,500 tuples into a new
  cluster — interleaved with queries — and then deletes all tuples of
  the oldest remaining cluster.
* The interleaved query workload is DT-style (data-centred, 1% target
  selectivity) with centers biased towards *newer* clusters.

The generator emits a deterministic event stream (:class:`InsertEvent`,
:class:`DeleteClusterEvent`, :class:`QueryEvent`) and internally tracks
the live point set, so query boxes can be sized against the *current*
data.  The harness applies the events to the relational substrate and to
each estimator under test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Union

import numpy as np

from ..geometry import Box

__all__ = [
    "DeleteClusterEvent",
    "DynamicEvent",
    "EvolvingClusterWorkload",
    "InsertEvent",
    "QueryEvent",
]


@dataclass(frozen=True)
class InsertEvent:
    """One tuple arriving in the newest cluster."""

    row: np.ndarray


@dataclass(frozen=True)
class DeleteClusterEvent:
    """Archive (delete) every tuple of one cluster."""

    region: Box
    cluster_id: int


@dataclass(frozen=True)
class QueryEvent:
    """A range query with its true selectivity at emission time."""

    query: Box
    true_selectivity: float


DynamicEvent = Union[InsertEvent, DeleteClusterEvent, QueryEvent]


class EvolvingClusterWorkload:
    """Generator of the Section 6.5 insert/delete/query event stream.

    Parameters
    ----------
    dimensions:
        Attribute count (the paper runs 5-D and 8-D versions).
    initial_tuples:
        Tuples loaded before the first cycle (default 4,500 over three
        clusters).
    tuples_per_cycle:
        Tuples inserted into the new cluster each cycle (default 1,500).
    cycles:
        Number of grow/archive cycles (default 10).
    queries_per_cycle:
        DT queries interleaved with each cycle's inserts.
    cluster_scale:
        Standard deviation of the isotropic Gaussian clusters.
    recency_bias:
        Geometric decay of query interest per cluster age: the newest
        live cluster is queried with weight 1, the next with
        ``recency_bias``, then ``recency_bias**2`` and so on.
    target_selectivity:
        Query target selectivity (the paper's DT default of 1%).
    seed:
        Seed for the whole stream; runs are deterministic.
    """

    INITIAL_CLUSTERS = 3

    def __init__(
        self,
        dimensions: int = 5,
        initial_tuples: int = 4500,
        tuples_per_cycle: int = 1500,
        cycles: int = 10,
        queries_per_cycle: int = 100,
        cluster_scale: float = 0.03,
        recency_bias: float = 0.5,
        target_selectivity: float = 0.01,
        seed: Optional[int] = 0,
    ) -> None:
        if dimensions < 1:
            raise ValueError("dimensions must be at least 1")
        if initial_tuples < self.INITIAL_CLUSTERS:
            raise ValueError("initial_tuples must cover the initial clusters")
        if tuples_per_cycle < 1 or cycles < 1 or queries_per_cycle < 0:
            raise ValueError("cycle parameters must be positive")
        if not 0.0 < recency_bias <= 1.0:
            raise ValueError("recency_bias must lie in (0, 1]")
        self.dimensions = dimensions
        self.initial_tuples = initial_tuples
        self.tuples_per_cycle = tuples_per_cycle
        self.cycles = cycles
        self.queries_per_cycle = queries_per_cycle
        self.cluster_scale = cluster_scale
        self.recency_bias = recency_bias
        self.target_selectivity = target_selectivity
        self.seed = seed

    # ------------------------------------------------------------------
    def initial_data(self) -> np.ndarray:
        """The 4,500-tuple initial load (three even clusters)."""
        rng = np.random.default_rng(self.seed)
        centers = self._cluster_centers(rng)
        parts = []
        per_cluster = self.initial_tuples // self.INITIAL_CLUSTERS
        remainder = self.initial_tuples % self.INITIAL_CLUSTERS
        for index in range(self.INITIAL_CLUSTERS):
            count = per_cluster + (1 if index < remainder else 0)
            parts.append(
                centers[index]
                + rng.normal(
                    scale=self.cluster_scale, size=(count, self.dimensions)
                )
            )
        return np.vstack(parts)

    def _cluster_centers(self, rng: np.random.Generator) -> List[np.ndarray]:
        """Centers for every cluster the stream will ever create."""
        total = self.INITIAL_CLUSTERS + self.cycles
        # Keep clusters comfortably inside the unit domain and apart.
        return [rng.uniform(0.15, 0.85, self.dimensions) for _ in range(total)]

    def domain(self) -> Box:
        """The data-space box the stream stays within."""
        return Box(
            np.zeros(self.dimensions) - 0.5, np.ones(self.dimensions) + 0.5
        )

    # ------------------------------------------------------------------
    def events(self) -> Iterator[DynamicEvent]:
        """Yield the full event stream (deterministic for a given seed).

        The initial load is *not* part of the stream; apply
        :meth:`initial_data` via a bulk load first.
        """
        rng = np.random.default_rng(self.seed)
        centers = self._cluster_centers(rng)

        # Internal mirror of the live data, per cluster, so query sizing
        # can target the current distribution.
        live: dict = {}
        parts = []
        per_cluster = self.initial_tuples // self.INITIAL_CLUSTERS
        remainder = self.initial_tuples % self.INITIAL_CLUSTERS
        for index in range(self.INITIAL_CLUSTERS):
            count = per_cluster + (1 if index < remainder else 0)
            live[index] = centers[index] + rng.normal(
                scale=self.cluster_scale, size=(count, self.dimensions)
            )

        for cycle in range(self.cycles):
            new_cluster = self.INITIAL_CLUSTERS + cycle
            live[new_cluster] = np.empty((0, self.dimensions))
            inserts = centers[new_cluster] + rng.normal(
                scale=self.cluster_scale,
                size=(self.tuples_per_cycle, self.dimensions),
            )
            # Interleave queries evenly between the inserts.
            query_positions = set(
                np.linspace(
                    0, self.tuples_per_cycle - 1, self.queries_per_cycle
                )
                .astype(int)
                .tolist()
            )
            for position in range(self.tuples_per_cycle):
                row = inserts[position]
                live[new_cluster] = np.vstack([live[new_cluster], row[None, :]])
                yield InsertEvent(row=row.copy())
                if position in query_positions:
                    yield self._query_event(live, rng)
            # Archive the oldest remaining cluster.
            oldest = min(live)
            region = self._cluster_region(live[oldest], centers[oldest])
            del live[oldest]
            yield DeleteClusterEvent(region=region, cluster_id=oldest)

    def _cluster_region(
        self, points: np.ndarray, center: np.ndarray
    ) -> Box:
        """A box covering a cluster's points (for the delete statement)."""
        if points.shape[0] == 0:
            return Box.from_center(center, np.full(self.dimensions, 1e-6))
        return Box.bounding(points, margin=1e-9)

    def _query_event(
        self, live: dict, rng: np.random.Generator
    ) -> QueryEvent:
        """A DT query biased towards newer clusters, sized on live data."""
        cluster_ids = sorted(live, reverse=True)  # newest first
        weights = np.array(
            [
                self.recency_bias ** age if live[cid].shape[0] > 0 else 0.0
                for age, cid in enumerate(cluster_ids)
            ]
        )
        if weights.sum() == 0.0:
            raise RuntimeError("no live clusters to query")
        weights /= weights.sum()
        chosen = cluster_ids[int(rng.choice(len(cluster_ids), p=weights))]
        cluster_points = live[chosen]
        center = cluster_points[rng.integers(cluster_points.shape[0])]

        all_points = np.vstack([live[cid] for cid in live])
        total = all_points.shape[0]
        target_count = max(1.0, self.target_selectivity * total)

        # Bisection on the query half-width against the live point set.
        lo, hi = 0.0, 1.0
        for _ in range(30):
            mid = (lo + hi) / 2.0
            box = Box(center - mid, center + mid)
            count = int(box.contains_points(all_points).sum())
            if count < target_count:
                lo = mid
            else:
                hi = mid
        box = Box(center - hi, center + hi)
        selectivity = float(box.contains_points(all_points).mean())
        return QueryEvent(query=box, true_selectivity=selectivity)
